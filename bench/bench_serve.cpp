// Serving-engine benchmark (DESIGN.md §11): a closed-loop fleet workload
// (N cells × M UEs × R rounds of KPM vectors) driven through the batched
// ServeEngine and through the unbatched per-sample reference path.
//
// The bench proves the two serving claims:
//   * byte-identity — the served prediction stream's SHA-256 digest equals
//     the unbatched path's digest, at 1 *and* 4 threads;
//   * throughput — batched serving sustains at least --min-speedup× the
//     single-sample request rate (the committed report uses 5× at
//     batch-max 32).
// It also runs an attack-contention phase: the cloning loop's probes are
// admitted into the same engine that serves the fleet, and their labels
// must still match direct victim queries exactly.
//
// Output: a JSON report (schema "orev-serve-bench-v1") with the workload
// config, per-phase wall-clock throughput, virtual-latency percentiles
// and batch occupancy — written to --report-out and summarised on stdout.
//
// Flags: --cells N  --ues M  --rounds R  --batch-max B  --deadline-us D
//        --replicas K  --queue-capacity Q  --passes P  --min-speedup S
//        --report-out FILE   (plus the common --threads / --metrics-out /
//        --trace-out / --fault-plan flags).
// Each phase is timed best-of-P passes (default 3): the regions are only a
// few milliseconds long, and best-of strips scheduler noise symmetrically
// from the reference and served measurements.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/model_zoo.hpp"
#include "attack/clone.hpp"
#include "bench_common.hpp"
#include "serve/serve.hpp"
#include "util/persist/bytes.hpp"
#include "util/sha256.hpp"

namespace {

using namespace orev;
using namespace orev::bench;

constexpr int kKpmFeatures = 4;
constexpr int kKpmClasses = 4;

struct Flags {
  int cells = 24;
  int ues = 8;
  int rounds = 4;
  int batch_max = 32;
  std::uint64_t deadline_us = 1000000;
  int replicas = 4;
  int queue_capacity = 256;
  /// Timed passes per phase; each phase reports its fastest pass. The
  /// timed regions are only a few milliseconds, so a single pass is at
  /// the mercy of scheduler noise — best-of-N (applied symmetrically to
  /// the unbatched reference and the served runs) measures the code, not
  /// the machine's mood. The prediction stream is identical every pass.
  int passes = 3;
  double min_speedup = 0.0;
  std::string report_out = "bench_results/serve_report.json";
};

int parse_int(const char* s) { return std::atoi(s); }

Flags parse_flags(int& argc, char** argv) {
  Flags f;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    auto take = [&](const char* name, auto setter) {
      const std::size_t len = std::strlen(name);
      if (std::strcmp(argv[r], name) == 0 && r + 1 < argc) {
        setter(argv[++r]);
        return true;
      }
      if (std::strncmp(argv[r], name, len) == 0 && argv[r][len] == '=') {
        setter(argv[r] + len + 1);
        return true;
      }
      return false;
    };
    if (take("--cells", [&](const char* v) { f.cells = parse_int(v); }) ||
        take("--ues", [&](const char* v) { f.ues = parse_int(v); }) ||
        take("--rounds", [&](const char* v) { f.rounds = parse_int(v); }) ||
        take("--batch-max",
             [&](const char* v) { f.batch_max = parse_int(v); }) ||
        take("--deadline-us",
             [&](const char* v) {
               f.deadline_us = std::strtoull(v, nullptr, 0);
             }) ||
        take("--replicas", [&](const char* v) { f.replicas = parse_int(v); }) ||
        take("--queue-capacity",
             [&](const char* v) { f.queue_capacity = parse_int(v); }) ||
        take("--passes", [&](const char* v) { f.passes = parse_int(v); }) ||
        take("--min-speedup",
             [&](const char* v) { f.min_speedup = std::atof(v); }) ||
        take("--report-out", [&](const char* v) { f.report_out = v; })) {
      continue;
    }
    argv[w++] = argv[r];
  }
  argc = w;
  return f;
}

/// Fleet request stream: one KPM vector per (cell, ue, round), generated
/// from a per-request Rng stream so the workload is independent of
/// iteration order and reproducible from the seed alone.
std::vector<nn::Tensor> fleet_inputs(const Flags& f,
                                     std::uint64_t seed = 0xf1ee7) {
  const Rng base(seed);
  std::vector<nn::Tensor> out;
  out.reserve(static_cast<std::size_t>(f.cells * f.ues * f.rounds));
  std::uint64_t stream = 0;
  for (int r = 0; r < f.rounds; ++r)
    for (int c = 0; c < f.cells; ++c)
      for (int u = 0; u < f.ues; ++u) {
        Rng rng = base.split(stream++);
        nn::Tensor t({kKpmFeatures});
        for (std::size_t j = 0; j < static_cast<std::size_t>(kKpmFeatures);
             ++j)
          t[j] = rng.uniform(-1.0f, 1.0f);
        out.push_back(std::move(t));
      }
  return out;
}

std::string digest_of(const std::vector<int>& preds) {
  persist::ByteWriter w;
  for (const int p : preds) w.i32(p);
  return Sha256::hex(w.buffer());
}

struct ServedRun {
  int threads = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  std::string digest;
  serve::SloSnapshot slo;
};

serve::ServeConfig engine_config(const Flags& f, const std::string& name) {
  serve::ServeConfig cfg;
  cfg.name = name;
  cfg.queue_capacity = f.queue_capacity;
  cfg.batch_max = f.batch_max;
  cfg.deadline_us = f.deadline_us;
  cfg.flush_wait_us = std::min<std::uint64_t>(2000, f.deadline_us);
  cfg.replicas = f.replicas;
  return cfg;
}

ServedRun run_served(const nn::Model& model, const Flags& f, int threads,
                     const std::vector<nn::Tensor>& inputs) {
  util::set_num_threads(threads);
  serve::ServeConfig cfg = engine_config(f, "fleet" + std::to_string(threads));
  // Replica-per-worker: sharding a micro-batch across more replicas than
  // worker threads only shrinks the per-call batch without adding
  // parallelism, so the fleet runs cap replicas at the thread count.
  cfg.replicas = std::min(cfg.replicas, threads);
  std::vector<int> preds(inputs.size(), -1);
  ServedRun run;
  run.threads = threads;
  run.wall_seconds = 1e30;
  serve::SloSnapshot slo;
  for (int pass = 0; pass < std::max(f.passes, 1); ++pass) {
    // Fresh engine per pass so SLO accounting covers exactly one pass;
    // virtual time makes every pass's stream (and digest) identical.
    serve::ServeEngine eng(model.clone(), cfg);
    // Request tensors are workload artifacts, not serving work: build them
    // outside the timed region and move them into submit().
    std::vector<nn::Tensor> reqs(inputs.begin(), inputs.end());
    WallTimer timer;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      eng.submit(std::move(reqs[i]),
                 [&preds, i](const serve::ServeResult& r) {
                   preds[i] = r.prediction;
                 });
    }
    eng.drain();
    run.wall_seconds = std::min(run.wall_seconds, timer.seconds());
    slo = eng.slo();
  }
  run.throughput_rps =
      static_cast<double>(inputs.size()) / std::max(run.wall_seconds, 1e-12);
  run.digest = digest_of(preds);
  run.slo = slo;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  const int cli_threads = parse_threads_flag(argc, argv);
  (void)cli_threads;
  const Flags f = parse_flags(argc, argv);

  std::printf("=== Serving engine: fleet workload %d cells x %d UEs x %d "
              "rounds, batch-max %d, %d replica(s) ===\n",
              f.cells, f.ues, f.rounds, f.batch_max, f.replicas);

  nn::Model victim = apps::make_kpm_dnn(kKpmFeatures, kKpmClasses, 17);
  const std::vector<nn::Tensor> inputs = fleet_inputs(f);
  const int n = static_cast<int>(inputs.size());

  // ---- unbatched reference: the historical per-indication path ---------
  util::set_num_threads(1);
  std::vector<int> reference(inputs.size(), -1);
  double ref_seconds = 1e30;
  for (int pass = 0; pass < std::max(f.passes, 1); ++pass) {
    WallTimer ref_timer;
    for (std::size_t i = 0; i < inputs.size(); ++i)
      reference[i] = victim.predict_one(inputs[i]);
    ref_seconds = std::min(ref_seconds, ref_timer.seconds());
  }
  const double ref_rps = static_cast<double>(n) / std::max(ref_seconds, 1e-12);
  const std::string ref_digest = digest_of(reference);
  std::printf("[unbatched] %d requests in %.4fs  (%.0f req/s)\n", n,
              ref_seconds, ref_rps);

  // ---- served runs at 1 and 4 threads ----------------------------------
  std::vector<ServedRun> served;
  for (const int threads : {1, 4}) {
    const ServedRun run = run_served(victim, f, threads, inputs);
    std::printf("[served t=%d] %d requests in %.4fs  (%.0f req/s)  "
                "p99=%llu us  occupancy=%.1f  batches=%llu  degraded=%llu\n",
                run.threads, n, run.wall_seconds, run.throughput_rps,
                static_cast<unsigned long long>(run.slo.p99_latency_us),
                run.slo.mean_occupancy,
                static_cast<unsigned long long>(run.slo.batches),
                static_cast<unsigned long long>(run.slo.degraded_syncs));
    served.push_back(run);
  }

  bool byte_identical = true;
  for (const ServedRun& run : served)
    byte_identical = byte_identical && run.digest == ref_digest;
  double speedup = 0.0;
  for (const ServedRun& run : served)
    speedup = std::max(speedup, run.throughput_rps / ref_rps);

  // ---- attack contention: clone probes share the fleet engine ----------
  util::set_num_threads(4);
  serve::ServeEngine shared(victim.clone(), engine_config(f, "contended"));
  // Half the fleet keeps the queue warm before the attacker shows up.
  for (int i = 0; i < n / 2; ++i)
    shared.submit(nn::Tensor(inputs[static_cast<std::size_t>(i)]), nullptr);
  Rng probe_rng(0xa77ac);
  nn::Tensor probes({96, kKpmFeatures});
  for (int i = 0; i < 96; ++i)
    for (int j = 0; j < kKpmFeatures; ++j)
      probes.at2(i, j) = probe_rng.uniform(-1.0f, 1.0f);
  const data::Dataset d_clone = attack::collect_clone_dataset(shared, probes);
  const std::vector<int> direct = victim.predict(probes);
  const bool clone_match = d_clone.y == direct;
  const serve::SloSnapshot contended = shared.slo();
  std::printf("[contention] %d probes among %d fleet requests: labels %s, "
              "occupancy=%.1f\n",
              probes.dim(0), n / 2, clone_match ? "match" : "MISMATCH",
              contended.mean_occupancy);

  const bool speedup_ok = f.min_speedup <= 0.0 || speedup >= f.min_speedup;
  const bool pass = byte_identical && clone_match && speedup_ok;

  // ---- JSON report ------------------------------------------------------
  {
    std::error_code ec;
    const std::filesystem::path out(f.report_out);
    if (out.has_parent_path())
      std::filesystem::create_directories(out.parent_path(), ec);
    std::FILE* fp = std::fopen(f.report_out.c_str(), "w");
    if (fp == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", f.report_out.c_str());
      return 2;
    }
    std::fprintf(fp, "{\n  \"schema\": \"orev-serve-bench-v1\",\n");
    std::fprintf(fp,
                 "  \"config\": {\"cells\": %d, \"ues\": %d, \"rounds\": %d, "
                 "\"requests\": %d, \"batch_max\": %d, \"deadline_us\": %llu, "
                 "\"replicas\": %d, \"queue_capacity\": %d, \"passes\": %d, "
                 "\"model\": \"%s\"},\n",
                 f.cells, f.ues, f.rounds, n, f.batch_max,
                 static_cast<unsigned long long>(f.deadline_us), f.replicas,
                 f.queue_capacity, f.passes, victim.name().c_str());
    std::fprintf(fp,
                 "  \"unbatched\": {\"wall_seconds\": %.6f, "
                 "\"throughput_rps\": %.1f, \"digest\": \"%s\"},\n",
                 ref_seconds, ref_rps, ref_digest.c_str());
    std::fprintf(fp, "  \"served\": [\n");
    for (std::size_t i = 0; i < served.size(); ++i) {
      const ServedRun& r = served[i];
      std::fprintf(
          fp,
          "    {\"threads\": %d, \"wall_seconds\": %.6f, \"throughput_rps\": "
          "%.1f, \"digest\": \"%s\", \"p50_latency_us\": %llu, "
          "\"p99_latency_us\": %llu, \"mean_batch_occupancy\": %.2f, "
          "\"batches\": %llu, \"deadline_misses\": %llu, \"degraded_syncs\": "
          "%llu, \"rejected\": %llu, \"max_queue_depth\": %llu}%s\n",
          r.threads, r.wall_seconds, r.throughput_rps, r.digest.c_str(),
          static_cast<unsigned long long>(r.slo.p50_latency_us),
          static_cast<unsigned long long>(r.slo.p99_latency_us),
          r.slo.mean_occupancy,
          static_cast<unsigned long long>(r.slo.batches),
          static_cast<unsigned long long>(r.slo.deadline_misses),
          static_cast<unsigned long long>(r.slo.degraded_syncs),
          static_cast<unsigned long long>(r.slo.rejected),
          static_cast<unsigned long long>(r.slo.max_queue_depth),
          i + 1 < served.size() ? "," : "");
    }
    std::fprintf(fp, "  ],\n");
    std::fprintf(fp,
                 "  \"attack_contention\": {\"probes\": %d, "
                 "\"fleet_requests\": %d, \"clone_labels_match\": %s, "
                 "\"completed\": %llu, \"mean_batch_occupancy\": %.2f},\n",
                 probes.dim(0), n / 2, clone_match ? "true" : "false",
                 static_cast<unsigned long long>(contended.completed),
                 contended.mean_occupancy);
    std::fprintf(fp,
                 "  \"byte_identical\": %s,\n  \"speedup\": %.2f,\n"
                 "  \"min_speedup\": %.2f,\n  \"pass\": %s\n}\n",
                 byte_identical ? "true" : "false", speedup, f.min_speedup,
                 pass ? "true" : "false");
    std::fclose(fp);
    std::printf("[report] wrote %s\n", f.report_out.c_str());
  }

  print_rule();
  std::printf("byte_identical=%s  speedup=%.2fx (gate %.2fx)  "
              "clone_labels_match=%s  ->  %s\n",
              byte_identical ? "true" : "false", speedup, f.min_speedup,
              clone_match ? "true" : "false", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
