// Ablations of the design choices DESIGN.md §6 calls out:
//   1. UAP inner minimiser: DeepFool (minimal steps) vs FGSM (sign steps)
//      vs the effect of the transfer-robustness criterion (EOT off).
//   2. Cloning-set size vs cloning accuracy vs downstream UAP damage.
//   3. Spectrogram resolution vs attack transferability.
#include "bench_common.hpp"

using namespace orev;
using namespace orev::bench;

namespace {

double uap_damage(nn::Model& victim, nn::Model& surrogate,
                  const data::Dataset& seed, const data::Dataset& eval,
                  attack::Pgm& inner, bool robust) {
  attack::UapConfig ucfg;
  ucfg.eps = 0.5f;
  ucfg.target_fooling = 0.95;
  ucfg.max_passes = 5;
  if (robust) {
    ucfg.min_confidence = 0.9f;
    ucfg.robust_draws = 3;
    ucfg.robust_noise = 0.15f;
  }
  const attack::UapResult uap =
      attack::generate_uap(surrogate, seed.x, inner, ucfg);
  const nn::Tensor x_adv = attack::apply_uap(eval.x, uap.perturbation);
  return attack::evaluate_attack(victim, eval.x, x_adv, eval.y).accuracy;
}

data::Dataset interference_subset(const data::Dataset& d, int cap) {
  std::vector<int> rows;
  for (int i = 0; i < d.size(); ++i)
    if (d.y[static_cast<std::size_t>(i)] == ran::kLabelInterference)
      rows.push_back(i);
  return d.subset(rows).take(cap);
}

}  // namespace

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  CsvWriter csv;
  csv.header({"ablation", "setting", "value"});

  std::printf("=== Ablation 1: UAP inner minimiser and robustness criterion "
              "===\n");
  {
    data::Dataset corpus = bench_spectrogram_corpus();
    Rng rng(1);
    data::Split split = data::stratified_split(corpus, 0.7, rng);
    nn::Model victim = train_victim_cnn(split.train, split.test);
    const data::Dataset d_clone =
        attack::collect_clone_dataset(victim, split.train.x);
    TrainedSurrogate sur = train_surrogate(
        d_clone, surrogate_candidates(corpus.sample_shape(), 2)[1],
        bench_clone_config());
    const data::Dataset seed = interference_subset(d_clone, 150);
    const data::Dataset eval = split.test.take(80);

    attack::DeepFool df(30, 0.1f);
    attack::Fgsm fgsm(0.25f);
    const double df_robust =
        uap_damage(victim, sur.model, seed, eval, df, true);
    const double df_plain =
        uap_damage(victim, sur.model, seed, eval, df, false);
    const double fgsm_robust =
        uap_damage(victim, sur.model, seed, eval, fgsm, true);
    std::printf("victim accuracy under UAP (lower = stronger attack):\n"
                "  DeepFool inner + robustness criterion: %.3f\n"
                "  DeepFool inner, plain Algorithm 2:     %.3f\n"
                "  FGSM inner + robustness criterion:     %.3f\n",
                df_robust, df_plain, fgsm_robust);
    csv.row("inner", "deepfool+robust", df_robust);
    csv.row("inner", "deepfool+plain", df_plain);
    csv.row("inner", "fgsm+robust", fgsm_robust);
  }

  std::printf("\n=== Ablation 2: cloning-set size ===\n");
  {
    data::Dataset corpus = bench_spectrogram_corpus();
    Rng rng(2);
    data::Split split = data::stratified_split(corpus, 0.7, rng);
    nn::Model victim = train_victim_cnn(split.train, split.test);
    const data::Dataset d_clone_full =
        attack::collect_clone_dataset(victim, split.train.x);
    const data::Dataset eval = split.test.take(80);

    for (const int n : {40, 100, 250}) {
      const data::Dataset d_clone = d_clone_full.take(n);
      TrainedSurrogate sur = train_surrogate(
          d_clone, surrogate_candidates(corpus.sample_shape(), 2)[1],
          bench_clone_config());
      attack::DeepFool inner(30, 0.1f);
      const data::Dataset seed = interference_subset(d_clone, 150);
      const double acc = seed.size() > 0
                             ? uap_damage(victim, sur.model, seed, eval,
                                          inner, true)
                             : 1.0;
      std::printf("  clone set %3d: cloning accuracy %.3f → victim "
                  "accuracy under UAP %.3f\n",
                  n, sur.cloning_accuracy, acc);
      csv.row("clone-size", std::to_string(n), acc);
    }
  }

  std::printf("\n=== Ablation 3: spectrogram resolution ===\n");
  {
    for (const int res : {16, 24, 32}) {
      ran::SpectrogramConfig scfg;
      scfg.freq_bins = res;
      scfg.time_frames = res;
      data::Dataset corpus = ran::make_spectrogram_dataset(scfg, 150, 4242);
      Rng rng(3);
      data::Split split = data::stratified_split(corpus, 0.7, rng);
      nn::Model victim = train_victim_cnn(split.train, split.test);
      const data::Dataset d_clone =
          attack::collect_clone_dataset(victim, split.train.x);
      TrainedSurrogate sur = train_surrogate(
          d_clone, surrogate_candidates(corpus.sample_shape(), 2)[1],
          bench_clone_config());
      attack::DeepFool inner(30, 0.1f);
      const data::Dataset seed = interference_subset(d_clone, 150);
      const data::Dataset eval = split.test.take(80);
      const double acc =
          uap_damage(victim, sur.model, seed, eval, inner, true);
      std::printf("  %2dx%-2d: cloning accuracy %.3f → victim accuracy "
                  "under UAP %.3f\n",
                  res, res, sur.cloning_accuracy, acc);
      csv.row("resolution", std::to_string(res), acc);
    }
  }

  save_csv(csv, "ablation");
  return 0;
}
