// Figure 2 reproduction: victim accuracy under black-box attacks built
// with different PGMs (FGSM, PGD, C&W, DeepFool), surrogate = DenseNet,
// 350 observed predictions.
//   (a) input-specific perturbations at ε = 0.2;
//   (b) UAPs (PGM as the inner minimiser) at ε = 0.5.
//
// Paper shape: DeepFool is the best input-specific PGM; for UAPs the
// methods converge (norm-unbounded inner minimisers do well); UAPs
// outperform input-specific attacks at comparable APD.
#include "bench_common.hpp"

using namespace orev;
using namespace orev::bench;

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  std::printf("=== Figure 2: PGM comparison (surrogate = DenseNet) ===\n");

  data::Dataset corpus = bench_spectrogram_corpus();
  Rng rng(1);
  data::Split split = data::stratified_split(corpus, 0.7, rng);
  nn::Model victim = train_victim_cnn(split.train, split.test);
  const data::Dataset d_clone =
      attack::collect_clone_dataset(victim, split.train.x);

  // Surrogate: DenseNet (the paper's choice after Table 1).
  attack::CloneConfig ccfg = bench_clone_config();
  const auto cands = surrogate_candidates(corpus.sample_shape(), 2);
  TrainedSurrogate sur = train_surrogate(d_clone, cands[1], ccfg);
  std::printf("DenseNet cloning accuracy: %.3f\n", sur.cloning_accuracy);

  // The paper uses 350 observed predictions for generation.
  const data::Dataset observed = d_clone.take(
      std::min(350, d_clone.size()));
  const data::Dataset attack_set = split.test.take(80);

  struct PgmSpec {
    std::string name;
    std::function<attack::PgmPtr(float eps)> make;
  };
  const std::vector<PgmSpec> pgms = {
      {"FGSM", [](float eps) { return std::make_unique<attack::Fgsm>(eps); }},
      {"PGD",
       [](float eps) { return std::make_unique<attack::Pgd>(eps, 10); }},
      {"C&W",
       [](float) {
         return std::make_unique<attack::CarliniWagner>(2.0f, 0.05f, 40);
       }},
      {"DF",
       [](float) { return std::make_unique<attack::DeepFool>(30, 0.05f); }},
  };

  CsvWriter csv;
  csv.header({"pgm", "mode", "eps", "victim_accuracy", "apd"});

  // (a) Input-specific perturbations at eps = 0.2.
  std::printf("\n(a) input-specific perturbations, eps = 0.2\n");
  print_rule();
  for (const PgmSpec& spec : pgms) {
    const attack::PgmPtr pgm = spec.make(0.2f);
    const attack::BatchAttackResult batch =
        attack::attack_batch(*pgm, sur.model, attack_set.x);
    const attack::AttackMetrics m = attack::evaluate_attack(
        victim, attack_set.x, batch.adversarial, attack_set.y);
    std::printf("%-10s accuracy=%.3f  f1=%.3f  apd=%.3f\n",
                spec.name.c_str(), m.accuracy, m.f1, m.apd);
    csv.row(spec.name, "input-specific", 0.2f, m.accuracy, m.apd);
  }

  // (b) UAPs with each PGM as the inner minimiser, eps = 0.5. The UAP is
  // seeded with the interference-labelled observations (the operationally
  // damaging direction; see Table 1 notes).
  std::printf("\n(b) UAPs (inner minimiser = PGM), eps = 0.5\n");
  print_rule();
  std::vector<int> jammed_rows;
  for (int i = 0; i < observed.size(); ++i)
    if (observed.y[static_cast<std::size_t>(i)] == ran::kLabelInterference)
      jammed_rows.push_back(i);
  const data::Dataset seed = observed.subset(jammed_rows);

  attack::UapConfig ucfg;
  ucfg.eps = 0.5f;
  ucfg.target_fooling = 0.95;
  ucfg.max_passes = 4;
  ucfg.min_confidence = 0.9f;
  ucfg.robust_draws = 3;
  ucfg.robust_noise = 0.15f;

  for (const PgmSpec& spec : pgms) {
    const attack::PgmPtr inner = spec.make(0.25f);
    const attack::UapResult uap =
        attack::generate_uap(sur.model, seed.x, *inner, ucfg);
    const nn::Tensor x_adv =
        attack::apply_uap(attack_set.x, uap.perturbation);
    const attack::AttackMetrics m =
        attack::evaluate_attack(victim, attack_set.x, x_adv, attack_set.y);
    std::printf("UAP(%-8s) accuracy=%.3f  f1=%.3f  apd=%.3f  "
                "(surrogate fooling %.2f in %d passes)\n",
                spec.name.c_str(), m.accuracy, m.f1, m.apd,
                uap.achieved_fooling, uap.passes);
    csv.row(spec.name, "uap", 0.5f, m.accuracy, m.apd);
  }

  save_csv(csv, "fig2");
  return 0;
}
