// Figure 5 reproduction: CDFs of MCS, uplink throughput and BLER for the
// closed-loop Near-RT system under
//   (1) no attack,
//   (2) the proposed black-box UAP attack (precomputed, applied instantly),
//   (3) a MobileNet-based input-specific FGSM attack whose per-sample
//       generation is timed against the near-RT window (late generations
//       miss, so the xApp sees clean samples part of the time).
//
// Paper shape: under no attack the xApp detects the jammer and keeps the
// RAN on adaptive MCS (moderate BLER, working throughput). Under the UAP
// attack the xApp misses the jammer, the RAN stays on a fixed high MCS,
// BLER collapses to ~1 and throughput dies. The input-specific attack is
// in between, because deadline misses let the xApp answer correctly part
// of the time.
#include "bench_common.hpp"
#include "apps/ic_xapp.hpp"
#include "apps/malicious_xapp.hpp"
#include "oran/near_rt_ric.hpp"
#include "util/stats.hpp"

using namespace orev;
using namespace orev::bench;

namespace {

/// E2 adapter from the RIC control path to the uplink simulator.
class RanNode : public oran::E2Node {
 public:
  explicit RanNode(ran::UplinkSim* sim) : sim_(sim) {}
  void handle_control(const oran::E2Control& c) override {
    sim_->set_mcs_mode(c.action == oran::ControlAction::kSetAdaptiveMcs
                           ? ran::McsMode::kAdaptive
                           : ran::McsMode::kFixed);
  }
  std::string node_id() const override { return "ran-1"; }

 private:
  ran::UplinkSim* sim_;
};

struct LoopResult {
  std::vector<double> mcs;
  std::vector<double> throughput;
  std::vector<double> bler;
  double detection_rate = 0.0;
  std::uint64_t perturbations_applied = 0;
  std::uint64_t deadline_misses = 0;
};

enum class Scenario { kNoAttack, kUap, kInputSpecific };

struct Materials {
  nn::Model* victim_template;
  nn::Tensor uap;
  nn::Model* surrogate;     // for the input-specific generator
  double window_ms;
};

LoopResult run_loop(Scenario scenario, const Materials& mat,
                    const ran::UplinkConfig& ucfg, int ttis) {
  oran::Rbac rbac;
  oran::Operator op("op", "sec");
  oran::OnboardingService svc(&op, &rbac);
  rbac.define_role("ic-xapp", {oran::Permission{"telemetry/*", true, false},
                               oran::Permission{"decisions", true, true},
                               oran::Permission{"e2/control", false, true}});
  rbac.define_role("kpi-processor",
                   {oran::Permission{"telemetry/*", true, true},
                    oran::Permission{"decisions", true, false}});
  auto onboard = [&](const std::string& name, const std::string& role) {
    oran::AppDescriptor d;
    d.name = name;
    d.version = "1";
    d.vendor = "v";
    d.payload = "p";
    d.requested_role = role;
    return svc.onboard(op.package(d)).app_id;
  };

  oran::NearRtRic ric(&rbac, &svc, std::max(mat.window_ms, 1.0));
  ran::UplinkSim sim(ucfg, /*seed=*/909);
  RanNode node(&sim);
  ric.connect_e2(&node);

  // Fresh victim copy per scenario (same weights).
  nn::Model victim_model = apps::make_base_cnn(
      {1, ucfg.spectrogram.freq_bins, ucfg.spectrogram.time_frames}, 2, 1);
  victim_model.set_weights(mat.victim_template->weights());
  auto victim = std::make_shared<apps::IcXApp>(
      std::move(victim_model), oran::IndicationKind::kSpectrogram, 13);

  std::shared_ptr<apps::MaliciousXApp> attacker;
  if (scenario != Scenario::kNoAttack) {
    attacker = std::make_shared<apps::MaliciousXApp>(
        oran::IndicationKind::kSpectrogram);
    ric.register_xapp(attacker, onboard("atk", "kpi-processor"), 1);
    if (scenario == Scenario::kUap) {
      attacker->arm_uap(mat.uap);
    } else {
      nn::Model* sur = mat.surrogate;
      attacker->arm_input_specific(
          [sur](const nn::Tensor& x) {
            attack::DeepFool df(30, 0.1f);
            return df.perturb(*sur, x, sur->predict_one(x));
          },
          mat.window_ms);
    }
  }
  ric.register_xapp(victim, onboard("ic", "ic-xapp"), 10);

  // Jammer active throughout (the Fig. 5 measurement interval); iperf-like
  // constant UL traffic is implicit in the saturated link model.
  sim.jammer().activate();
  sim.set_mcs_mode(ran::McsMode::kAdaptive);

  LoopResult out;
  for (int t = 0; t < ttis; ++t) {
    const ran::KpmRecord k = sim.step();
    out.mcs.push_back(static_cast<double>(k.mcs));
    out.throughput.push_back(k.throughput_mbps);
    out.bler.push_back(k.bler);

    oran::E2Indication ind;
    ind.ran_node_id = "ran-1";
    ind.tti = static_cast<std::uint64_t>(t);
    ind.kind = oran::IndicationKind::kSpectrogram;
    ind.payload = sim.capture_spectrogram();
    ric.deliver_indication(ind);
  }
  out.detection_rate =
      static_cast<double>(victim->interference_detected()) /
      static_cast<double>(victim->predictions_made());
  if (attacker) {
    out.perturbations_applied = attacker->perturbations_applied();
    out.deadline_misses = attacker->deadline_misses();
  }
  return out;
}

void print_cdf(const char* metric, const std::vector<double>& xs) {
  const EmpiricalCdf cdf(xs);
  std::printf("  %s CDF:", metric);
  for (const auto& [x, p] : cdf.table(6))
    std::printf("  (%.2f, %.2f)", x, p);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  std::printf("=== Figure 5: network performance under black-box attacks "
              "===\n");

  // Materials. The near-RT window only constrains *online* generation, so
  // the attacker splits roles exactly along the paper's timing argument
  // (§5.3.6): the UAP is precomputed offline on the best-cloning surrogate
  // (DenseNet, per Table 1), while the online input-specific baseline must
  // use the fast MobileNet surrogate (DenseNet misses ~87.5% of the
  // stream). See EXPERIMENTS.md for the deviation note.
  ran::UplinkConfig ucfg;
  ucfg.spectrogram = bench_spectrogram_config();
  data::Dataset corpus = bench_spectrogram_corpus();
  Rng rng(1);
  data::Split split = data::stratified_split(corpus, 0.7, rng);
  nn::Model victim_template = train_victim_cnn(split.train, split.test);
  const data::Dataset d_clone =
      attack::collect_clone_dataset(victim_template, split.train.x);
  const auto candidates = surrogate_candidates(corpus.sample_shape(), 2);
  TrainedSurrogate uap_sur =
      train_surrogate(d_clone, candidates[1], bench_clone_config());
  TrainedSurrogate sur =
      train_surrogate(d_clone, candidates[2], bench_clone_config());
  std::printf("DenseNet (UAP) cloning accuracy: %.3f; MobileNet "
              "(input-specific) cloning accuracy: %.3f\n",
              uap_sur.cloning_accuracy, sur.cloning_accuracy);

  std::vector<int> jammed_rows;
  for (int i = 0; i < d_clone.size(); ++i)
    if (d_clone.y[static_cast<std::size_t>(i)] == ran::kLabelInterference)
      jammed_rows.push_back(i);
  attack::UapConfig ucfg_uap;
  ucfg_uap.eps = 0.5f;
  ucfg_uap.target_fooling = 0.95;
  ucfg_uap.max_passes = 5;
  ucfg_uap.min_confidence = 0.9f;
  ucfg_uap.robust_draws = 3;
  ucfg_uap.robust_noise = 0.15f;
  attack::DeepFool inner(30, 0.1f);
  const attack::UapResult uap = attack::generate_uap(
      uap_sur.model, d_clone.subset(jammed_rows).take(120).x, inner,
      ucfg_uap);
  std::printf("UAP ready (robust surrogate fooling %.2f)\n",
              uap.achieved_fooling);

  // Calibrate the near-RT window so the input-specific generator misses
  // ~87.5% of spectrograms — the paper's DenseNet121 figure (generation
  // 4 s vs a 0.5 s spectrogram interval). Absolute times differ on this
  // substrate; the generation-cost/window *ratio* is what we reproduce.
  attack::DeepFool probe(30, 0.1f);
  const attack::BatchAttackResult timing =
      attack::attack_batch(probe, uap_sur.model, split.test.take(30).x);
  const double window_ms = timing.mean_ms_per_sample / 8.0;
  std::printf("DeepFool on DenseNet: %.3f ms mean per perturbation; near-RT "
              "window set to %.3f ms (paper ratio 8x → ~87.5%% missed)\n",
              timing.mean_ms_per_sample, window_ms);

  Materials mat{&victim_template, uap.perturbation, &uap_sur.model,
                window_ms};

  constexpr int kTtis = 300;
  CsvWriter csv;
  csv.header({"scenario", "metric", "x", "cdf"});

  const std::pair<Scenario, const char*> scenarios[] = {
      {Scenario::kNoAttack, "no-attack"},
      {Scenario::kUap, "uap"},
      {Scenario::kInputSpecific, "input-specific"},
  };
  for (const auto& [scenario, name] : scenarios) {
    const LoopResult r = run_loop(scenario, mat, ucfg, kTtis);
    std::printf("\n[%s] detection rate %.2f, mean MCS %.1f, mean tput %.2f "
                "Mbps, mean BLER %.2f (perturbed %llu, missed %llu)\n",
                name, r.detection_rate, summarize(r.mcs).mean,
                summarize(r.throughput).mean, summarize(r.bler).mean,
                static_cast<unsigned long long>(r.perturbations_applied),
                static_cast<unsigned long long>(r.deadline_misses));
    print_cdf("MCS", r.mcs);
    print_cdf("throughput", r.throughput);
    print_cdf("BLER", r.bler);
    for (const auto& [metric, xs] :
         {std::pair<const char*, const std::vector<double>*>{"mcs", &r.mcs},
          {"throughput", &r.throughput},
          {"bler", &r.bler}}) {
      for (const auto& [x, p] : EmpiricalCdf(*xs).table(12))
        csv.row(name, metric, x, p);
    }
  }

  std::printf("\nshape check: no-attack keeps BLER moderate via adaptive "
              "MCS;\nUAP pins fixed MCS → BLER ~1, throughput collapse;\n"
              "input-specific sits between (deadline misses).\n");
  save_csv(csv, "fig5");
  return 0;
}
