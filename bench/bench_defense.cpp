// Defense-plane benchmark (DESIGN.md §14): detection quality and
// determinism of the serving engine's inline adversarial defense.
//
// Workload: a labeled attacker-in-the-fleet stream
// (attack::make_labeled_traffic) — per-flow clean KPM random walks with a
// seeded schedule of FGSM (input-specific PGM) and UAP slots hidden among
// them — served through a defense-enabled ServeEngine whose three
// detectors were calibrated on the stream's clean warmup window. The
// adversarial slots contend with the clean fleet traffic for the same
// micro-batcher, queue and replicas (the attack-contention condition).
//
// The bench asserts the three defense claims:
//   * detection — ranking requests by their combined defense score
//     separates each attack family from clean traffic with ROC AUC at
//     least --min-auc (committed: 0.9 for FGSM and UAP), both in the
//     contention phase and re-run under the committed chaos plan
//     (serve.admit / serve.batch faults rerouting rows through the
//     degraded-sync path);
//   * determinism — the full decision stream (status, prediction, score)
//     is byte-identical at 1 and 4 threads, in both phases, and the
//     quarantine-burst flight trigger fires on the sustained attack;
//   * hardening — the quarantined samples accumulated in the fine-tuning
//     queue let defense::harden() raise the victim's agreement with the
//     flows' reference labels on exactly those adversarial points.
//
// Output: a deterministic JSON report (schema "orev-defense-bench-v1",
// no wall-clock fields — CI runs the bench twice and byte-diffs) plus a
// stdout summary. Exit is non-zero when any gate fails.
//
// Flags: --flows N  --warmup N  --rounds N  --attack-fraction F  --eps E
//        --min-auc A  --report-out FILE   (plus the common --threads /
//        --metrics-out / --trace-out / --flight-dir flags via ObsGuard).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attack/adv_traffic.hpp"
#include "attack/pgm.hpp"
#include "bench_common.hpp"
#include "defense/defenses.hpp"
#include "defense/detectors.hpp"
#include "serve/serve.hpp"
#include "util/persist/bytes.hpp"
#include "util/sha256.hpp"

namespace {

using namespace orev;
using namespace orev::bench;

constexpr int kFeatures = 4;
constexpr int kClasses = 4;

struct Flags {
  int flows = 12;
  int warmup = 10;
  int rounds = 36;
  double attack_fraction = 0.3;
  float eps = 0.1f;
  /// ROC gate applied per attack family and per phase; 0 = report only.
  double min_auc = 0.9;
  std::string report_out = "bench_results/defense_report.json";
};

Flags parse_flags(int& argc, char** argv) {
  Flags f;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    auto take = [&](const char* name, auto setter) {
      const std::size_t len = std::strlen(name);
      if (std::strcmp(argv[r], name) == 0 && r + 1 < argc) {
        setter(argv[++r]);
        return true;
      }
      if (std::strncmp(argv[r], name, len) == 0 && argv[r][len] == '=') {
        setter(argv[r] + len + 1);
        return true;
      }
      return false;
    };
    if (take("--flows", [&](const char* v) { f.flows = std::atoi(v); }) ||
        take("--warmup", [&](const char* v) { f.warmup = std::atoi(v); }) ||
        take("--rounds", [&](const char* v) { f.rounds = std::atoi(v); }) ||
        take("--attack-fraction",
             [&](const char* v) { f.attack_fraction = std::atof(v); }) ||
        take("--eps",
             [&](const char* v) { f.eps = static_cast<float>(std::atof(v)); }) ||
        take("--min-auc", [&](const char* v) { f.min_auc = std::atof(v); }) ||
        take("--report-out", [&](const char* v) { f.report_out = v; })) {
      continue;
    }
    argv[w++] = argv[r];
  }
  argc = w;
  return f;
}

/// Synthetic KPM task over the traffic's [0, 1]^4 range: the class is the
/// argmax feature. Gives the victim real decision boundaries for the
/// attacks to cross and the distilled sibling something to disagree about.
data::Dataset argmax_dataset(int n, std::uint64_t seed) {
  const Rng base(seed);
  data::Dataset d;
  d.num_classes = kClasses;
  d.x = nn::Tensor({n, kFeatures});
  d.y.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Rng rng = base.split(static_cast<std::uint64_t>(i));
    int best = 0;
    for (int j = 0; j < kFeatures; ++j) {
      d.x.at2(i, j) = rng.uniform(0.0f, 1.0f);
      if (d.x.at2(i, j) > d.x.at2(i, best)) best = j;
    }
    d.y[static_cast<std::size_t>(i)] = best;
  }
  return d;
}

/// Outcome of serving the labeled stream through one defense-enabled
/// engine. Every field is a pure function of (traffic, config, plan).
struct DefenseRun {
  /// Combined defense score per scored (post-warmup) request, in
  /// submission order; −1 prediction rows included.
  std::vector<double> scores;
  std::vector<attack::TrafficLabel> labels;
  /// Rows the engine shed without screening (excluded from ROC).
  std::vector<bool> screened_row;
  std::string digest;  // SHA-256 over (status, prediction, score) rows
  std::uint64_t screened = 0;
  std::uint64_t flagged = 0;
  std::uint64_t quarantined_status = 0;
  std::uint64_t bursts = 0;
  serve::SloSnapshot slo;
  defense::FineTuneQueue finetune{1};
  std::size_t finetune_size = 0;
  std::uint64_t finetune_dropped = 0;
};

serve::ServeConfig defense_engine_config(const std::string& name) {
  serve::ServeConfig cfg;
  cfg.name = name;
  cfg.batch_max = 16;
  cfg.deadline_us = 1000000;  // latency is not under test here
  cfg.flush_wait_us = 2000;
  cfg.replicas = 2;
  cfg.defense.enable = true;
  // Burst trigger sized for the stream: flagged fraction under a 0.3
  // attack fraction crosses 0.2 over a 32-request window quickly.
  cfg.defense.burst_window = 32;
  cfg.defense.burst_threshold = 0.2;
  cfg.defense.quarantine_capacity = 64;
  cfg.defense.finetune_capacity = 128;
  return cfg;
}

/// Serve the stream's scored window through a freshly calibrated engine at
/// `threads` threads, optionally under a fault plan.
DefenseRun run_stream(const nn::Model& victim, const nn::Model& sibling,
                      const attack::LabeledTraffic& traffic, int threads,
                      const std::string& name,
                      const fault::FaultPlan* plan) {
  util::set_num_threads(threads);
  serve::ServeEngine eng(victim.clone(),
                         defense_engine_config(name + std::to_string(threads)));
  eng.attach_defense_sibling(sibling.clone());

  fault::FaultInjector injector(plan == nullptr ? fault::FaultPlan{} : *plan);
  if (plan != nullptr) eng.set_fault_injector(&injector);

  // Calibration: the guaranteed-clean warmup window (round-major prefix).
  const int warm = traffic.flows * traffic.warmup_rounds;
  nn::Tensor warm_rows({warm, kFeatures});
  for (int i = 0; i < warm; ++i)
    warm_rows.set_batch(i, traffic.requests[static_cast<std::size_t>(i)].input);
  eng.defense()->calibrate(warm_rows);
  for (int f = 0; f < traffic.flows; ++f) {
    nn::Tensor flow_rows({traffic.warmup_rounds, kFeatures});
    for (int r = 0; r < traffic.warmup_rounds; ++r)
      flow_rows.set_batch(
          r, traffic.requests[static_cast<std::size_t>(r * traffic.flows + f)]
                 .input);
    eng.defense()->calibrate_flow(
        traffic.requests[static_cast<std::size_t>(f)].flow_key, flow_rows, 0);
  }

  // Scored window: everything after the warmup, in arrival order.
  const std::size_t first = static_cast<std::size_t>(warm);
  const std::size_t m = traffic.requests.size() - first;
  DefenseRun run;
  run.scores.assign(m, 0.0);
  run.labels.assign(m, attack::TrafficLabel::kClean);
  run.screened_row.assign(m, false);
  std::vector<std::uint8_t> statuses(m, 0);
  std::vector<int> preds(m, -1);
  for (std::size_t i = 0; i < m; ++i) {
    const attack::LabeledRequest& req = traffic.requests[first + i];
    run.labels[i] = req.label;
    eng.submit(nn::Tensor(req.input),
               serve::FlowTag{req.flow_key, req.version}, {},
               [&run, &statuses, &preds, i](const serve::ServeResult& r) {
                 statuses[i] = static_cast<std::uint8_t>(r.status);
                 preds[i] = r.prediction;
                 run.scores[i] = r.defense_score;
                 run.screened_row[i] =
                     r.status != serve::ServeStatus::kRejected;
                 if (r.status == serve::ServeStatus::kQuarantined)
                   ++run.quarantined_status;
               });
  }
  eng.drain();

  persist::ByteWriter w;
  for (std::size_t i = 0; i < m; ++i) {
    w.u8(statuses[i]);
    w.i32(preds[i]);
    w.f64(run.scores[i]);
  }
  run.digest = Sha256::hex(w.buffer());
  run.screened = eng.defense()->screened();
  run.flagged = eng.defense()->flagged();
  run.bursts = eng.defense()->bursts();
  run.slo = eng.slo();
  run.finetune = eng.defense()->finetune();
  run.finetune_size = run.finetune.size();
  run.finetune_dropped = run.finetune.dropped();
  return run;
}

/// ROC AUC of `scores` separating `positive`-labeled rows from clean rows
/// (Mann–Whitney rank statistic, ties counted half). Rows the engine never
/// screened are excluded. Returns −1 when either class is empty.
double roc_auc(const DefenseRun& run, attack::TrafficLabel positive) {
  std::vector<double> pos, neg;
  for (std::size_t i = 0; i < run.scores.size(); ++i) {
    if (!run.screened_row[i]) continue;
    if (run.labels[i] == positive) pos.push_back(run.scores[i]);
    if (run.labels[i] == attack::TrafficLabel::kClean)
      neg.push_back(run.scores[i]);
  }
  if (pos.empty() || neg.empty()) return -1.0;
  double wins = 0.0;
  for (const double p : pos)
    for (const double n : neg) {
      if (p > n) wins += 1.0;
      else if (p == n) wins += 0.5;
    }
  return wins / (static_cast<double>(pos.size()) *
                 static_cast<double>(neg.size()));
}

/// Fraction of queue samples whose model prediction equals the queue's
/// reference label.
double queue_agreement(nn::Model& model, const defense::FineTuneQueue& q) {
  if (q.empty()) return 0.0;
  std::size_t match = 0;
  for (const defense::FineTuneQueue::Item& it : q.items())
    if (model.predict_one(it.sample) == it.label) ++match;
  return static_cast<double>(match) / static_cast<double>(q.size());
}

}  // namespace

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  const int cli_threads = parse_threads_flag(argc, argv);
  (void)cli_threads;
  const Flags f = parse_flags(argc, argv);

  std::printf("=== Defense plane: %d flows x (%d warmup + %d) rounds, "
              "attack fraction %.2f, eps %.2f ===\n",
              f.flows, f.warmup, f.rounds, f.attack_fraction, f.eps);

  // ---- victim + distilled sibling --------------------------------------
  util::set_num_threads(1);
  const data::Dataset d_all = argmax_dataset(512, 0xd57a);
  Rng split_rng(0x5137);
  const data::Split split = data::stratified_split(d_all, 0.8, split_rng);
  nn::Model victim = apps::make_kpm_dnn(kFeatures, kClasses, 17);
  {
    nn::TrainConfig tc;
    tc.max_epochs = 16;
    tc.learning_rate = 5e-3f;
    tc.early_stop_patience = 5;
    nn::Trainer trainer(tc);
    const nn::TrainReport rep =
        trainer.fit(victim, split.train.x, split.train.y, split.test.x,
                    split.test.y);
    std::printf("[victim] %s val acc %.3f after %d epochs\n",
                victim.name().c_str(), rep.best_val_accuracy, rep.epochs_run);
  }
  defense::DistillConfig dc;
  dc.train.max_epochs = 12;
  dc.train.learning_rate = 5e-3f;
  dc.train.early_stop_patience = 4;
  nn::Model sibling = defense::distill(
      victim,
      [](std::uint64_t seed) {
        return apps::make_one_layer({kFeatures}, kClasses, seed);
      },
      split.train, split.test, dc);
  std::printf("[sibling] distilled %s\n", sibling.name().c_str());

  // ---- labeled traffic --------------------------------------------------
  attack::AdvTrafficConfig tcfg;
  tcfg.flows = f.flows;
  tcfg.warmup_rounds = f.warmup;
  tcfg.rounds = f.rounds;
  tcfg.attack_fraction = f.attack_fraction;
  tcfg.eps = f.eps;
  attack::Fgsm inner(f.eps);
  const attack::LabeledTraffic traffic =
      attack::make_labeled_traffic(victim, inner, tcfg);
  int n_pgm = 0, n_uap = 0;
  for (const attack::LabeledRequest& r : traffic.requests) {
    if (r.label == attack::TrafficLabel::kPgm) ++n_pgm;
    if (r.label == attack::TrafficLabel::kUap) ++n_uap;
  }
  std::printf("[traffic] %zu requests (%d adversarial: %d pgm, %d uap), "
              "uap fooling %.2f\n",
              traffic.requests.size(), traffic.adversarial, n_pgm, n_uap,
              traffic.uap_fooling);

  // ---- contention phase: clean + adversarial share the engine ----------
  const DefenseRun cont1 =
      run_stream(victim, sibling, traffic, 1, "def", nullptr);
  const DefenseRun cont4 =
      run_stream(victim, sibling, traffic, 4, "def", nullptr);
  const bool cont_identical = cont1.digest == cont4.digest;
  const double cont_auc_pgm = roc_auc(cont1, attack::TrafficLabel::kPgm);
  const double cont_auc_uap = roc_auc(cont1, attack::TrafficLabel::kUap);
  std::printf("[contention] auc pgm=%.4f uap=%.4f  quarantined=%llu/%llu  "
              "bursts=%llu  digests %s\n",
              cont_auc_pgm, cont_auc_uap,
              static_cast<unsigned long long>(cont1.quarantined_status),
              static_cast<unsigned long long>(cont1.screened),
              static_cast<unsigned long long>(cont1.bursts),
              cont_identical ? "match" : "MISMATCH");

  // ---- chaos phase: same stream under the committed fault plan ---------
  const fault::FaultPlan plan = fault::default_chaos_plan();
  const DefenseRun chaos1 =
      run_stream(victim, sibling, traffic, 1, "defchaos", &plan);
  const DefenseRun chaos4 =
      run_stream(victim, sibling, traffic, 4, "defchaos", &plan);
  const bool chaos_identical = chaos1.digest == chaos4.digest;
  const double chaos_auc_pgm = roc_auc(chaos1, attack::TrafficLabel::kPgm);
  const double chaos_auc_uap = roc_auc(chaos1, attack::TrafficLabel::kUap);
  std::printf("[chaos] auc pgm=%.4f uap=%.4f  quarantined=%llu/%llu  "
              "degraded=%llu rejected=%llu  digests %s\n",
              chaos_auc_pgm, chaos_auc_uap,
              static_cast<unsigned long long>(chaos1.quarantined_status),
              static_cast<unsigned long long>(chaos1.screened),
              static_cast<unsigned long long>(chaos1.slo.degraded_syncs),
              static_cast<unsigned long long>(chaos1.slo.rejected),
              chaos_identical ? "match" : "MISMATCH");

  // ---- hardening: fine-tune the victim on its quarantine queue ---------
  util::set_num_threads(1);
  nn::Model hardened = victim.clone();
  const double agree_before = queue_agreement(hardened, cont1.finetune);
  nn::TrainConfig hc;
  hc.max_epochs = 6;
  hc.learning_rate = 2e-3f;
  hc.early_stop_patience = 6;
  const nn::TrainReport hrep = defense::harden(hardened, cont1.finetune, hc);
  const double agree_after = queue_agreement(hardened, cont1.finetune);
  std::printf("[harden] queue=%zu (dropped %llu)  reference agreement "
              "%.3f -> %.3f after %d epochs\n",
              cont1.finetune_size,
              static_cast<unsigned long long>(cont1.finetune_dropped),
              agree_before, agree_after, hrep.epochs_run);

  // ---- gates ------------------------------------------------------------
  const bool auc_ok =
      f.min_auc <= 0.0 ||
      (cont_auc_pgm >= f.min_auc && cont_auc_uap >= f.min_auc &&
       chaos_auc_pgm >= f.min_auc && chaos_auc_uap >= f.min_auc);
  const bool burst_ok = cont1.bursts >= 1;
  const bool harden_ok = cont1.finetune_size == 0 ||
                         (hrep.epochs_run > 0 && agree_after >= agree_before);
  const bool pass = cont_identical && chaos_identical && auc_ok && burst_ok &&
                    harden_ok;

  // ---- deterministic JSON report (no wall-clock fields) ----------------
  {
    std::error_code ec;
    const std::filesystem::path out(f.report_out);
    if (out.has_parent_path())
      std::filesystem::create_directories(out.parent_path(), ec);
    std::FILE* fp = std::fopen(f.report_out.c_str(), "w");
    if (fp == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", f.report_out.c_str());
      return 2;
    }
    std::fprintf(fp, "{\n  \"schema\": \"orev-defense-bench-v1\",\n");
    std::fprintf(
        fp,
        "  \"config\": {\"flows\": %d, \"warmup_rounds\": %d, \"rounds\": "
        "%d, \"attack_fraction\": %.4f, \"eps\": %.4f, \"requests\": %zu, "
        "\"adversarial\": %d, \"pgm_slots\": %d, \"uap_slots\": %d, "
        "\"uap_fooling\": %.4f, \"min_auc\": %.4f},\n",
        f.flows, f.warmup, f.rounds, f.attack_fraction,
        static_cast<double>(f.eps), traffic.requests.size(),
        traffic.adversarial, n_pgm, n_uap, traffic.uap_fooling, f.min_auc);
    auto phase_json = [&fp](const char* name, const DefenseRun& t1,
                            const DefenseRun& t4, double auc_pgm,
                            double auc_uap, bool identical) {
      std::fprintf(
          fp,
          "  \"%s\": {\"auc_pgm\": %.6f, \"auc_uap\": %.6f, "
          "\"screened\": %llu, \"flagged\": %llu, \"quarantined\": %llu, "
          "\"bursts\": %llu, \"degraded_syncs\": %llu, \"rejected\": %llu, "
          "\"digest_t1\": \"%s\", \"digest_t4\": \"%s\", "
          "\"byte_identical\": %s},\n",
          name, auc_pgm, auc_uap,
          static_cast<unsigned long long>(t1.screened),
          static_cast<unsigned long long>(t1.flagged),
          static_cast<unsigned long long>(t1.quarantined_status),
          static_cast<unsigned long long>(t1.bursts),
          static_cast<unsigned long long>(t1.slo.degraded_syncs),
          static_cast<unsigned long long>(t1.slo.rejected),
          t1.digest.c_str(), t4.digest.c_str(),
          identical ? "true" : "false");
    };
    phase_json("contention", cont1, cont4, cont_auc_pgm, cont_auc_uap,
               cont_identical);
    phase_json("chaos", chaos1, chaos4, chaos_auc_pgm, chaos_auc_uap,
               chaos_identical);
    std::fprintf(
        fp,
        "  \"hardening\": {\"queue\": %zu, \"dropped\": %llu, \"epochs\": "
        "%d, \"agreement_before\": %.6f, \"agreement_after\": %.6f},\n",
        cont1.finetune_size,
        static_cast<unsigned long long>(cont1.finetune_dropped),
        hrep.epochs_run, agree_before, agree_after);
    std::fprintf(fp, "  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(fp);
    std::printf("[report] wrote %s\n", f.report_out.c_str());
  }

  CsvWriter csv;
  csv.header({"phase", "auc_pgm", "auc_uap", "quarantined", "bursts",
              "byte_identical"});
  csv.row("contention", cont_auc_pgm, cont_auc_uap,
          cont1.quarantined_status, cont1.bursts, cont_identical ? 1 : 0);
  csv.row("chaos", chaos_auc_pgm, chaos_auc_uap, chaos1.quarantined_status,
          chaos1.bursts, chaos_identical ? 1 : 0);
  save_csv(csv, "defense");

  print_rule();
  std::printf("auc: contention pgm=%.3f uap=%.3f, chaos pgm=%.3f uap=%.3f "
              "(gate %.2f)\n",
              cont_auc_pgm, cont_auc_uap, chaos_auc_pgm, chaos_auc_uap,
              f.min_auc);
  std::printf("digests: contention %s, chaos %s  bursts=%llu  harden %s  "
              "->  %s\n",
              cont_identical ? "identical" : "DIVERGED",
              chaos_identical ? "identical" : "DIVERGED",
              static_cast<unsigned long long>(cont1.bursts),
              harden_ok ? "ok" : "REGRESSED", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
