// Defense-plane benchmark (DESIGN.md §14): detection quality and
// determinism of the serving engine's inline adversarial defense.
//
// Workload: a labeled attacker-in-the-fleet stream
// (attack::make_labeled_traffic) — per-flow clean KPM random walks with a
// seeded schedule of FGSM (input-specific PGM) and UAP slots hidden among
// them — served through a defense-enabled ServeEngine whose three
// detectors were calibrated on the stream's clean warmup window. The
// adversarial slots contend with the clean fleet traffic for the same
// micro-batcher, queue and replicas (the attack-contention condition).
//
// The bench asserts the defense claims:
//   * detection — ranking requests by their combined defense score
//     separates each attack family from clean traffic with ROC AUC at
//     least --min-auc (committed: 0.9 for FGSM and UAP), both in the
//     contention phase and re-run under the committed chaos plan
//     (serve.admit / serve.batch faults rerouting rows through the
//     degraded-sync path);
//   * determinism — the full decision stream (status, prediction, score)
//     is byte-identical at 1 and 4 threads, in both phases, and the
//     quarantine-burst flight trigger fires on the sustained attack;
//   * hardening — the quarantined samples accumulated in the fine-tuning
//     queue let defense::harden() raise the victim's agreement with the
//     flows' reference labels on exactly those adversarial points;
//   * the closed loop (DESIGN.md §15) — with adaptive thresholds, the
//     review/release cadence and the gated hot-swap all active, detection
//     stays at --min-auc-loop (committed: 0.99), at least one quarantined
//     false positive is released, the mid-stream hardened swap passes the
//     gate (and an untrained impostor bounces off it with the fleet still
//     serving), the full decision + release + threshold stream stays
//     byte-identical at 1 and 4 threads, a kill-point fired right after
//     the swap's durable commit resumes byte-exactly from the committed
//     checkpoints, and the whole loop costs at most --max-p99-overhead
//     extra p99 virtual latency over a defenseless engine.
//
// Output: a deterministic JSON report (schema "orev-defense-bench-v2",
// no wall-clock fields — CI runs the bench twice and byte-diffs) plus a
// stdout summary. Exit is non-zero when any gate fails.
//
// Flags: --flows N  --warmup N  --rounds N  --attack-fraction F  --eps E
//        --min-auc A  --min-auc-loop A  --max-p99-overhead F
//        --ckpt-dir DIR  --report-out FILE   (plus the common --threads /
//        --metrics-out / --trace-out / --flight-dir flags via ObsGuard).
#include <algorithm>
#include <cstdlib>
#include <utility>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "attack/adv_traffic.hpp"
#include "attack/pgm.hpp"
#include "bench_common.hpp"
#include "defense/defenses.hpp"
#include "defense/detectors.hpp"
#include "serve/serve.hpp"
#include "util/persist/bytes.hpp"
#include "util/sha256.hpp"

namespace {

using namespace orev;
using namespace orev::bench;

constexpr int kFeatures = 4;
constexpr int kClasses = 4;

struct Flags {
  int flows = 12;
  int warmup = 10;
  int rounds = 36;
  double attack_fraction = 0.3;
  float eps = 0.1f;
  /// ROC gate applied per attack family and per phase; 0 = report only.
  double min_auc = 0.9;
  /// ROC gate for the closed-loop phase (adaptive thresholds + review +
  /// hot-swap active); 0 = report only.
  double min_auc_loop = 0.99;
  /// Largest tolerated relative p99 latency cost of the full closed-loop
  /// defense vs the same engine with the plane disabled; 0 = report only.
  double max_p99_overhead = 0.05;
  std::string report_out = "bench_results/defense_report.json";
  std::string ckpt_dir = "bench_results/defense_ckpt";
};

Flags parse_flags(int& argc, char** argv) {
  Flags f;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    auto take = [&](const char* name, auto setter) {
      const std::size_t len = std::strlen(name);
      if (std::strcmp(argv[r], name) == 0 && r + 1 < argc) {
        setter(argv[++r]);
        return true;
      }
      if (std::strncmp(argv[r], name, len) == 0 && argv[r][len] == '=') {
        setter(argv[r] + len + 1);
        return true;
      }
      return false;
    };
    if (take("--flows", [&](const char* v) { f.flows = std::atoi(v); }) ||
        take("--warmup", [&](const char* v) { f.warmup = std::atoi(v); }) ||
        take("--rounds", [&](const char* v) { f.rounds = std::atoi(v); }) ||
        take("--attack-fraction",
             [&](const char* v) { f.attack_fraction = std::atof(v); }) ||
        take("--eps",
             [&](const char* v) { f.eps = static_cast<float>(std::atof(v)); }) ||
        take("--min-auc", [&](const char* v) { f.min_auc = std::atof(v); }) ||
        take("--min-auc-loop",
             [&](const char* v) { f.min_auc_loop = std::atof(v); }) ||
        take("--max-p99-overhead",
             [&](const char* v) { f.max_p99_overhead = std::atof(v); }) ||
        take("--ckpt-dir", [&](const char* v) { f.ckpt_dir = v; }) ||
        take("--report-out", [&](const char* v) { f.report_out = v; })) {
      continue;
    }
    argv[w++] = argv[r];
  }
  argc = w;
  return f;
}

/// Synthetic KPM task over the traffic's [0, 1]^4 range: the class is the
/// argmax feature. Gives the victim real decision boundaries for the
/// attacks to cross and the distilled sibling something to disagree about.
data::Dataset argmax_dataset(int n, std::uint64_t seed) {
  const Rng base(seed);
  data::Dataset d;
  d.num_classes = kClasses;
  d.x = nn::Tensor({n, kFeatures});
  d.y.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Rng rng = base.split(static_cast<std::uint64_t>(i));
    int best = 0;
    for (int j = 0; j < kFeatures; ++j) {
      d.x.at2(i, j) = rng.uniform(0.0f, 1.0f);
      if (d.x.at2(i, j) > d.x.at2(i, best)) best = j;
    }
    d.y[static_cast<std::size_t>(i)] = best;
  }
  return d;
}

/// Outcome of serving the labeled stream through one defense-enabled
/// engine. Every field is a pure function of (traffic, config, plan).
struct DefenseRun {
  /// Combined defense score per scored (post-warmup) request, in
  /// submission order; −1 prediction rows included.
  std::vector<double> scores;
  std::vector<attack::TrafficLabel> labels;
  /// Rows the engine shed without screening (excluded from ROC).
  std::vector<bool> screened_row;
  std::string digest;  // SHA-256 over (status, prediction, score) rows
  std::uint64_t screened = 0;
  std::uint64_t flagged = 0;
  std::uint64_t quarantined_status = 0;
  std::uint64_t bursts = 0;
  serve::SloSnapshot slo;
  defense::FineTuneQueue finetune{1};
  std::size_t finetune_size = 0;
  std::uint64_t finetune_dropped = 0;
};

serve::ServeConfig defense_engine_config(const std::string& name) {
  serve::ServeConfig cfg;
  cfg.name = name;
  cfg.batch_max = 16;
  cfg.deadline_us = 1000000;  // latency is not under test here
  cfg.flush_wait_us = 2000;
  cfg.replicas = 2;
  cfg.defense.enable = true;
  // Burst trigger sized for the stream: flagged fraction under a 0.3
  // attack fraction crosses 0.2 over a 32-request window quickly.
  cfg.defense.burst_window = 32;
  cfg.defense.burst_threshold = 0.2;
  cfg.defense.quarantine_capacity = 64;
  cfg.defense.finetune_capacity = 128;
  return cfg;
}

/// The stream's guaranteed-clean warmup window as one [warm, kFeatures]
/// tensor (round-major prefix of the request sequence).
nn::Tensor warmup_rows(const attack::LabeledTraffic& traffic) {
  const int warm = traffic.flows * traffic.warmup_rounds;
  nn::Tensor rows({warm, kFeatures});
  for (int i = 0; i < warm; ++i)
    rows.set_batch(i, traffic.requests[static_cast<std::size_t>(i)].input);
  return rows;
}

/// Calibrate an engine's defense plane on the stream's clean warmup
/// window: the distribution profile on all warmup rows, the norm screen
/// on each flow's consecutive warmup walk.
void calibrate_engine(serve::ServeEngine& eng,
                      const attack::LabeledTraffic& traffic) {
  eng.defense()->calibrate(warmup_rows(traffic));
  for (int f = 0; f < traffic.flows; ++f) {
    nn::Tensor flow_rows({traffic.warmup_rounds, kFeatures});
    for (int r = 0; r < traffic.warmup_rounds; ++r)
      flow_rows.set_batch(
          r, traffic.requests[static_cast<std::size_t>(r * traffic.flows + f)]
                 .input);
    eng.defense()->calibrate_flow(
        traffic.requests[static_cast<std::size_t>(f)].flow_key, flow_rows, 0);
  }
}

/// Serve the stream's scored window through a freshly calibrated engine at
/// `threads` threads, optionally under a fault plan.
DefenseRun run_stream(const nn::Model& victim, const nn::Model& sibling,
                      const attack::LabeledTraffic& traffic, int threads,
                      const std::string& name,
                      const fault::FaultPlan* plan) {
  util::set_num_threads(threads);
  serve::ServeEngine eng(victim.clone(),
                         defense_engine_config(name + std::to_string(threads)));
  eng.attach_defense_sibling(sibling.clone());

  fault::FaultInjector injector(plan == nullptr ? fault::FaultPlan{} : *plan);
  if (plan != nullptr) eng.set_fault_injector(&injector);

  calibrate_engine(eng, traffic);

  // Scored window: everything after the warmup, in arrival order.
  const std::size_t first =
      static_cast<std::size_t>(traffic.flows * traffic.warmup_rounds);
  const std::size_t m = traffic.requests.size() - first;
  DefenseRun run;
  run.scores.assign(m, 0.0);
  run.labels.assign(m, attack::TrafficLabel::kClean);
  run.screened_row.assign(m, false);
  std::vector<std::uint8_t> statuses(m, 0);
  std::vector<int> preds(m, -1);
  for (std::size_t i = 0; i < m; ++i) {
    const attack::LabeledRequest& req = traffic.requests[first + i];
    run.labels[i] = req.label;
    eng.submit(nn::Tensor(req.input),
               serve::FlowTag{req.flow_key, req.version}, {},
               [&run, &statuses, &preds, i](const serve::ServeResult& r) {
                 statuses[i] = static_cast<std::uint8_t>(r.status);
                 preds[i] = r.prediction;
                 run.scores[i] = r.defense_score;
                 run.screened_row[i] =
                     r.status != serve::ServeStatus::kRejected;
                 if (r.status == serve::ServeStatus::kQuarantined)
                   ++run.quarantined_status;
               });
  }
  eng.drain();

  persist::ByteWriter w;
  for (std::size_t i = 0; i < m; ++i) {
    w.u8(statuses[i]);
    w.i32(preds[i]);
    w.f64(run.scores[i]);
  }
  run.digest = Sha256::hex(w.buffer());
  run.screened = eng.defense()->screened();
  run.flagged = eng.defense()->flagged();
  run.bursts = eng.defense()->bursts();
  run.slo = eng.slo();
  run.finetune = eng.defense()->finetune();
  run.finetune_size = run.finetune.size();
  run.finetune_dropped = run.finetune.dropped();
  return run;
}

/// Fraction of queue samples whose model prediction equals the queue's
/// reference label.
double queue_agreement(nn::Model& model, const defense::FineTuneQueue& q) {
  if (q.empty()) return 0.0;
  std::size_t match = 0;
  for (const defense::FineTuneQueue::Item& it : q.items())
    if (model.predict_one(it.sample) == it.label) ++match;
  return static_cast<double>(match) / static_cast<double>(q.size());
}

// ------------------------------------------------- closed-loop phase (§15)

serve::ServeConfig closed_loop_config(const std::string& name,
                                      const std::string& ckpt_dir) {
  serve::ServeConfig cfg = defense_engine_config(name);
  // Online adaptive thresholds: short warmup/cadence so the flag lines
  // actually move within the bench's ~430-row stream. The tight envelope
  // matters for the ROC: scores are normalized by the thresholds in force
  // when the row was screened, so a floor far below the static threshold
  // inflates late clean scores into the attack band, and a ceiling above
  // the ensemble's attainable maximum (1.0) turns that detector off.
  cfg.defense.adaptive.enable = true;
  cfg.defense.adaptive.warmup = 16;
  cfg.defense.adaptive.update_every = 8;
  cfg.defense.adaptive.floor_frac = 0.85;
  cfg.defense.adaptive.ceiling_frac = 1.1;
  // Staleness decay instead of hard LKG expiry: a hard expiry fires right
  // after a sustained flag run and adopts the first unflagged row —
  // during an attack burst often an adversarial one, which blinds the
  // step screen for every later attack row of that flow. With decay the
  // clean reference survives the burst (attack steps are huge, so they
  // stay flagged even discounted) while a frozen false-positive
  // reference still ages below the flag line and heals.
  cfg.defense.stale_decay = true;
  // Quarantine review: every 24 screened rows the ring drains, false
  // positives are released back to the apps, confirmed rows feed the
  // fine-tuning queue.
  cfg.defense.review_every = 24;
  cfg.defense.release_margin = 0.9;
  // Gated hot-swap, durably checkpointed (the crash scenario resumes
  // from these files).
  cfg.swap.enable = true;
  cfg.swap.tol_clean = 0.05;
  cfg.swap.min_attack_gain = 0.0;
  cfg.swap.checkpoint_dir = ckpt_dir;
  return cfg;
}

/// Outcome of one closed-loop serve: the run_stream decision stream plus
/// review/release, adaptive-threshold and hot-swap evidence. The digest
/// extends the per-row digest with every release outcome, the final swap
/// epoch and the final adapted thresholds.
struct ClosedLoopRun {
  std::vector<double> scores;
  std::vector<attack::TrafficLabel> labels;
  std::vector<bool> screened_row;
  std::string digest;
  std::uint64_t screened = 0;
  std::uint64_t flagged = 0;
  std::uint64_t quarantined_status = 0;
  std::uint64_t bursts = 0;
  std::uint64_t reviewed = 0;
  std::uint64_t released = 0;
  std::uint64_t confirmed = 0;
  std::uint64_t evicted = 0;
  std::uint64_t review_passes = 0;
  std::uint64_t swap_epoch = 0;
  std::uint64_t swaps_accepted = 0;
  std::uint64_t swaps_rejected = 0;
  std::uint64_t adaptive_updates = 0;
  std::uint64_t adaptive_held = 0;
  std::uint64_t adaptive_clamped = 0;
  double dist_threshold = 0.0;
  double ens_threshold = 0.0;
  serve::SwapGateReport reject_report;  // the broken candidate's verdict
  serve::SwapGateReport accept_report;  // the hardened candidate's verdict
  /// Hardened candidate's agreement with the fine-tune queue's reference
  /// labels, before/after fine-tuning (the swap's improvement claim).
  double agree_before = 0.0;
  double agree_after = 0.0;
  std::size_t finetune_at_swap = 0;
  std::vector<serve::ReviewOutcome> releases;
  bool crashed = false;
  serve::SloSnapshot slo;
};

/// Labels for the warmup rows under the bench's argmax task.
std::vector<int> argmax_labels(const nn::Tensor& rows) {
  std::vector<int> labels(static_cast<std::size_t>(rows.dim(0)));
  for (int i = 0; i < rows.dim(0); ++i) {
    int best = 0;
    for (int j = 1; j < rows.dim(1); ++j)
      if (rows.at2(i, j) > rows.at2(i, best)) best = j;
    labels[static_cast<std::size_t>(i)] = best;
  }
  return labels;
}

/// Serve the scored window through the full closed loop: adaptive
/// thresholds + cadenced review with release + a mid-stream gated hot-swap
/// (one refused broken candidate, then the hardened candidate). With
/// `crash_mid_swap` a kill plan crashes the accepted swap right after its
/// durable commit; the run then rebuilds the engine, resumes from the
/// committed checkpoints via load_status + resume_hot_swap, and finishes
/// the stream — the digest must equal the never-crashed run's.
ClosedLoopRun run_closed_loop(const nn::Model& victim, const nn::Model& sibling,
                              const attack::LabeledTraffic& traffic,
                              int threads, const std::string& name,
                              const std::string& ckpt_dir,
                              bool crash_mid_swap) {
  util::set_num_threads(threads);
  std::error_code ec;
  std::filesystem::create_directories(ckpt_dir, ec);
  const serve::ServeConfig cfg = closed_loop_config(name, ckpt_dir);
  auto eng = std::make_unique<serve::ServeEngine>(victim.clone(), cfg);
  eng->attach_defense_sibling(sibling.clone());
  calibrate_engine(*eng, traffic);

  ClosedLoopRun run;
  serve::ServeEngine::ReleaseHandler on_release =
      [&run](const serve::ReviewOutcome& o) { run.releases.push_back(o); };
  eng->set_release_handler(on_release);

  // Kill plan for the crash scenario: the serve.swap site's first op is
  // the refused broken candidate, so `after=1` lands the crash exactly on
  // the accepted hardened swap — after its checkpoints committed.
  fault::FaultPlan kill;
  kill.seed = 1;
  {
    fault::FaultSpec s;
    s.kind = fault::FaultKind::kCrash;
    s.probability = 1.0;
    s.max_injections = 1;
    s.after = 1;
    kill.sites[fault::sites::kServeSwap].push_back(s);
  }
  fault::FaultInjector injector(kill);
  if (crash_mid_swap) eng->set_fault_injector(&injector);

  const nn::Tensor warm_rows = warmup_rows(traffic);
  const std::vector<int> warm_labels = argmax_labels(warm_rows);

  const std::size_t first =
      static_cast<std::size_t>(traffic.flows * traffic.warmup_rounds);
  const std::size_t m = traffic.requests.size() - first;
  const std::size_t swap_at = m * 3 / 5;
  run.scores.assign(m, 0.0);
  run.labels.assign(m, attack::TrafficLabel::kClean);
  run.screened_row.assign(m, false);
  std::vector<std::uint8_t> statuses(m, 0);
  std::vector<int> preds(m, -1);
  for (std::size_t i = 0; i < m; ++i) {
    if (i == swap_at) {
      // 1. A broken candidate (same architecture identity, untrained
      //    weights) must bounce off the gate with the fleet still serving.
      nn::Model broken = apps::make_kpm_dnn(kFeatures, kClasses, 0xbad);
      run.reject_report =
          eng->request_hot_swap(broken, warm_rows, warm_labels);
      // 2. Harden a candidate on the review-confirmed fine-tune queue
      //    (single-threaded: the candidate must be byte-identical across
      //    the bench's thread counts for the digest comparison).
      util::set_num_threads(1);
      const defense::FineTuneQueue& queue = eng->defense()->finetune();
      run.finetune_at_swap = queue.size();
      nn::Model probe = victim.clone();
      run.agree_before = queue_agreement(probe, queue);
      // Gentle fine-tuning: the candidate must gain on the attack points
      // without giving up the clean accuracy the swap gate protects.
      nn::TrainConfig hc;
      hc.max_epochs = 4;
      hc.learning_rate = 5e-4f;
      hc.early_stop_patience = 4;
      nn::Model candidate = defense::harden_candidate(
          victim, queue, hc, nullptr, &warm_rows, &warm_labels);
      run.agree_after = queue_agreement(candidate, queue);
      util::set_num_threads(threads);
      // 3. Promote it through the gate. In the crash scenario the
      //    kill-point fires after the swap committed durably; a "fresh
      //    process" (new engine over the same config) resumes byte-exactly
      //    from the checkpoints and the committed candidate.
      try {
        run.accept_report =
            eng->request_hot_swap(candidate, warm_rows, warm_labels);
      } catch (const fault::FaultInjectedError&) {
        run.crashed = true;
        run.accept_report = eng->swap_report();
        eng = std::make_unique<serve::ServeEngine>(victim.clone(), cfg);
        eng->attach_defense_sibling(sibling.clone());
        eng->set_release_handler(on_release);
        persist::Status st = eng->load_status(ckpt_dir + "/engine.ckpt");
        OREV_CHECK(st.ok(), "crash resume: engine checkpoint: " + st.message());
        st = eng->defense()->load_status(ckpt_dir + "/defense.ckpt");
        OREV_CHECK(st.ok(),
                   "crash resume: defense checkpoint: " + st.message());
        eng->resume_hot_swap(candidate);
      }
    }
    const attack::LabeledRequest& req = traffic.requests[first + i];
    run.labels[i] = req.label;
    eng->submit(nn::Tensor(req.input),
                serve::FlowTag{req.flow_key, req.version}, {},
                [&run, &statuses, &preds, i](const serve::ServeResult& r) {
                  statuses[i] = static_cast<std::uint8_t>(r.status);
                  preds[i] = r.prediction;
                  run.scores[i] = r.defense_score;
                  run.screened_row[i] =
                      r.status != serve::ServeStatus::kRejected;
                  if (r.status == serve::ServeStatus::kQuarantined)
                    ++run.quarantined_status;
                });
  }
  eng->drain();
  // End-of-workload flush: whatever the cadence left in the ring gets its
  // review, so the release evidence is complete.
  eng->review_quarantine_now();

  const serve::DefensePlane& plane = *eng->defense();
  run.screened = plane.screened();
  run.flagged = plane.flagged();
  run.bursts = plane.bursts();
  run.reviewed = plane.reviewed();
  run.released = plane.released();
  run.confirmed = plane.confirmed();
  run.evicted = plane.evicted();
  run.review_passes = plane.review_passes();
  run.swap_epoch = eng->swap_epoch();
  run.swaps_accepted = eng->swaps_accepted();
  run.swaps_rejected = eng->swaps_rejected();
  run.adaptive_updates = plane.adaptive().updates();
  run.adaptive_held = plane.adaptive().held_by_hysteresis();
  run.adaptive_clamped = plane.adaptive().clamped();
  run.dist_threshold = plane.adaptive().dist_threshold();
  run.ens_threshold = plane.adaptive().ens_threshold();
  run.slo = eng->slo();

  persist::ByteWriter w;
  for (std::size_t i = 0; i < m; ++i) {
    w.u8(statuses[i]);
    w.i32(preds[i]);
    w.f64(run.scores[i]);
  }
  w.u64(run.releases.size());
  for (const serve::ReviewOutcome& o : run.releases) {
    w.u64(o.request_id);
    w.i32(o.corrected_pred);
    w.f64(o.review_score);
    w.u64(o.model_epoch);
    w.u64(o.quarantined_at_profile_samples);
  }
  w.u64(run.swap_epoch);
  w.u64(run.released);
  w.u64(run.confirmed);
  w.u64(run.evicted);
  w.u64(run.review_passes);
  w.f64(run.dist_threshold);
  w.f64(run.ens_threshold);
  run.digest = Sha256::hex(w.buffer());
  return run;
}

/// p99 virtual latency of the same stream through the same engine shape
/// with the defense plane disabled — the closed loop's overhead baseline.
std::uint64_t run_plain_p99(const nn::Model& victim,
                            const attack::LabeledTraffic& traffic) {
  util::set_num_threads(1);
  serve::ServeConfig cfg = defense_engine_config("defplain");
  cfg.defense.enable = false;
  serve::ServeEngine eng(victim.clone(), cfg);
  const std::size_t first =
      static_cast<std::size_t>(traffic.flows * traffic.warmup_rounds);
  for (std::size_t i = first; i < traffic.requests.size(); ++i) {
    const attack::LabeledRequest& req = traffic.requests[i];
    eng.submit(nn::Tensor(req.input),
               serve::FlowTag{req.flow_key, req.version}, {},
               [](const serve::ServeResult&) {});
  }
  eng.drain();
  return eng.slo().p99_latency_us;
}

/// ROC AUC over a closed-loop run (same Mann–Whitney statistic).
double roc_auc_loop(const ClosedLoopRun& run, attack::TrafficLabel positive) {
  std::vector<double> pos, neg;
  for (std::size_t i = 0; i < run.scores.size(); ++i) {
    if (!run.screened_row[i]) continue;
    if (run.labels[i] == positive) pos.push_back(run.scores[i]);
    if (run.labels[i] == attack::TrafficLabel::kClean)
      neg.push_back(run.scores[i]);
  }
  if (pos.empty() || neg.empty()) return -1.0;
  double wins = 0.0;
  for (const double p : pos)
    for (const double n : neg) {
      if (p > n) wins += 1.0;
      else if (p == n) wins += 0.5;
    }
  return wins / (static_cast<double>(pos.size()) *
                 static_cast<double>(neg.size()));
}

/// ROC AUC of `scores` separating `positive`-labeled rows from clean rows
/// (Mann–Whitney rank statistic, ties counted half). Rows the engine never
/// screened are excluded. Returns −1 when either class is empty.
double roc_auc(const DefenseRun& run, attack::TrafficLabel positive) {
  std::vector<double> pos, neg;
  for (std::size_t i = 0; i < run.scores.size(); ++i) {
    if (!run.screened_row[i]) continue;
    if (run.labels[i] == positive) pos.push_back(run.scores[i]);
    if (run.labels[i] == attack::TrafficLabel::kClean)
      neg.push_back(run.scores[i]);
  }
  if (pos.empty() || neg.empty()) return -1.0;
  double wins = 0.0;
  for (const double p : pos)
    for (const double n : neg) {
      if (p > n) wins += 1.0;
      else if (p == n) wins += 0.5;
    }
  return wins / (static_cast<double>(pos.size()) *
                 static_cast<double>(neg.size()));
}

}  // namespace

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  const int cli_threads = parse_threads_flag(argc, argv);
  (void)cli_threads;
  const Flags f = parse_flags(argc, argv);

  std::printf("=== Defense plane: %d flows x (%d warmup + %d) rounds, "
              "attack fraction %.2f, eps %.2f ===\n",
              f.flows, f.warmup, f.rounds, f.attack_fraction, f.eps);

  // ---- victim + distilled sibling --------------------------------------
  util::set_num_threads(1);
  const data::Dataset d_all = argmax_dataset(512, 0xd57a);
  Rng split_rng(0x5137);
  const data::Split split = data::stratified_split(d_all, 0.8, split_rng);
  nn::Model victim = apps::make_kpm_dnn(kFeatures, kClasses, 17);
  {
    nn::TrainConfig tc;
    tc.max_epochs = 16;
    tc.learning_rate = 5e-3f;
    tc.early_stop_patience = 5;
    nn::Trainer trainer(tc);
    const nn::TrainReport rep =
        trainer.fit(victim, split.train.x, split.train.y, split.test.x,
                    split.test.y);
    std::printf("[victim] %s val acc %.3f after %d epochs\n",
                victim.name().c_str(), rep.best_val_accuracy, rep.epochs_run);
  }
  defense::DistillConfig dc;
  dc.train.max_epochs = 12;
  dc.train.learning_rate = 5e-3f;
  dc.train.early_stop_patience = 4;
  nn::Model sibling = defense::distill(
      victim,
      [](std::uint64_t seed) {
        return apps::make_one_layer({kFeatures}, kClasses, seed);
      },
      split.train, split.test, dc);
  std::printf("[sibling] distilled %s\n", sibling.name().c_str());

  // ---- labeled traffic --------------------------------------------------
  attack::AdvTrafficConfig tcfg;
  tcfg.flows = f.flows;
  tcfg.warmup_rounds = f.warmup;
  tcfg.rounds = f.rounds;
  tcfg.attack_fraction = f.attack_fraction;
  tcfg.eps = f.eps;
  attack::Fgsm inner(f.eps);
  const attack::LabeledTraffic traffic =
      attack::make_labeled_traffic(victim, inner, tcfg);
  int n_pgm = 0, n_uap = 0;
  for (const attack::LabeledRequest& r : traffic.requests) {
    if (r.label == attack::TrafficLabel::kPgm) ++n_pgm;
    if (r.label == attack::TrafficLabel::kUap) ++n_uap;
  }
  std::printf("[traffic] %zu requests (%d adversarial: %d pgm, %d uap), "
              "uap fooling %.2f\n",
              traffic.requests.size(), traffic.adversarial, n_pgm, n_uap,
              traffic.uap_fooling);

  // ---- contention phase: clean + adversarial share the engine ----------
  const DefenseRun cont1 =
      run_stream(victim, sibling, traffic, 1, "def", nullptr);
  const DefenseRun cont4 =
      run_stream(victim, sibling, traffic, 4, "def", nullptr);
  const bool cont_identical = cont1.digest == cont4.digest;
  const double cont_auc_pgm = roc_auc(cont1, attack::TrafficLabel::kPgm);
  const double cont_auc_uap = roc_auc(cont1, attack::TrafficLabel::kUap);
  std::printf("[contention] auc pgm=%.4f uap=%.4f  quarantined=%llu/%llu  "
              "bursts=%llu  digests %s\n",
              cont_auc_pgm, cont_auc_uap,
              static_cast<unsigned long long>(cont1.quarantined_status),
              static_cast<unsigned long long>(cont1.screened),
              static_cast<unsigned long long>(cont1.bursts),
              cont_identical ? "match" : "MISMATCH");

  // ---- chaos phase: same stream under the committed fault plan ---------
  const fault::FaultPlan plan = fault::default_chaos_plan();
  const DefenseRun chaos1 =
      run_stream(victim, sibling, traffic, 1, "defchaos", &plan);
  const DefenseRun chaos4 =
      run_stream(victim, sibling, traffic, 4, "defchaos", &plan);
  const bool chaos_identical = chaos1.digest == chaos4.digest;
  const double chaos_auc_pgm = roc_auc(chaos1, attack::TrafficLabel::kPgm);
  const double chaos_auc_uap = roc_auc(chaos1, attack::TrafficLabel::kUap);
  std::printf("[chaos] auc pgm=%.4f uap=%.4f  quarantined=%llu/%llu  "
              "degraded=%llu rejected=%llu  digests %s\n",
              chaos_auc_pgm, chaos_auc_uap,
              static_cast<unsigned long long>(chaos1.quarantined_status),
              static_cast<unsigned long long>(chaos1.screened),
              static_cast<unsigned long long>(chaos1.slo.degraded_syncs),
              static_cast<unsigned long long>(chaos1.slo.rejected),
              chaos_identical ? "match" : "MISMATCH");

  // ---- hardening: fine-tune the victim on its quarantine queue ---------
  util::set_num_threads(1);
  nn::Model hardened = victim.clone();
  const double agree_before = queue_agreement(hardened, cont1.finetune);
  nn::TrainConfig hc;
  hc.max_epochs = 6;
  hc.learning_rate = 2e-3f;
  hc.early_stop_patience = 6;
  const nn::TrainReport hrep = defense::harden(hardened, cont1.finetune, hc);
  const double agree_after = queue_agreement(hardened, cont1.finetune);
  std::printf("[harden] queue=%zu (dropped %llu)  reference agreement "
              "%.3f -> %.3f after %d epochs\n",
              cont1.finetune_size,
              static_cast<unsigned long long>(cont1.finetune_dropped),
              agree_before, agree_after, hrep.epochs_run);

  // ---- closed-loop phase: adaptive thresholds + review + hot-swap ------
  const ClosedLoopRun loop1 = run_closed_loop(
      victim, sibling, traffic, 1, "defloop", f.ckpt_dir + "/t1", false);
  const ClosedLoopRun loop4 = run_closed_loop(
      victim, sibling, traffic, 4, "defloop", f.ckpt_dir + "/t4", false);
  const bool loop_identical = loop1.digest == loop4.digest;
  const double loop_auc_pgm = roc_auc_loop(loop1, attack::TrafficLabel::kPgm);
  const double loop_auc_uap = roc_auc_loop(loop1, attack::TrafficLabel::kUap);
  if (std::getenv("OREV_DEFENSE_DEBUG") != nullptr) {
    const std::size_t dbg_swap = loop1.scores.size() * 3 / 5;
    auto dump = [&](const char* tag, const std::vector<double>& scores,
                    const std::vector<attack::TrafficLabel>& labels,
                    const std::vector<bool>& screened) {
      std::vector<std::pair<double, std::size_t>> clean, pgm;
      for (std::size_t i = 0; i < scores.size(); ++i) {
        if (!screened[i]) continue;
        if (labels[i] == attack::TrafficLabel::kClean)
          clean.push_back({scores[i], i});
        if (labels[i] == attack::TrafficLabel::kPgm)
          pgm.push_back({scores[i], i});
      }
      std::sort(clean.begin(), clean.end());
      std::sort(pgm.begin(), pgm.end());
      std::printf("[debug %s] top clean (swap at row %zu):\n", tag, dbg_swap);
      for (std::size_t k = clean.size() > 15 ? clean.size() - 15 : 0;
           k < clean.size(); ++k)
        std::printf("  clean row %zu score %.4f %s\n", clean[k].second,
                    clean[k].first,
                    clean[k].second >= dbg_swap ? "post-swap" : "pre-swap");
      std::printf("[debug %s] bottom pgm:\n", tag);
      double total_lost = 0.0;
      for (std::size_t k = 0; k < pgm.size(); ++k) {
        double lost = 0.0;
        for (const auto& c : clean) {
          if (c.first > pgm[k].first) lost += 1.0;
          else if (c.first == pgm[k].first) lost += 0.5;
        }
        total_lost += lost;
        if (k < 15)
          std::printf("  pgm row %zu score %.4f %s lost=%.1f\n",
                      pgm[k].second, pgm[k].first,
                      pgm[k].second >= dbg_swap ? "post-swap" : "pre-swap",
                      lost);
      }
      std::printf("[debug %s] pgm total lost pairs %.1f of %zu\n", tag,
                  total_lost, pgm.size() * clean.size());
    };
    dump("cont", cont1.scores, cont1.labels, cont1.screened_row);
    dump("loop", loop1.scores, loop1.labels, loop1.screened_row);
  }
  const double release_rate =
      loop1.flagged > 0
          ? static_cast<double>(loop1.released) /
                static_cast<double>(loop1.flagged)
          : 0.0;
  std::printf(
      "[closed-loop] auc pgm=%.4f uap=%.4f  flagged=%llu released=%llu "
      "confirmed=%llu (rate %.3f, %llu passes)  digests %s\n",
      loop_auc_pgm, loop_auc_uap,
      static_cast<unsigned long long>(loop1.flagged),
      static_cast<unsigned long long>(loop1.released),
      static_cast<unsigned long long>(loop1.confirmed), release_rate,
      static_cast<unsigned long long>(loop1.review_passes),
      loop_identical ? "match" : "MISMATCH");
  std::printf(
      "[closed-loop] adaptive dist=%.3f ens=%.3f (updates=%llu held=%llu "
      "clamped=%llu)\n",
      loop1.dist_threshold, loop1.ens_threshold,
      static_cast<unsigned long long>(loop1.adaptive_updates),
      static_cast<unsigned long long>(loop1.adaptive_held),
      static_cast<unsigned long long>(loop1.adaptive_clamped));
  std::printf(
      "[closed-loop] swap: broken %s (\"%s\"), hardened %s (\"%s\") "
      "epoch=%llu  queue=%zu agreement %.3f -> %.3f\n",
      loop1.reject_report.accepted ? "ACCEPTED" : "refused",
      loop1.reject_report.reason.c_str(),
      loop1.accept_report.accepted ? "accepted" : "REFUSED",
      loop1.accept_report.reason.c_str(),
      static_cast<unsigned long long>(loop1.swap_epoch),
      loop1.finetune_at_swap, loop1.agree_before, loop1.agree_after);

  // ---- crash scenario: kill the accepted swap post-commit, resume ------
  const ClosedLoopRun crash = run_closed_loop(
      victim, sibling, traffic, 1, "defcrash", f.ckpt_dir + "/crash", true);
  const bool crash_identical = crash.digest == loop1.digest;
  std::printf("[crash] kill-point %s, resumed epoch=%llu, digest %s the "
              "never-crashed run\n",
              crash.crashed ? "fired" : "DID NOT FIRE",
              static_cast<unsigned long long>(crash.swap_epoch),
              crash_identical ? "matches" : "DIVERGES FROM");

  // ---- defense overhead: closed loop vs defenseless engine, p99 --------
  const std::uint64_t p99_plain = run_plain_p99(victim, traffic);
  const std::uint64_t p99_loop = loop1.slo.p99_latency_us;
  const double p99_overhead =
      p99_plain > 0 ? (static_cast<double>(p99_loop) -
                       static_cast<double>(p99_plain)) /
                          static_cast<double>(p99_plain)
                    : 0.0;
  std::printf("[overhead] p99 %llu us with the full loop vs %llu us plain "
              "(%+.2f%%)\n",
              static_cast<unsigned long long>(p99_loop),
              static_cast<unsigned long long>(p99_plain),
              p99_overhead * 100.0);

  // ---- gates ------------------------------------------------------------
  const bool auc_ok =
      f.min_auc <= 0.0 ||
      (cont_auc_pgm >= f.min_auc && cont_auc_uap >= f.min_auc &&
       chaos_auc_pgm >= f.min_auc && chaos_auc_uap >= f.min_auc);
  const bool burst_ok = cont1.bursts >= 1;
  const bool harden_ok = cont1.finetune_size == 0 ||
                         (hrep.epochs_run > 0 && agree_after >= agree_before);
  const bool loop_auc_ok =
      f.min_auc_loop <= 0.0 ||
      (loop_auc_pgm >= f.min_auc_loop && loop_auc_uap >= f.min_auc_loop);
  const bool release_ok = loop1.released > 0;
  const bool swap_ok =
      loop1.accept_report.accepted && loop1.swap_epoch == 1 &&
      loop1.agree_after >= loop1.agree_before &&
      loop1.reject_report.attempted && !loop1.reject_report.accepted &&
      loop1.swaps_rejected >= 1;
  const bool crash_ok = crash.crashed && crash_identical;
  const bool overhead_ok =
      f.max_p99_overhead <= 0.0 || p99_overhead <= f.max_p99_overhead;
  const bool pass = cont_identical && chaos_identical && auc_ok && burst_ok &&
                    harden_ok && loop_identical && loop_auc_ok && release_ok &&
                    swap_ok && crash_ok && overhead_ok;

  // ---- deterministic JSON report (no wall-clock fields) ----------------
  {
    std::error_code ec;
    const std::filesystem::path out(f.report_out);
    if (out.has_parent_path())
      std::filesystem::create_directories(out.parent_path(), ec);
    std::FILE* fp = std::fopen(f.report_out.c_str(), "w");
    if (fp == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", f.report_out.c_str());
      return 2;
    }
    std::fprintf(fp, "{\n  \"schema\": \"orev-defense-bench-v2\",\n");
    std::fprintf(
        fp,
        "  \"config\": {\"flows\": %d, \"warmup_rounds\": %d, \"rounds\": "
        "%d, \"attack_fraction\": %.4f, \"eps\": %.4f, \"requests\": %zu, "
        "\"adversarial\": %d, \"pgm_slots\": %d, \"uap_slots\": %d, "
        "\"uap_fooling\": %.4f, \"min_auc\": %.4f},\n",
        f.flows, f.warmup, f.rounds, f.attack_fraction,
        static_cast<double>(f.eps), traffic.requests.size(),
        traffic.adversarial, n_pgm, n_uap, traffic.uap_fooling, f.min_auc);
    auto phase_json = [&fp](const char* name, const DefenseRun& t1,
                            const DefenseRun& t4, double auc_pgm,
                            double auc_uap, bool identical) {
      std::fprintf(
          fp,
          "  \"%s\": {\"auc_pgm\": %.6f, \"auc_uap\": %.6f, "
          "\"screened\": %llu, \"flagged\": %llu, \"quarantined\": %llu, "
          "\"bursts\": %llu, \"degraded_syncs\": %llu, \"rejected\": %llu, "
          "\"digest_t1\": \"%s\", \"digest_t4\": \"%s\", "
          "\"byte_identical\": %s},\n",
          name, auc_pgm, auc_uap,
          static_cast<unsigned long long>(t1.screened),
          static_cast<unsigned long long>(t1.flagged),
          static_cast<unsigned long long>(t1.quarantined_status),
          static_cast<unsigned long long>(t1.bursts),
          static_cast<unsigned long long>(t1.slo.degraded_syncs),
          static_cast<unsigned long long>(t1.slo.rejected),
          t1.digest.c_str(), t4.digest.c_str(),
          identical ? "true" : "false");
    };
    phase_json("contention", cont1, cont4, cont_auc_pgm, cont_auc_uap,
               cont_identical);
    phase_json("chaos", chaos1, chaos4, chaos_auc_pgm, chaos_auc_uap,
               chaos_identical);
    std::fprintf(
        fp,
        "  \"hardening\": {\"queue\": %zu, \"dropped\": %llu, \"epochs\": "
        "%d, \"agreement_before\": %.6f, \"agreement_after\": %.6f},\n",
        cont1.finetune_size,
        static_cast<unsigned long long>(cont1.finetune_dropped),
        hrep.epochs_run, agree_before, agree_after);
    std::fprintf(
        fp,
        "  \"closed_loop\": {\"auc_pgm\": %.6f, \"auc_uap\": %.6f, "
        "\"screened\": %llu, \"flagged\": %llu, \"released\": %llu, "
        "\"confirmed\": %llu, \"evicted\": %llu, \"review_passes\": %llu, "
        "\"release_rate\": %.6f, \"dist_threshold\": %.6f, "
        "\"ens_threshold\": %.6f, \"adaptive_updates\": %llu, "
        "\"adaptive_held\": %llu, \"adaptive_clamped\": %llu, "
        "\"digest_t1\": \"%s\", \"digest_t4\": \"%s\", "
        "\"byte_identical\": %s},\n",
        loop_auc_pgm, loop_auc_uap,
        static_cast<unsigned long long>(loop1.screened),
        static_cast<unsigned long long>(loop1.flagged),
        static_cast<unsigned long long>(loop1.released),
        static_cast<unsigned long long>(loop1.confirmed),
        static_cast<unsigned long long>(loop1.evicted),
        static_cast<unsigned long long>(loop1.review_passes), release_rate,
        loop1.dist_threshold, loop1.ens_threshold,
        static_cast<unsigned long long>(loop1.adaptive_updates),
        static_cast<unsigned long long>(loop1.adaptive_held),
        static_cast<unsigned long long>(loop1.adaptive_clamped),
        loop1.digest.c_str(), loop4.digest.c_str(),
        loop_identical ? "true" : "false");
    std::fprintf(
        fp,
        "  \"hot_swap\": {\"epoch\": %llu, \"accepted\": %llu, "
        "\"rejected\": %llu, \"broken_refused\": %s, "
        "\"broken_reason\": \"%s\", \"acc_current\": %.6f, "
        "\"acc_candidate\": %.6f, \"clean_delta\": %.6f, "
        "\"finetune_at_swap\": %zu, \"agree_before\": %.6f, "
        "\"agree_after\": %.6f},\n",
        static_cast<unsigned long long>(loop1.swap_epoch),
        static_cast<unsigned long long>(loop1.swaps_accepted),
        static_cast<unsigned long long>(loop1.swaps_rejected),
        !loop1.reject_report.accepted ? "true" : "false",
        loop1.reject_report.reason.c_str(), loop1.accept_report.acc_current,
        loop1.accept_report.acc_candidate, loop1.accept_report.clean_delta,
        loop1.finetune_at_swap, loop1.agree_before, loop1.agree_after);
    std::fprintf(
        fp,
        "  \"crash_resume\": {\"kill_point_fired\": %s, \"epoch\": %llu, "
        "\"digest\": \"%s\", \"byte_identical\": %s},\n",
        crash.crashed ? "true" : "false",
        static_cast<unsigned long long>(crash.swap_epoch),
        crash.digest.c_str(), crash_identical ? "true" : "false");
    std::fprintf(
        fp,
        "  \"overhead\": {\"p99_plain_us\": %llu, \"p99_loop_us\": %llu, "
        "\"p99_overhead\": %.6f},\n",
        static_cast<unsigned long long>(p99_plain),
        static_cast<unsigned long long>(p99_loop), p99_overhead);
    std::fprintf(fp, "  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(fp);
    std::printf("[report] wrote %s\n", f.report_out.c_str());
  }

  CsvWriter csv;
  csv.header({"phase", "auc_pgm", "auc_uap", "quarantined", "bursts",
              "byte_identical"});
  csv.row("contention", cont_auc_pgm, cont_auc_uap,
          cont1.quarantined_status, cont1.bursts, cont_identical ? 1 : 0);
  csv.row("chaos", chaos_auc_pgm, chaos_auc_uap, chaos1.quarantined_status,
          chaos1.bursts, chaos_identical ? 1 : 0);
  csv.row("closed_loop", loop_auc_pgm, loop_auc_uap,
          loop1.quarantined_status, loop1.bursts, loop_identical ? 1 : 0);
  save_csv(csv, "defense");

  print_rule();
  std::printf("auc: contention pgm=%.3f uap=%.3f, chaos pgm=%.3f uap=%.3f "
              "(gate %.2f), loop pgm=%.3f uap=%.3f (gate %.2f)\n",
              cont_auc_pgm, cont_auc_uap, chaos_auc_pgm, chaos_auc_uap,
              f.min_auc, loop_auc_pgm, loop_auc_uap, f.min_auc_loop);
  std::printf("closed loop: released=%llu/%llu  swap %s epoch=%llu  "
              "rollback %s  crash-resume %s  p99 %+.2f%% (gate %.0f%%)\n",
              static_cast<unsigned long long>(loop1.released),
              static_cast<unsigned long long>(loop1.flagged),
              loop1.accept_report.accepted ? "accepted" : "REFUSED",
              static_cast<unsigned long long>(loop1.swap_epoch),
              swap_ok ? "ok" : "BROKEN", crash_ok ? "ok" : "BROKEN",
              p99_overhead * 100.0, f.max_p99_overhead * 100.0);
  std::printf("digests: contention %s, chaos %s, loop %s  bursts=%llu  "
              "harden %s  ->  %s\n",
              cont_identical ? "identical" : "DIVERGED",
              chaos_identical ? "identical" : "DIVERGED",
              loop_identical ? "identical" : "DIVERGED",
              static_cast<unsigned long long>(cont1.bursts),
              harden_ok ? "ok" : "REGRESSED", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
