// Table 1 reproduction: accuracy and APD of the victim Spectrogram IC xApp
// under "<surrogate> + FGSM" (input-specific) and "<surrogate> + UAP(FGSM)"
// black-box attacks at ε ∈ {0.05, 0.1, 0.2, 0.3, 0.5}, plus the cloning
// accuracies at ε = 0 reported in §5.3.1.
//
// Paper shape to reproduce: input-specific attacks are more potent at a
// given ε but at substantially higher APD; at comparable APD the UAP wins;
// DenseNet is the strongest non-Base surrogate; even 1L degrades the
// victim; accuracy falls monotonically in ε.
#include "bench_common.hpp"

using namespace orev;
using namespace orev::bench;

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  const int threads = parse_threads_flag(argc, argv);
  std::printf("=== Table 1: surrogate architectures × ε, FGSM vs UAP(FGSM) "
              "===\n");

  // Victim + corpus (§A.5).
  data::Dataset corpus = bench_spectrogram_corpus();
  Rng rng(1);
  data::Split split = data::stratified_split(corpus, 0.7, rng);
  nn::Model victim = train_victim_cnn(split.train, split.test);
  const nn::EvalResult clean = nn::evaluate(victim, split.test.x,
                                            split.test.y);
  std::printf("victim (BaseCNN) clean accuracy: %.3f on %d test samples\n",
              clean.accuracy, split.test.size());

  // D_clone: the attacker's observed (input, victim prediction) pairs.
  const data::Dataset d_clone =
      attack::collect_clone_dataset(victim, split.train.x);

  // Attack set: held-out samples (bounded for runtime).
  const data::Dataset attack_set = split.test.take(80);

  CsvWriter csv;
  csv.header({"surrogate", "eps", "is_accuracy", "is_apd", "uap_accuracy",
              "uap_apd", "cloning_accuracy", "threads", "wall_s"});

  print_rule();
  std::printf("%-22s", "Victim: BaseCNN");
  for (const float eps : kEpsGrid) std::printf("| eps=%-4.2f Acc/APD ", eps);
  std::printf("\n");
  print_rule();

  const attack::CloneConfig ccfg = bench_clone_config();
  for (const attack::Candidate& cand :
       surrogate_candidates(corpus.sample_shape(), corpus.num_classes)) {
    TrainedSurrogate sur = train_surrogate(d_clone, cand, ccfg);
    std::printf("cloning accuracy (%s): %.3f\n", cand.name.c_str(),
                sur.cloning_accuracy);

    attack::UapConfig ubase;
    ubase.target_fooling = 0.95;
    ubase.max_passes = 5;
    ubase.min_confidence = 0.9f;
    ubase.robust_draws = 3;
    ubase.robust_noise = 0.15f;
    // Algorithm 2 iterates over the attacker's observation log (the paper
    // uses 350 observed predictions), never the evaluation set. The seed
    // is the interference-labelled subset: hiding the jammer is the
    // operationally damaging direction, and on a binary victim the two
    // flip directions are antagonistic at the same pixels (see
    // EXPERIMENTS.md for the resulting ~0.5 accuracy floor).
    std::vector<int> jammed_rows;
    for (int i = 0; i < d_clone.size(); ++i)
      if (d_clone.y[static_cast<std::size_t>(i)] == ran::kLabelInterference)
        jammed_rows.push_back(i);
    const data::Dataset uap_seed = d_clone.subset(jammed_rows).take(150);
    const WallTimer sweep_timer;
    const auto sweep =
        attack::epsilon_sweep(victim, sur.model, attack_set.x, attack_set.y,
                              kEpsGrid, ubase, /*target_class=*/-1,
                              uap_seed.x);
    const double sweep_s = sweep_timer.seconds();

    std::printf("%-22s", (cand.name + " + FGSM").c_str());
    for (const auto& p : sweep)
      std::printf("| %.3f / %-8.3f", p.input_specific.accuracy,
                  p.input_specific.apd);
    std::printf("\n%-22s", (cand.name + " + UAP (FGSM)").c_str());
    for (const auto& p : sweep)
      std::printf("| %.3f / %-8.3f", p.uap.accuracy, p.uap.apd);
    std::printf("\n");
    print_rule();

    for (const auto& p : sweep) {
      csv.row(cand.name, p.eps, p.input_specific.accuracy,
              p.input_specific.apd, p.uap.accuracy, p.uap.apd,
              sur.cloning_accuracy, threads, sweep_s);
    }
  }

  save_csv(csv, "table1");
  return 0;
}
