// Perf report: times three representative workloads into registry
// histograms and prints their p50/p95/p99, so a single run with
// `--metrics-out BENCH_<date>.json` captures the repo's latency
// trajectory in one comparable file:
//
//   perf.matmul64_ms      — 64×64 matmul, the NN substrate primitive;
//   perf.e2_roundtrip_ms  — E2 indication → SDL write → xApp dispatch →
//                           E2 control back to the RAN node, the Near-RT
//                           control loop the paper's timing budget
//                           (§5.3.3) is measured against;
//   perf.attack_sample_ms — one FGSM perturbation of one spectrogram via
//                           the surrogate, the per-sample cost of the
//                           input-specific attack (Fig. 3);
//   perf.serve_batch_ms   — one full micro-batch (32 KPM requests) through
//                           the serving engine: admission, batching, the
//                           compiled batched forward, and completions
//                           (DESIGN.md §11).
//
// The report also sweeps attack_batch() once, so the instrumentation
// histograms populated by the pipelines themselves (attack.batch.*,
// oran.*, serve.*) appear in the same JSON.
#include <cstdio>

#include "apps/model_zoo.hpp"
#include "attack/pgm.hpp"
#include "bench_common.hpp"
#include "nn/layers.hpp"
#include "oran/near_rt_ric.hpp"
#include "oran/onboarding.hpp"
#include "serve/serve.hpp"

namespace {

using namespace orev;
using namespace orev::bench;

// ------------------------------------------------------------ E2 fixture

class ControlEchoXApp : public oran::XApp {
 public:
  void on_indication(const oran::E2Indication& /*ind*/,
                     oran::NearRtRic& ric) override {
    ric.send_control(app_id(), oran::E2Control{});
  }
};

class SinkE2Node : public oran::E2Node {
 public:
  void handle_control(const oran::E2Control& /*c*/) override { ++controls; }
  std::string node_id() const override { return "ran-1"; }
  std::uint64_t controls = 0;
};

void run_matmul(int reps) {
  obs::Histogram& h = obs::histogram(
      "perf.matmul64_ms", {}, "64x64 single-threaded matmul latency");
  Rng rng(7);
  const nn::Tensor a = nn::Tensor::randn({64, 64}, rng);
  const nn::Tensor b = nn::Tensor::randn({64, 64}, rng);
  volatile float sink = 0.0f;  // keep the kernel honest
  for (int i = 0; i < reps; ++i) {
    const obs::ScopedTimerMs t(h);
    sink = nn::matmul(a, b)[0];
  }
  (void)sink;
}

void run_e2_roundtrip(int reps) {
  obs::Histogram& h = obs::histogram(
      "perf.e2_roundtrip_ms", {},
      "E2 indication -> SDL -> xApp dispatch -> E2 control round trip");

  oran::Rbac rbac;
  rbac.define_role("xapp-full",
                   {oran::Permission{"telemetry/*", true, true},
                    oran::Permission{"decisions/*", true, true},
                    oran::Permission{"decisions", true, true},
                    oran::Permission{"e2/control", false, true}});
  oran::Operator op("op", "sec");
  oran::OnboardingService svc(&op, &rbac);
  oran::AppDescriptor d;
  d.name = "echo";
  d.version = "1";
  d.vendor = "bench";
  d.payload = "p";
  d.requested_role = "xapp-full";
  const std::string app_id = svc.onboard(op.package(d)).app_id;

  oran::NearRtRic ric(&rbac, &svc);
  SinkE2Node node;
  ric.connect_e2(&node);
  ric.register_xapp(std::make_shared<ControlEchoXApp>(), app_id, 0);

  oran::E2Indication ind;
  ind.ran_node_id = "ran-1";
  ind.kind = oran::IndicationKind::kKpm;
  ind.payload = nn::Tensor({16}, 0.5f);
  for (int i = 0; i < reps; ++i) {
    ind.tti = static_cast<std::uint64_t>(i);
    const obs::ScopedTimerMs t(h);
    ric.deliver_indication(ind);
  }
  std::printf("[e2] %llu controls received over %d indications\n",
              static_cast<unsigned long long>(node.controls), reps);
}

void run_attack(int samples) {
  obs::Histogram& h = obs::histogram(
      "perf.attack_sample_ms", {},
      "one FGSM perturbation of one spectrogram on the surrogate");

  const data::Dataset corpus = bench_spectrogram_corpus(/*per_class=*/12);
  nn::Model surrogate =
      apps::make_base_cnn(corpus.sample_shape(), corpus.num_classes, 5);
  attack::Fgsm fgsm(0.1f);

  // Per-sample serial loop: what perf.attack_sample_ms reports.
  for (int i = 0; i < samples; ++i) {
    const nn::Tensor x = corpus.x.slice_batch(i % corpus.x.dim(0));
    const obs::ScopedTimerMs t(h);
    const int label = surrogate.predict_one(x);
    volatile float sink = fgsm.perturb(surrogate, x, label)[0];
    (void)sink;
  }

  // One batched sweep so the pipeline's own attack.batch.* histograms are
  // populated in the same report.
  attack::attack_batch(fgsm, surrogate, corpus.x, /*target_class=*/-1);
}

void run_serve(int batches) {
  obs::Histogram& h = obs::histogram(
      "perf.serve_batch_ms", {},
      "one full 32-request micro-batch through the serving engine");

  serve::ServeConfig cfg;
  cfg.name = "perf";
  cfg.batch_max = 32;
  serve::ServeEngine eng(apps::make_kpm_dnn(4, 4, 17), cfg);
  Rng rng(0xf1ee7);
  for (int b = 0; b < batches; ++b) {
    std::vector<nn::Tensor> reqs;
    reqs.reserve(32);
    for (int i = 0; i < 32; ++i) {
      nn::Tensor t({4});
      for (std::size_t j = 0; j < 4; ++j) t[j] = rng.uniform(-1.0f, 1.0f);
      reqs.push_back(std::move(t));
    }
    // The 32nd submit fills the batch and flushes it, so one timer scope
    // covers admission + batching + the batched forward + completions.
    const obs::ScopedTimerMs t(h);
    for (nn::Tensor& r : reqs) eng.submit(std::move(r), nullptr);
  }
  eng.drain();
}

void print_hist(const char* name, const char* unit = "ms") {
  const obs::Histogram::Snapshot s = obs::histogram(name).snapshot();
  std::printf("%-24s n=%6llu  p50=%9.4f %s  p95=%9.4f %s  p99=%9.4f %s\n",
              name, static_cast<unsigned long long>(s.count), s.p50, unit,
              s.p95, unit, s.p99, unit);
}

}  // namespace

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  parse_threads_flag(argc, argv);
  std::printf("=== Perf report: matmul / E2 round-trip / attack sample / "
              "serve batch ===\n");

  run_matmul(/*reps=*/300);
  run_e2_roundtrip(/*reps=*/500);
  run_attack(/*samples=*/64);
  run_serve(/*batches=*/300);

  print_rule();
  print_hist("perf.matmul64_ms");
  print_hist("perf.e2_roundtrip_ms");
  print_hist("perf.attack_sample_ms");
  print_hist("attack.batch.sample_ms");
  print_hist("perf.serve_batch_ms");
  print_hist("serve.perf.latency_us", "us");  // virtual submit-to-completion
  print_rule();
  std::printf("run with --metrics-out BENCH_<date>.json to save the report\n");
  return 0;
}
