// Perf report: times three representative workloads into registry
// histograms and prints their p50/p95/p99, so a single run with
// `--metrics-out BENCH_<date>.json` captures the repo's latency
// trajectory in one comparable file:
//
//   perf.matmul64_ms      — 64×64 matmul, the NN substrate primitive;
//   perf.e2_roundtrip_ms  — E2 indication → SDL write → xApp dispatch →
//                           E2 control back to the RAN node, the Near-RT
//                           control loop the paper's timing budget
//                           (§5.3.3) is measured against;
//   perf.attack_sample_ms — one FGSM perturbation of one spectrogram via
//                           the surrogate, the per-sample cost of the
//                           input-specific attack (Fig. 3).
//
// The report also sweeps attack_batch() once, so the instrumentation
// histograms populated by the pipelines themselves (attack.batch.*,
// oran.*) appear in the same JSON.
#include <cstdio>

#include "apps/model_zoo.hpp"
#include "attack/pgm.hpp"
#include "bench_common.hpp"
#include "nn/layers.hpp"
#include "oran/near_rt_ric.hpp"
#include "oran/onboarding.hpp"

namespace {

using namespace orev;
using namespace orev::bench;

// ------------------------------------------------------------ E2 fixture

class ControlEchoXApp : public oran::XApp {
 public:
  void on_indication(const oran::E2Indication& /*ind*/,
                     oran::NearRtRic& ric) override {
    ric.send_control(app_id(), oran::E2Control{});
  }
};

class SinkE2Node : public oran::E2Node {
 public:
  void handle_control(const oran::E2Control& /*c*/) override { ++controls; }
  std::string node_id() const override { return "ran-1"; }
  std::uint64_t controls = 0;
};

void run_matmul(int reps) {
  obs::Histogram& h = obs::histogram(
      "perf.matmul64_ms", {}, "64x64 single-threaded matmul latency");
  Rng rng(7);
  const nn::Tensor a = nn::Tensor::randn({64, 64}, rng);
  const nn::Tensor b = nn::Tensor::randn({64, 64}, rng);
  volatile float sink = 0.0f;  // keep the kernel honest
  for (int i = 0; i < reps; ++i) {
    const obs::ScopedTimerMs t(h);
    sink = nn::matmul(a, b)[0];
  }
  (void)sink;
}

void run_e2_roundtrip(int reps) {
  obs::Histogram& h = obs::histogram(
      "perf.e2_roundtrip_ms", {},
      "E2 indication -> SDL -> xApp dispatch -> E2 control round trip");

  oran::Rbac rbac;
  rbac.define_role("xapp-full",
                   {oran::Permission{"telemetry/*", true, true},
                    oran::Permission{"decisions/*", true, true},
                    oran::Permission{"decisions", true, true},
                    oran::Permission{"e2/control", false, true}});
  oran::Operator op("op", "sec");
  oran::OnboardingService svc(&op, &rbac);
  oran::AppDescriptor d;
  d.name = "echo";
  d.version = "1";
  d.vendor = "bench";
  d.payload = "p";
  d.requested_role = "xapp-full";
  const std::string app_id = svc.onboard(op.package(d)).app_id;

  oran::NearRtRic ric(&rbac, &svc);
  SinkE2Node node;
  ric.connect_e2(&node);
  ric.register_xapp(std::make_shared<ControlEchoXApp>(), app_id, 0);

  oran::E2Indication ind;
  ind.ran_node_id = "ran-1";
  ind.kind = oran::IndicationKind::kKpm;
  ind.payload = nn::Tensor({16}, 0.5f);
  for (int i = 0; i < reps; ++i) {
    ind.tti = static_cast<std::uint64_t>(i);
    const obs::ScopedTimerMs t(h);
    ric.deliver_indication(ind);
  }
  std::printf("[e2] %llu controls received over %d indications\n",
              static_cast<unsigned long long>(node.controls), reps);
}

void run_attack(int samples) {
  obs::Histogram& h = obs::histogram(
      "perf.attack_sample_ms", {},
      "one FGSM perturbation of one spectrogram on the surrogate");

  const data::Dataset corpus = bench_spectrogram_corpus(/*per_class=*/12);
  nn::Model surrogate =
      apps::make_base_cnn(corpus.sample_shape(), corpus.num_classes, 5);
  attack::Fgsm fgsm(0.1f);

  // Per-sample serial loop: what perf.attack_sample_ms reports.
  for (int i = 0; i < samples; ++i) {
    const nn::Tensor x = corpus.x.slice_batch(i % corpus.x.dim(0));
    const obs::ScopedTimerMs t(h);
    const int label = surrogate.predict_one(x);
    volatile float sink = fgsm.perturb(surrogate, x, label)[0];
    (void)sink;
  }

  // One batched sweep so the pipeline's own attack.batch.* histograms are
  // populated in the same report.
  attack::attack_batch(fgsm, surrogate, corpus.x, /*target_class=*/-1);
}

void print_hist(const char* name) {
  const obs::Histogram::Snapshot s = obs::histogram(name).snapshot();
  std::printf("%-24s n=%6llu  p50=%9.4f ms  p95=%9.4f ms  p99=%9.4f ms\n",
              name, static_cast<unsigned long long>(s.count), s.p50, s.p95,
              s.p99);
}

}  // namespace

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  parse_threads_flag(argc, argv);
  std::printf("=== Perf report: matmul / E2 round-trip / attack sample ===\n");

  run_matmul(/*reps=*/300);
  run_e2_roundtrip(/*reps=*/500);
  run_attack(/*samples=*/64);

  print_rule();
  print_hist("perf.matmul64_ms");
  print_hist("perf.e2_roundtrip_ms");
  print_hist("perf.attack_sample_ms");
  print_hist("attack.batch.sample_ms");
  print_rule();
  std::printf("run with --metrics-out BENCH_<date>.json to save the report\n");
  return 0;
}
