// Perf report: times three representative workloads into registry
// histograms and prints their p50/p95/p99, so a single run with
// `--metrics-out BENCH_<date>.json` captures the repo's latency
// trajectory in one comparable file:
//
//   perf.matmul64_ms      — 64×64 matmul, the NN substrate primitive;
//   perf.e2_roundtrip_ms  — E2 indication → SDL write → xApp dispatch →
//                           E2 control back to the RAN node, the Near-RT
//                           control loop the paper's timing budget
//                           (§5.3.3) is measured against;
//   perf.attack_sample_ms — one FGSM perturbation of one spectrogram via
//                           the surrogate, the per-sample cost of the
//                           input-specific attack (Fig. 3);
//   perf.serve_batch_ms   — one full micro-batch (32 KPM requests) through
//                           the serving engine: admission, batching, the
//                           compiled batched forward, and completions
//                           (DESIGN.md §11);
//   perf.defense_screen_ms — the same micro-batch through a *defended*
//                           engine (inline screen + review cadence +
//                           hot-swap gate live, DESIGN.md §14–15), with a
//                           defense-counter row (quarantined / released /
//                           swap accepted / rolled back / quant_rejected)
//                           so the perf trajectory tracks defense health.
//
// The report also sweeps attack_batch() once, so the instrumentation
// histograms populated by the pipelines themselves (attack.batch.*,
// oran.*, serve.*) appear in the same JSON.
//
// Every perf.* histogram has a twin quantile sketch (`<name>_q`,
// DESIGN.md §13) fed the same samples: the fixed-bucket histogram keeps
// the report comparable with committed baselines, the sketch adds
// relative-error p50/p95/p99/p999 without bucket-edge bias.
//
// Regression diffing: `--baseline BENCH_<date>.json` (a committed
// --metrics-out file) prints a per-histogram delta table against this
// run; `--serve-baseline BENCH_SERVE_<date>.json` diffs the serving
// bench's unbatched/served throughput; `--defense-baseline
// BENCH_DEFENSE_<date>.json` echoes the committed defense bench's
// closed-loop AUC / release-rate / swap and overhead numbers;
// `--cityscale-baseline BENCH_CITYSCALE_<date>.json` echoes the committed
// city-scale emulation numbers (UEs/sec, codec paths, SDL striping).
// Deltas are informational — the gates live in each bench's own pass
// criteria.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <string>

#include "apps/model_zoo.hpp"
#include "attack/pgm.hpp"
#include "bench_common.hpp"
#include "nn/layers.hpp"
#include "oran/near_rt_ric.hpp"
#include "oran/onboarding.hpp"
#include "oran/sdl.hpp"
#include "serve/serve.hpp"
#include "util/check.hpp"

namespace {

using namespace orev;
using namespace orev::bench;

// ------------------------------------------------------------ E2 fixture

class ControlEchoXApp : public oran::XApp {
 public:
  void on_indication(const oran::E2Indication& /*ind*/,
                     oran::NearRtRic& ric) override {
    ric.send_control(app_id(), oran::E2Control{});
  }
};

class SinkE2Node : public oran::E2Node {
 public:
  void handle_control(const oran::E2Control& /*c*/) override { ++controls; }
  std::string node_id() const override { return "ran-1"; }
  std::uint64_t controls = 0;
};

/// One timed sample lands in both the fixed-bucket histogram (baseline
/// comparability) and its twin quantile sketch (`<name>_q`).
void observe_ms(obs::Histogram& h, obs::SketchMetric& q, double ms) {
  h.observe(ms);
  q.observe(ms);
}

void run_matmul(int reps) {
  obs::Histogram& h = obs::histogram(
      "perf.matmul64_ms", {}, "64x64 single-threaded matmul latency");
  obs::SketchMetric& q = obs::sketch(
      "perf.matmul64_ms_q", 0.01, "64x64 matmul latency (quantile sketch)");
  Rng rng(7);
  const nn::Tensor a = nn::Tensor::randn({64, 64}, rng);
  const nn::Tensor b = nn::Tensor::randn({64, 64}, rng);
  volatile float sink = 0.0f;  // keep the kernel honest
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    sink = nn::matmul(a, b)[0];
    observe_ms(h, q, t.seconds() * 1e3);
  }
  (void)sink;
}

void run_e2_roundtrip(int reps) {
  obs::Histogram& h = obs::histogram(
      "perf.e2_roundtrip_ms", {},
      "E2 indication -> SDL -> xApp dispatch -> E2 control round trip");
  obs::SketchMetric& q = obs::sketch(
      "perf.e2_roundtrip_ms_q", 0.01,
      "E2 round trip latency (quantile sketch)");

  oran::Rbac rbac;
  rbac.define_role("xapp-full",
                   {oran::Permission{"telemetry/*", true, true},
                    oran::Permission{"decisions/*", true, true},
                    oran::Permission{"decisions", true, true},
                    oran::Permission{"e2/control", false, true}});
  oran::Operator op("op", "sec");
  oran::OnboardingService svc(&op, &rbac);
  oran::AppDescriptor d;
  d.name = "echo";
  d.version = "1";
  d.vendor = "bench";
  d.payload = "p";
  d.requested_role = "xapp-full";
  const std::string app_id = svc.onboard(op.package(d)).app_id;

  oran::NearRtRic ric(&rbac, &svc);
  SinkE2Node node;
  ric.connect_e2(&node);
  ric.register_xapp(std::make_shared<ControlEchoXApp>(), app_id, 0);

  oran::E2Indication ind;
  ind.ran_node_id = "ran-1";
  ind.kind = oran::IndicationKind::kKpm;
  ind.payload = nn::Tensor({16}, 0.5f);
  for (int i = 0; i < reps; ++i) {
    ind.tti = static_cast<std::uint64_t>(i);
    WallTimer t;
    ric.deliver_indication(ind);
    observe_ms(h, q, t.seconds() * 1e3);
  }
  std::printf("[e2] %llu controls received over %d indications\n",
              static_cast<unsigned long long>(node.controls), reps);
}

void run_attack(int samples) {
  obs::Histogram& h = obs::histogram(
      "perf.attack_sample_ms", {},
      "one FGSM perturbation of one spectrogram on the surrogate");
  obs::SketchMetric& q = obs::sketch(
      "perf.attack_sample_ms_q", 0.01,
      "per-sample FGSM latency (quantile sketch)");

  const data::Dataset corpus = bench_spectrogram_corpus(/*per_class=*/12);
  nn::Model surrogate =
      apps::make_base_cnn(corpus.sample_shape(), corpus.num_classes, 5);
  attack::Fgsm fgsm(0.1f);

  // Per-sample serial loop: what perf.attack_sample_ms reports.
  for (int i = 0; i < samples; ++i) {
    const nn::Tensor x = corpus.x.slice_batch(i % corpus.x.dim(0));
    WallTimer t;
    const int label = surrogate.predict_one(x);
    volatile float sink = fgsm.perturb(surrogate, x, label)[0];
    (void)sink;
    observe_ms(h, q, t.seconds() * 1e3);
  }

  // One batched sweep so the pipeline's own attack.batch.* histograms are
  // populated in the same report.
  attack::attack_batch(fgsm, surrogate, corpus.x, /*target_class=*/-1);
}

void run_serve(int batches) {
  obs::Histogram& h = obs::histogram(
      "perf.serve_batch_ms", {},
      "one full 32-request micro-batch through the serving engine");
  obs::SketchMetric& q = obs::sketch(
      "perf.serve_batch_ms_q", 0.01,
      "full micro-batch latency (quantile sketch)");

  serve::ServeConfig cfg;
  cfg.name = "perf";
  cfg.batch_max = 32;
  serve::ServeEngine eng(apps::make_kpm_dnn(4, 4, 17), cfg);
  Rng rng(0xf1ee7);
  for (int b = 0; b < batches; ++b) {
    std::vector<nn::Tensor> reqs;
    reqs.reserve(32);
    for (int i = 0; i < 32; ++i) {
      nn::Tensor t({4});
      for (std::size_t j = 0; j < 4; ++j) t[j] = rng.uniform(-1.0f, 1.0f);
      reqs.push_back(std::move(t));
    }
    // The 32nd submit fills the batch and flushes it, so one timer scope
    // covers admission + batching + the batched forward + completions.
    WallTimer t;
    for (nn::Tensor& r : reqs) eng.submit(std::move(r), nullptr);
    observe_ms(h, q, t.seconds() * 1e3);
  }
  eng.drain();
}

void run_defense(int batches) {
  obs::Histogram& h = obs::histogram(
      "perf.defense_screen_ms", {},
      "one screened 32-request micro-batch through the defended engine");
  obs::SketchMetric& q = obs::sketch(
      "perf.defense_screen_ms_q", 0.01,
      "screened micro-batch latency (quantile sketch)");

  serve::ServeConfig cfg;
  cfg.name = "perfdef";
  cfg.batch_max = 32;
  cfg.defense.enable = true;
  cfg.defense.review_every = 64;
  cfg.swap.enable = true;
  serve::ServeEngine eng(apps::make_kpm_dnn(4, 4, 17), cfg);

  // Calibrate on the distribution the batches draw from, so only the
  // injected anomalies quarantine and the screen itself stays on the
  // clean fast path — the cost this phase is measuring.
  Rng rng(0xdef5e);
  nn::Tensor warm({256, 4});
  for (std::size_t i = 0; i < warm.numel(); ++i)
    warm[i] = rng.uniform(-1.0f, 1.0f);
  eng.defense()->calibrate(warm);

  int row = 0;
  for (int b = 0; b < batches; ++b) {
    std::vector<nn::Tensor> reqs;
    reqs.reserve(32);
    for (int i = 0; i < 32; ++i, ++row) {
      nn::Tensor t({4});
      for (std::size_t j = 0; j < 4; ++j) t[j] = rng.uniform(-1.0f, 1.0f);
      // A rare anomalous row (far outside the calibrated profile) keeps
      // the quarantine ring non-empty so the review cadence runs passes.
      if (row % 191 == 0)
        for (std::size_t j = 0; j < 4; ++j) t[j] = 40.0f;
      reqs.push_back(std::move(t));
    }
    WallTimer t;
    for (nn::Tensor& r : reqs) eng.submit(std::move(r), nullptr);
    observe_ms(h, q, t.seconds() * 1e3);
  }
  eng.drain();

  // One refused and one accepted hot-swap, so the swap counters the report
  // tracks are live. The gate evaluates against labels from the served
  // model itself: a differently-initialised candidate regresses clean
  // accuracy (refused, implicit rollback), a same-weights clone is a zero
  // delta (accepted, epoch advances).
  nn::Tensor probe({32, 4});
  for (std::size_t i = 0; i < probe.numel(); ++i)
    probe[i] = rng.uniform(-1.0f, 1.0f);
  const std::vector<int> labels =
      apps::make_kpm_dnn(4, 4, 17).predict(probe);
  eng.request_hot_swap(apps::make_kpm_dnn(4, 4, 99), probe, labels);
  eng.request_hot_swap(apps::make_kpm_dnn(4, 4, 17), probe, labels);

  const serve::DefensePlane& dp = *eng.defense();
  std::printf(
      "[defense] screened=%llu quarantined=%llu released=%llu "
      "confirmed=%llu review_passes=%llu swap_accepted=%llu "
      "swap_rejected=%llu quant_rejected=%llu\n",
      static_cast<unsigned long long>(dp.screened()),
      static_cast<unsigned long long>(dp.flagged()),
      static_cast<unsigned long long>(dp.released()),
      static_cast<unsigned long long>(dp.confirmed()),
      static_cast<unsigned long long>(dp.review_passes()),
      static_cast<unsigned long long>(eng.swaps_accepted()),
      static_cast<unsigned long long>(eng.swaps_rejected()),
      static_cast<unsigned long long>(
          obs::counter("serve.perfdef.quant_rejected").value()));
}

void run_sdl_stripes(int writes_per_worker) {
  // Striped-SDL contention probe (DESIGN.md §16): 8 writers on 4 threads
  // hammering 4 KB in-place tensor writes, once against a single-stripe
  // store (forced collisions — fills oran.sdl.lock_wait_ns, which records
  // only *contended* stripe acquisitions) and once against the default
  // striping (the healthy shape), so stripe health appears in the same
  // report the latency trajectory does.
  oran::Rbac rbac;
  rbac.define_role("perf-writer",
                   {oran::Permission{"*", /*read=*/true, /*write=*/true}});
  rbac.assign_role("perf", "perf-writer");
  constexpr int kPayloadFloats = 16384;
  constexpr int kWorkers = 8;
  const nn::Shape shape{kPayloadFloats};
  util::set_num_threads(4);
  for (const std::size_t stripes : {std::size_t{1},
                                    oran::Sdl::kDefaultStripes}) {
    oran::Sdl sdl(&rbac, stripes);
    std::vector<std::string> keys;
    std::vector<std::vector<float>> bufs;
    for (int w = 0; w < kWorkers; ++w) {
      keys.push_back("cell-" + std::to_string(w));
      bufs.emplace_back(kPayloadFloats, static_cast<float>(w));
      OREV_CHECK(sdl.write_tensor_inplace(
                     "perf", "telemetry/kpm", keys.back(), shape,
                     std::span<const float>(bufs.back())) ==
                     oran::SdlStatus::kOk,
                 "seed write must succeed");
    }
    util::parallel_for(0, kWorkers, 1, [&](std::int64_t w) {
      for (int i = 0; i < writes_per_worker; ++i) {
        bufs[static_cast<std::size_t>(w)][0] = static_cast<float>(i);
        OREV_CHECK(
            sdl.write_tensor_inplace(
                "perf", "telemetry/kpm", keys[static_cast<std::size_t>(w)],
                shape,
                std::span<const float>(bufs[static_cast<std::size_t>(w)])) ==
                oran::SdlStatus::kOk,
            "stripe write must succeed");
      }
    });
    std::printf("[sdl] stripes=%zu contended=%llu over %d writes\n", stripes,
                static_cast<unsigned long long>(sdl.total_contentions()),
                kWorkers * writes_per_worker);
  }
  util::set_num_threads(1);
}

void print_hist(const char* name, const char* unit = "ms") {
  const obs::Histogram::Snapshot s = obs::histogram(name).snapshot();
  std::printf("%-24s n=%6llu  p50=%9.4f %s  p95=%9.4f %s  p99=%9.4f %s\n",
              name, static_cast<unsigned long long>(s.count), s.p50, unit,
              s.p95, unit, s.p99, unit);
}

void print_sketch(const char* name, const char* unit = "ms") {
  const obs::QuantileSketch s = obs::sketch(name).merged();
  std::printf("%-26s n=%6llu  p50=%9.4f  p95=%9.4f  p99=%9.4f  "
              "p999=%9.4f %s\n",
              name, static_cast<unsigned long long>(s.count()),
              s.quantile(0.50), s.quantile(0.95), s.quantile(0.99),
              s.quantile(0.999), unit);
}

// ------------------------------------------------- baseline regression diff
//
// The committed baselines are flat enough (one `"name": {...}` object per
// line, numeric scalar fields) that a substring scan beats pulling in a
// JSON parser: find the metric's object, then read the number after the
// field's colon.

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Value of `"field": <num>` inside the object starting at the first
/// occurrence of `"name"` (NaN when absent).
double baseline_field(const std::string& json, const std::string& name,
                      const std::string& field) {
  const std::size_t at = json.find("\"" + name + "\"");
  if (at == std::string::npos) return std::nan("");
  const std::size_t end = json.find('}', at);
  const std::size_t f = json.find("\"" + field + "\"", at);
  if (f == std::string::npos || (end != std::string::npos && f > end))
    return std::nan("");
  const std::size_t colon = json.find(':', f);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

void diff_row(const char* label, double now, double base, const char* unit) {
  if (std::isnan(base)) {
    std::printf("%-26s now=%9.4f %-3s  baseline=     (absent)\n", label, now,
                unit);
    return;
  }
  const double pct = base != 0.0 ? (now - base) / base * 100.0 : 0.0;
  std::printf("%-26s now=%9.4f %-3s  baseline=%9.4f  %+7.1f%%\n", label, now,
              unit, base, pct);
}

void diff_against_baseline(const std::string& path) {
  const std::string json = read_file(path);
  if (json.empty()) {
    std::printf("[baseline] cannot read %s — skipping diff\n", path.c_str());
    return;
  }
  std::printf("--- regression diff vs %s (positive = slower now) ---\n",
              path.c_str());
  for (const char* name :
       {"perf.matmul64_ms", "perf.e2_roundtrip_ms", "perf.attack_sample_ms",
        "attack.batch.sample_ms", "perf.serve_batch_ms",
        "perf.defense_screen_ms"}) {
    const obs::Histogram::Snapshot s = obs::histogram(name).snapshot();
    diff_row((std::string(name) + " p50").c_str(), s.p50,
             baseline_field(json, name, "p50"), "ms");
    diff_row((std::string(name) + " p99").c_str(), s.p99,
             baseline_field(json, name, "p99"), "ms");
  }
}

void diff_against_defense_baseline(const std::string& path) {
  const std::string json = read_file(path);
  if (json.empty()) {
    std::printf("[defense-baseline] cannot read %s — skipping diff\n",
                path.c_str());
    return;
  }
  // The defense report's sections ("closed_loop", "hot_swap", "overhead")
  // are flat scalar objects; the name scan lands on each section header.
  std::printf("--- defense closed loop vs %s ---\n", path.c_str());
  std::printf("%-26s auc_pgm=%.4f  auc_uap=%.4f  release_rate=%.4f\n",
              "closed_loop baseline",
              baseline_field(json, "closed_loop", "auc_pgm"),
              baseline_field(json, "closed_loop", "auc_uap"),
              baseline_field(json, "closed_loop", "release_rate"));
  std::printf("%-26s clean_delta=%.4f  agree_after=%.4f\n",
              "hot_swap baseline",
              baseline_field(json, "hot_swap", "clean_delta"),
              baseline_field(json, "hot_swap", "agree_after"));
  std::printf("%-26s p99_overhead=%.4f (gate <= 0.05)\n",
              "overhead baseline",
              baseline_field(json, "overhead", "p99_overhead"));
  std::printf("(rerun bench_defense --report-out to refresh; this run only "
              "echoes the committed numbers for context)\n");
}

void diff_against_serve_baseline(const std::string& path) {
  const std::string json = read_file(path);
  if (json.empty()) {
    std::printf("[serve-baseline] cannot read %s — skipping diff\n",
                path.c_str());
    return;
  }
  // The serve report nests `"unbatched": {...}` ahead of the served runs;
  // a name scan lands on the first (canonical) occurrence of each.
  std::printf("--- serve throughput vs %s ---\n", path.c_str());
  const double base_unbatched =
      baseline_field(json, "unbatched", "throughput_rps");
  const double base_requests = baseline_field(json, "config", "requests");
  std::printf("%-26s baseline unbatched=%.0f req/s over %.0f requests\n",
              "serve baseline", base_unbatched, base_requests);
  std::printf("(rerun bench_serve --report-out to refresh; this run only "
              "echoes the committed numbers for context)\n");
}

void diff_against_cityscale_baseline(const std::string& path) {
  const std::string json = read_file(path);
  if (json.empty()) {
    std::printf("[cityscale-baseline] cannot read %s — skipping diff\n",
                path.c_str());
    return;
  }
  // The cityscale report's "scale" array opens with the single-thread run;
  // the name scan lands on that first object. "copy"/"move"/"binary" only
  // occur inside the codec section, "striped" inside the sdl section.
  std::printf("--- cityscale emulation vs %s ---\n", path.c_str());
  std::printf("%-26s ue_epochs/s=%.3e  ind/s=%.3e\n", "scale baseline (1 thr)",
              baseline_field(json, "scale", "ue_epochs_per_sec"),
              baseline_field(json, "scale", "indications_per_sec"));
  for (const char* side : {"copy", "move", "binary"}) {
    std::printf("%-26s inds/s=%.3e  allocs/ind=%.2f\n",
                (std::string("codec ") + side).c_str(),
                baseline_field(json, side, "inds_per_sec"),
                baseline_field(json, side, "allocs_per_ind"));
  }
  std::printf("%-26s writes/s=%.3e  contentions=%.0f\n", "sdl striped",
              baseline_field(json, "striped", "writes_per_sec"),
              baseline_field(json, "striped", "contentions"));
  std::printf("(rerun bench_cityscale --report-out to refresh; this run only "
              "echoes the committed numbers for context)\n");
}

}  // namespace

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  parse_threads_flag(argc, argv);

  // --baseline / --serve-baseline / --defense-baseline: committed reports
  // to diff against.
  std::string baseline;
  std::string serve_baseline;
  std::string defense_baseline;
  std::string cityscale_baseline;
  {
    int w = 1;
    for (int r = 1; r < argc; ++r) {
      if (std::strcmp(argv[r], "--baseline") == 0 && r + 1 < argc) {
        baseline = argv[++r];
      } else if (std::strncmp(argv[r], "--baseline=", 11) == 0) {
        baseline = argv[r] + 11;
      } else if (std::strcmp(argv[r], "--serve-baseline") == 0 &&
                 r + 1 < argc) {
        serve_baseline = argv[++r];
      } else if (std::strncmp(argv[r], "--serve-baseline=", 17) == 0) {
        serve_baseline = argv[r] + 17;
      } else if (std::strcmp(argv[r], "--defense-baseline") == 0 &&
                 r + 1 < argc) {
        defense_baseline = argv[++r];
      } else if (std::strncmp(argv[r], "--defense-baseline=", 19) == 0) {
        defense_baseline = argv[r] + 19;
      } else if (std::strcmp(argv[r], "--cityscale-baseline") == 0 &&
                 r + 1 < argc) {
        cityscale_baseline = argv[++r];
      } else if (std::strncmp(argv[r], "--cityscale-baseline=", 21) == 0) {
        cityscale_baseline = argv[r] + 21;
      } else {
        argv[w++] = argv[r];
      }
    }
    argc = w;
  }

  std::printf("=== Perf report: matmul / E2 round-trip / attack sample / "
              "serve batch / defended batch ===\n");

  run_matmul(/*reps=*/300);
  run_e2_roundtrip(/*reps=*/500);
  run_attack(/*samples=*/64);
  run_serve(/*batches=*/300);
  run_defense(/*batches=*/300);
  run_sdl_stripes(/*writes_per_worker=*/2000);

  print_rule();
  print_hist("perf.matmul64_ms");
  print_hist("perf.e2_roundtrip_ms");
  print_hist("perf.attack_sample_ms");
  print_hist("attack.batch.sample_ms");
  print_hist("perf.serve_batch_ms");
  print_hist("perf.defense_screen_ms");
  print_hist("oran.sdl.lock_wait_ns", "ns");
  print_rule();
  // Sketch-derived quantiles (relative-error guarantee, no bucket bias).
  print_sketch("perf.matmul64_ms_q");
  print_sketch("perf.e2_roundtrip_ms_q");
  print_sketch("perf.attack_sample_ms_q");
  print_sketch("perf.serve_batch_ms_q");
  print_sketch("perf.defense_screen_ms_q");
  print_sketch("serve.perf.latency_us", "us");  // virtual submit-to-completion
  print_rule();
  if (!baseline.empty()) {
    diff_against_baseline(baseline);
    print_rule();
  }
  if (!serve_baseline.empty()) {
    diff_against_serve_baseline(serve_baseline);
    print_rule();
  }
  if (!defense_baseline.empty()) {
    diff_against_defense_baseline(defense_baseline);
    print_rule();
  }
  if (!cityscale_baseline.empty()) {
    diff_against_cityscale_baseline(cityscale_baseline);
    print_rule();
  }
  std::printf("run with --metrics-out BENCH_<date>.json to save the report\n");
  return 0;
}
