// Figure 8 reproduction — defense evaluation (§7).
//   (a) Spectrogram IC xApp: victim accuracy vs APD under the black-box
//       UAP attack, for the undefended victim, a defensively-distilled
//       victim, and an adversarially-trained victim (AT per §7: benign
//       training set augmented at ε ∈ {0.02,...,0.5} using the *same
//       surrogate the attacker uses*). The attacker re-clones whatever
//       victim is deployed (black-box throughout).
//   (b) Power-Saving rApp: TASR vs ε for the same three defenses.
//
// Paper shape: the attack overcomes distillation with a small APD gap
// (cloning nullifies gradient masking); AT is the stronger defense,
// shifting the required APD up — but the attack still succeeds at larger
// budgets.
#include "bench_common.hpp"
#include "defense/defenses.hpp"

using namespace orev;
using namespace orev::bench;

namespace {

/// Clone a deployed victim with a DenseNet surrogate and UAP-attack it
/// across the ε grid; returns (eps, accuracy/tasr, apd) rows.
struct DefenseRow {
  float eps;
  attack::AttackMetrics metrics;
};

std::vector<DefenseRow> attack_victim(nn::Model& victim,
                                      const data::Dataset& clone_inputs,
                                      const data::Dataset& attack_set,
                                      const nn::Shape& input_shape,
                                      int num_classes, int target_class,
                                      bool use_one_layer_surrogate) {
  const data::Dataset d_clone =
      attack::collect_clone_dataset(victim, clone_inputs.x);
  attack::CloneConfig ccfg = bench_clone_config();
  ccfg.train.max_epochs = use_one_layer_surrogate ? 30 : 10;
  const auto candidates = surrogate_candidates(input_shape, num_classes);
  TrainedSurrogate sur = train_surrogate(
      d_clone, candidates[use_one_layer_surrogate ? 4 : 1], ccfg);

  // Seed per attack type (see bench_table1/bench_table2 notes).
  data::Dataset seed = d_clone;
  if (target_class < 0) {
    std::vector<int> rows;
    for (int i = 0; i < d_clone.size(); ++i)
      if (d_clone.y[static_cast<std::size_t>(i)] == ran::kLabelInterference)
        rows.push_back(i);
    seed = d_clone.subset(rows).take(150);
  } else {
    seed = d_clone.take(250);
  }

  std::vector<DefenseRow> out;
  for (const float eps : kEpsGrid) {
    attack::UapConfig ucfg;
    ucfg.eps = eps;
    ucfg.target_fooling = 0.95;
    ucfg.max_passes = 5;
    ucfg.min_confidence = target_class < 0 ? 0.9f : 0.8f;
    ucfg.robust_draws = 3;
    ucfg.robust_noise = target_class < 0 ? 0.15f : 0.1f;
    attack::DeepFool inner(30, 0.1f);
    const attack::UapResult uap =
        target_class < 0
            ? attack::generate_uap(sur.model, seed.x, inner, ucfg)
            : attack::generate_targeted_uap(sur.model, seed.x, inner,
                                            target_class, ucfg);
    const nn::Tensor x_adv = attack::apply_uap(attack_set.x,
                                               uap.perturbation);
    DefenseRow row;
    row.eps = eps;
    row.metrics = attack::evaluate_attack(victim, attack_set.x, x_adv,
                                          attack_set.y, target_class);
    out.push_back(row);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  CsvWriter csv;
  csv.header({"panel", "defense", "eps", "accuracy_or_tasr", "apd"});

  // ---------------------------------------------------------- panel (a)
  std::printf("=== Figure 8(a): IC xApp — UAP vs defended victims ===\n");
  {
    data::Dataset corpus = bench_spectrogram_corpus();
    Rng rng(1);
    data::Split split = data::stratified_split(corpus, 0.7, rng);
    const data::Dataset attack_set = split.test.take(80);

    // Undefended victim.
    nn::Model base = train_victim_cnn(split.train, split.test);

    // Defensive distillation: teacher = base, student = same architecture.
    defense::DistillConfig dcfg;
    dcfg.temperature = 10.0f;
    dcfg.train.max_epochs = 12;
    dcfg.train.learning_rate = 2e-3f;
    nn::Model distilled = defense::distill(
        base,
        [&](std::uint64_t s) {
          return apps::make_base_cnn(corpus.sample_shape(), 2, s);
        },
        split.train, split.test, dcfg);

    // Adversarial training with the attacker's surrogate (DenseNet clone
    // of the base victim), per the paper's realistic setup.
    const data::Dataset d_clone_base =
        attack::collect_clone_dataset(base, split.train.x);
    TrainedSurrogate at_surrogate = train_surrogate(
        d_clone_base, surrogate_candidates(corpus.sample_shape(), 2)[1],
        bench_clone_config());
    nn::Model hardened = train_victim_cnn(split.train, split.test, 77);
    defense::AdvTrainConfig acfg;
    acfg.train.max_epochs = 8;
    acfg.train.learning_rate = 2e-3f;
    defense::adversarial_training(hardened, split.train, split.test,
                                  at_surrogate.model, acfg);

    struct Victim {
      const char* name;
      nn::Model* model;
    };
    Victim victims[] = {{"base", &base},
                        {"distillation", &distilled},
                        {"adversarial-training", &hardened}};
    for (const Victim& v : victims) {
      const double clean =
          nn::evaluate(*v.model, split.test.x, split.test.y).accuracy;
      std::printf("\n[%s] clean accuracy %.3f\n", v.name, clean);
      const auto rows = attack_victim(*v.model, split.train, attack_set,
                                      corpus.sample_shape(), 2, -1, false);
      for (const DefenseRow& r : rows) {
        std::printf("  eps %.2f: accuracy %.3f at APD %.3f\n", r.eps,
                    r.metrics.accuracy, r.metrics.apd);
        csv.row("a", v.name, r.eps, r.metrics.accuracy, r.metrics.apd);
      }
    }
  }

  // ---------------------------------------------------------- panel (b)
  std::printf("\n=== Figure 8(b): Power-Saving rApp — TASR vs eps under "
              "defenses ===\n");
  {
    data::Dataset corpus = bench_prb_corpus();
    Rng rng(3);
    data::Split split = data::stratified_split(corpus, 0.7, rng);
    const data::Dataset attack_set = split.test.take(120);
    const int target = static_cast<int>(rictest::kMostDisruptiveAction);

    nn::Model base = train_victim_ps(split.train, split.test);

    defense::DistillConfig dcfg;
    dcfg.temperature = 10.0f;
    dcfg.train.max_epochs = 25;
    dcfg.train.learning_rate = 5e-3f;
    nn::Model distilled = defense::distill(
        base,
        [&](std::uint64_t s) {
          return apps::make_power_saving_cnn(corpus.sample_shape(), 6, s);
        },
        split.train, split.test, dcfg);

    const data::Dataset d_clone_base =
        attack::collect_clone_dataset(base, split.train.x);
    attack::CloneConfig ccfg;
    ccfg.train.max_epochs = 30;
    ccfg.train.learning_rate = 5e-3f;
    TrainedSurrogate at_surrogate = train_surrogate(
        d_clone_base,
        attack::Candidate{"1L",
                          [&](std::uint64_t s) {
                            return apps::make_arch(apps::Arch::kOneLayer,
                                                   corpus.sample_shape(), 6,
                                                   s);
                          }},
        ccfg);
    nn::Model hardened = train_victim_ps(split.train, split.test, 77);
    defense::AdvTrainConfig acfg;
    acfg.train.max_epochs = 15;
    acfg.train.learning_rate = 5e-3f;
    defense::adversarial_training(hardened, split.train, split.test,
                                  at_surrogate.model, acfg);

    struct Victim {
      const char* name;
      nn::Model* model;
    };
    Victim victims[] = {{"base", &base},
                        {"distillation", &distilled},
                        {"adversarial-training", &hardened}};
    for (const Victim& v : victims) {
      const double clean =
          nn::evaluate(*v.model, split.test.x, split.test.y).accuracy;
      std::printf("\n[%s] clean accuracy %.3f\n", v.name, clean);
      const auto rows = attack_victim(*v.model, split.train, attack_set,
                                      corpus.sample_shape(), 6, target,
                                      true);
      for (const DefenseRow& r : rows) {
        std::printf("  eps %.2f: TASR %.1f%% NTASR %.1f%% at APD %.3f\n",
                    r.eps, 100.0 * r.metrics.tasr, 100.0 * r.metrics.ntasr,
                    r.metrics.apd);
        csv.row("b", v.name, r.eps, 100.0 * r.metrics.tasr, r.metrics.apd);
      }
    }
  }

  save_csv(csv, "fig8");
  return 0;
}
