// Crash-recovery harness (DESIGN.md §10): proves the checkpoint/resume
// layer end to end. For every kill-point in a seeded FaultPlan it runs the
// attack pipeline (MCA over two surrogate candidates, then a UAP fit on
// the winner) with checkpointing enabled, lets the injected crash abort
// the process state mid-run, resumes in a fresh pipeline invocation, and
// byte-compares the final surrogate weights, UAP perturbation and score
// table against a baseline run that never checkpointed and never crashed.
// SDL kill-points do the same over the snapshot+journal store. Equality
// proves two properties at once: a resumed run loses nothing, and the
// checkpoint machinery perturbs nothing.
//
// Timing fields (train_seconds and friends) are inherently non-
// deterministic and excluded from every comparison.
//
// Flags (parsed before ObsGuard):
//   --kill-plan FILE   kill-point schedule (default: the committed
//                      recovery plan, bench/fault_plans/
//                      recovery_default.plan)
//   --print-plan       print the active plan in FaultPlan text format and
//                      exit (CI diffs this against the committed file)
// plus the usual --metrics-out/--trace-out/--threads via ObsGuard.
#include "bench_common.hpp"

#include "nn/serialize.hpp"
#include "oran/sdl.hpp"
#include "util/persist/bytes.hpp"
#include "util/persist/persist.hpp"

using namespace orev;
using namespace orev::bench;

namespace {

// Pipeline scale: small enough that a scenario sweep stays in benchmark
// territory, large enough that every kill-point in the committed plan
// actually fires (3 trainer commits per candidate, 2 clone commits, 3 UAP
// pass commits).
constexpr int kPerClass = 24;
constexpr int kMaxEpochs = 6;
constexpr int kCheckpointEvery = 2;
constexpr int kUapPasses = 3;
constexpr int kUapSamples = 32;

/// Everything deterministic the pipeline produces, in byte form.
struct PipelineOutput {
  std::string model_bytes;  // winner's params + layer state
  std::string uap_bytes;    // fitted perturbation tensor
  std::string table_csv;    // scores + UAP stats, timing excluded
};

std::vector<attack::Candidate> recovery_candidates(const nn::Shape& shape,
                                                   int classes) {
  std::vector<attack::Candidate> out;
  for (const apps::Arch arch : {apps::Arch::kOneLayer, apps::Arch::kBase}) {
    out.push_back(attack::Candidate{
        apps::arch_name(arch),
        [arch, shape, classes](std::uint64_t seed) {
          return apps::make_arch(arch, shape, classes, seed);
        }});
  }
  return out;
}

/// One full pipeline run. With an empty `ckpt_dir` nothing is ever written
/// (the baseline); otherwise checkpoints land there and a previous run's
/// state is resumed transparently.
PipelineOutput run_pipeline(const data::Dataset& corpus,
                            const std::string& ckpt_dir) {
  attack::CloneConfig cfg;
  cfg.train.max_epochs = kMaxEpochs;
  cfg.train.learning_rate = 2e-3f;
  cfg.train.early_stop_patience = kMaxEpochs;  // never stop at this scale
  cfg.train.checkpoint_every = kCheckpointEvery;
  cfg.checkpoint_dir = ckpt_dir;
  attack::CloneReport rep = attack::clone_model(
      corpus, recovery_candidates(corpus.sample_shape(), corpus.num_classes),
      cfg);

  const int m = std::min(kUapSamples, corpus.x.dim(0));
  nn::Shape s = corpus.x.shape();
  s[0] = m;
  nn::Tensor samples(s);
  for (int i = 0; i < m; ++i)
    samples.set_batch(i, corpus.x.slice_batch(i));

  attack::UapConfig ucfg;
  ucfg.eps = 0.1f;
  ucfg.max_passes = kUapPasses;
  ucfg.target_fooling = 2.0;  // unreachable: always run every pass
  if (!ckpt_dir.empty()) ucfg.checkpoint_path = ckpt_dir + "/uap.ckpt";
  attack::Fgsm inner(0.05f);
  const attack::UapResult uap =
      attack::generate_uap(rep.model, samples, inner, ucfg);

  PipelineOutput out;
  persist::ByteWriter mw;
  rep.model.write_state(mw);
  out.model_bytes = mw.take();
  persist::ByteWriter uw;
  nn::write_tensor(uw, uap.perturbation);
  out.uap_bytes = uw.take();
  CsvWriter csv;
  csv.header({"arch", "cloning_accuracy", "epochs_run", "early_stopped"});
  for (const attack::ArchScore& sc : rep.scores)
    csv.row(sc.name, sc.cloning_accuracy, sc.epochs_run,
            sc.early_stopped ? 1 : 0);
  csv.row("uap", uap.achieved_fooling, uap.passes, 0);
  out.table_csv = csv.str();
  return out;
}

/// The scripted SDL write sequence (tensor + text traffic with
/// overwrites). Returns the number of successful writes applied starting
/// from `from`; throws FaultInjectedError through from the kill-point.
int apply_sdl_writes(oran::Sdl& sdl, int from, int count) {
  int applied = 0;
  for (int i = from; i < count; ++i) {
    const std::string ns = i % 3 == 2 ? "ns/b" : "ns/a";
    std::string key = "k";
    key += std::to_string(i % 4);
    if (i % 2 == 0) {
      nn::Tensor t({3}, {static_cast<float>(i), static_cast<float>(i) * 0.5f,
                         -static_cast<float>(i)});
      OREV_CHECK(sdl.write_tensor("app", ns, key, std::move(t)) ==
                     oran::SdlStatus::kOk,
                 "scripted SDL tensor write must succeed");
    } else {
      std::string value = "v";
      value += std::to_string(i);
      OREV_CHECK(sdl.write_text("app", ns, key, std::move(value)) ==
                     oran::SdlStatus::kOk,
                 "scripted SDL text write must succeed");
    }
    ++applied;
  }
  return applied;
}

constexpr int kSdlWrites = 10;

/// Canonical byte fingerprint of the visible store state: every key of the
/// scripted namespaces with version, last writer and payload.
std::string sdl_fingerprint(oran::Sdl& sdl) {
  persist::ByteWriter w;
  for (const std::string ns : {"ns/a", "ns/b"}) {
    for (const std::string& key : sdl.keys(ns)) {
      w.str(ns);
      w.str(key);
      w.u64(sdl.version(ns, key).value_or(0));
      w.str(sdl.last_writer(ns, key).value_or(""));
      nn::Tensor t;
      if (sdl.read_tensor("app", ns, key, t) == oran::SdlStatus::kOk) {
        w.u8(1);
        nn::write_tensor(w, t);
      } else {
        std::string text;
        OREV_CHECK(sdl.read_text("app", ns, key, text) == oran::SdlStatus::kOk,
                   "fingerprint read must succeed");
        w.u8(0);
        w.str(text);
      }
    }
  }
  return w.take();
}

void permissive_rbac(oran::Rbac& rbac) {
  rbac.define_role("rw", {oran::Permission{"ns/*", true, true}});
  rbac.assign_role("app", "rw");
}

struct ScenarioResult {
  std::string name;
  std::string site;
  std::uint64_t after = 0;
  bool crashed = false;
  bool match = false;
};

std::string scenario_dir(const std::string& name) {
  const std::string dir = "bench_results/recovery/" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// A plan holding exactly one kill spec, so each scenario crashes exactly
/// once at its designated commit.
fault::FaultPlan single_kill(std::uint64_t seed, const std::string& site,
                             const fault::FaultSpec& spec) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.sites[site].push_back(spec);
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  std::string plan_file;
  bool print_plan = false;
  {
    int w = 1;
    for (int r = 1; r < argc; ++r) {
      if (std::strcmp(argv[r], "--kill-plan") == 0 && r + 1 < argc) {
        plan_file = argv[++r];
      } else if (std::strncmp(argv[r], "--kill-plan=", 12) == 0) {
        plan_file = argv[r] + 12;
      } else if (std::strcmp(argv[r], "--print-plan") == 0) {
        print_plan = true;
      } else {
        argv[w++] = argv[r];
      }
    }
    argc = w;
  }

  fault::FaultPlan plan = fault::default_recovery_plan();
  if (!plan_file.empty()) {
    const std::optional<fault::FaultPlan> loaded =
        fault::FaultPlan::load(plan_file);
    if (!loaded) {
      std::fprintf(stderr, "cannot read kill plan %s\n", plan_file.c_str());
      return 2;
    }
    plan = *loaded;
  }
  if (print_plan) {
    std::fputs(plan.to_string().c_str(), stdout);
    return 0;
  }

  ObsGuard obs_guard(argc, argv);
  parse_threads_flag(argc, argv);

  std::printf("=== Crash recovery: kill-point sweep (plan seed %llu) ===\n",
              static_cast<unsigned long long>(plan.seed));
  const data::Dataset corpus = bench_spectrogram_corpus(kPerClass);

  std::printf("[recovery] baseline pipeline (no checkpointing)...\n");
  WallTimer baseline_timer;
  const PipelineOutput baseline = run_pipeline(corpus, /*ckpt_dir=*/"");
  std::printf("[recovery] baseline done in %.1fs\n", baseline_timer.seconds());

  std::vector<ScenarioResult> results;
  int scenario_idx = 0;
  for (const auto& [site, specs] : plan.sites) {
    for (const fault::FaultSpec& spec : specs) {
      ScenarioResult res;
      res.site = site;
      res.after = spec.after;
      res.name = site + "@" + std::to_string(spec.after);
      for (char& c : res.name)
        if (c == '.') c = '_';
      const std::string dir = scenario_dir(res.name);
      ++scenario_idx;

      if (site == fault::sites::kSdlJournal) {
        // Baseline fingerprint: the scripted writes on an in-memory SDL.
        oran::Rbac rbac;
        permissive_rbac(rbac);
        std::string want;
        {
          oran::Sdl mem(&rbac);
          apply_sdl_writes(mem, 0, kSdlWrites);
          want = sdl_fingerprint(mem);
        }
        // Crash run: persistent SDL dies at the designated journal append
        // (the record is already durable when the crash fires).
        int applied = 0;
        {
          fault::FaultInjector injector(single_kill(plan.seed, site, spec));
          oran::Sdl sdl(&rbac);
          sdl.set_fault_injector(&injector);
          OREV_CHECK(sdl.attach_storage(dir).ok(), "attach must succeed");
          try {
            for (int i = 0; i < kSdlWrites; ++i) {
              apply_sdl_writes(sdl, i, i + 1);
              ++applied;
            }
          } catch (const fault::FaultInjectedError&) {
            ++applied;  // the crashing write itself committed durably
            res.crashed = true;
          }
        }
        // Resume: fresh process state replays snapshot+journal, finishes
        // the scripted sequence, then compacts and reattaches once more.
        if (res.crashed) {
          oran::Sdl sdl(&rbac);
          OREV_CHECK(sdl.attach_storage(dir).ok(), "re-attach must succeed");
          apply_sdl_writes(sdl, applied, kSdlWrites);
          const bool live_match = sdl_fingerprint(sdl) == want;
          OREV_CHECK(sdl.snapshot().ok(), "snapshot must succeed");
          oran::Sdl sdl2(&rbac);
          OREV_CHECK(sdl2.attach_storage(dir).ok(),
                     "post-snapshot attach must succeed");
          OREV_CHECK(sdl2.journal_replayed() == 0,
                     "snapshot must have compacted the journal");
          res.match = live_match && sdl_fingerprint(sdl2) == want;
        }
      } else {
        // Crash run: the pipeline dies at the designated checkpoint
        // commit; the injected error unwinds out of the pipeline call the
        // way a process kill would end it.
        {
          fault::FaultInjector injector(single_kill(plan.seed, site, spec));
          fault::set_global_injector(&injector);
          try {
            (void)run_pipeline(corpus, dir);
          } catch (const fault::FaultInjectedError&) {
            res.crashed = true;
          }
          fault::set_global_injector(nullptr);
        }
        // Resume run: no injector, same checkpoint dir.
        if (res.crashed) {
          const PipelineOutput resumed = run_pipeline(corpus, dir);
          res.match = resumed.model_bytes == baseline.model_bytes &&
                      resumed.uap_bytes == baseline.uap_bytes &&
                      resumed.table_csv == baseline.table_csv;
        }
      }

      std::printf("[recovery] %-18s crashed=%d byte-identical=%d\n",
                  res.name.c_str(), res.crashed ? 1 : 0, res.match ? 1 : 0);
      results.push_back(res);
    }
  }

  CsvWriter csv;
  csv.header({"scenario", "site", "after", "crashed", "byte_identical"});
  bool all_ok = !results.empty();
  for (const ScenarioResult& r : results) {
    csv.row(r.name, r.site, r.after, r.crashed ? 1 : 0, r.match ? 1 : 0);
    all_ok = all_ok && r.crashed && r.match;
  }
  save_csv(csv, "recovery");

  print_rule();
  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: a kill-point scenario did not crash or did not "
                 "resume byte-identically\n");
    return 1;
  }
  std::printf("all %zu kill-point scenarios resumed byte-identically to the "
              "uninterrupted baseline\n",
              results.size());
  return 0;
}
