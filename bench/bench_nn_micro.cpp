// google-benchmark microbenchmarks of the numeric substrate (src/nn):
// matmul kernels, conv forward/backward, full model forward and
// input-gradient passes — the primitives whose cost sets every attack's
// latency budget (Fig. 3's raw ingredients).
#include <benchmark/benchmark.h>

#include "apps/model_zoo.hpp"
#include "bench_common.hpp"
#include "nn/layers.hpp"

using namespace orev;
using namespace orev::nn;

namespace {

Tensor rand_tensor(Shape s, std::uint64_t seed = 1) {
  Rng rng(seed);
  return Tensor::randn(std::move(s), rng);
}

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Tensor a = rand_tensor({n, n});
  const Tensor b = rand_tensor({n, n}, 2);
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatmulBt(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Tensor a = rand_tensor({n, n});
  const Tensor b = rand_tensor({n, n}, 2);
  for (auto _ : state) benchmark::DoNotOptimize(matmul_bt(a, b));
}
BENCHMARK(BM_MatmulBt)->Arg(64);

void BM_Conv2DForward(benchmark::State& state) {
  Conv2D conv(8, 16, 3, 1, 1);
  Rng rng(3);
  conv.init(rng);
  const Tensor x = rand_tensor({1, 8, 24, 24});
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x, false));
}
BENCHMARK(BM_Conv2DForward);

void BM_Conv2DBackward(benchmark::State& state) {
  Conv2D conv(8, 16, 3, 1, 1);
  Rng rng(4);
  conv.init(rng);
  const Tensor x = rand_tensor({1, 8, 24, 24});
  const Tensor g = rand_tensor({1, 16, 24, 24});
  conv.forward(x, true);
  for (auto _ : state) {
    for (Param* p : conv.params()) p->zero_grad();
    benchmark::DoNotOptimize(conv.backward(g));
  }
}
BENCHMARK(BM_Conv2DBackward);

void BM_DepthwiseForward(benchmark::State& state) {
  DepthwiseConv2D conv(16, 3, 1, 1);
  Rng rng(5);
  conv.init(rng);
  const Tensor x = rand_tensor({1, 16, 24, 24});
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x, false));
}
BENCHMARK(BM_DepthwiseForward);

void BM_ModelForward(benchmark::State& state) {
  nn::Model m = apps::make_arch(
      apps::all_archs()[static_cast<std::size_t>(state.range(0))],
      {1, 24, 24}, 2, 7);
  const Tensor x = rand_tensor({1, 1, 24, 24});
  for (auto _ : state) benchmark::DoNotOptimize(m.forward(x));
  state.SetLabel(apps::arch_name(
      apps::all_archs()[static_cast<std::size_t>(state.range(0))]));
}
BENCHMARK(BM_ModelForward)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_InputGradient(benchmark::State& state) {
  nn::Model m = apps::make_arch(
      apps::all_archs()[static_cast<std::size_t>(state.range(0))],
      {1, 24, 24}, 2, 8);
  const Tensor x = rand_tensor({1, 24, 24});
  for (auto _ : state) {
    m.zero_grad();
    benchmark::DoNotOptimize(m.input_gradient(x, {0}));
  }
  state.SetLabel(apps::arch_name(
      apps::all_archs()[static_cast<std::size_t>(state.range(0))]));
}
BENCHMARK(BM_InputGradient)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_BatchNormForward(benchmark::State& state) {
  BatchNorm bn(16);
  const Tensor x = rand_tensor({8, 16, 12, 12});
  for (auto _ : state) benchmark::DoNotOptimize(bn.forward(x, true));
}
BENCHMARK(BM_BatchNormForward);

void BM_BatchedConvForward(benchmark::State& state) {
  // Sample-parallel path: batch large enough that the pool fans out.
  Conv2D conv(8, 16, 3, 1, 1);
  Rng rng(6);
  conv.init(rng);
  const Tensor x = rand_tensor({16, 8, 24, 24});
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x, false));
}
BENCHMARK(BM_BatchedConvForward)->Unit(benchmark::kMicrosecond);

void BM_BatchedModelForward(benchmark::State& state) {
  nn::Model m = apps::make_base_cnn({1, 24, 24}, 2, 9);
  const Tensor x = rand_tensor({32, 1, 24, 24});
  for (auto _ : state) benchmark::DoNotOptimize(m.forward(x));
}
BENCHMARK(BM_BatchedModelForward)->Unit(benchmark::kMicrosecond);

/// Threads-scaling evidence for the CSV: one fixed batched
/// forward+input-gradient workload, timed at the active thread count.
/// Run the binary once per thread count (`--threads 1`, `--threads 4`, ...)
/// and compare the wall_ms column across runs.
void report_thread_scaling(int threads) {
  nn::Model m = apps::make_base_cnn({1, 24, 24}, 2, 9);
  const Tensor x = rand_tensor({32, 1, 24, 24});
  m.forward(x);  // warm up caches / pool

  constexpr int kReps = 20;
  const orev::bench::WallTimer timer;
  for (int r = 0; r < kReps; ++r) {
    benchmark::DoNotOptimize(m.forward(x));
    m.zero_grad();
    benchmark::DoNotOptimize(m.input_gradient(x.slice_batch(0), {0}));
  }
  const double wall_ms = timer.seconds() * 1e3 / kReps;

  orev::CsvWriter csv;
  csv.header({"workload", "threads", "wall_ms"});
  csv.row("base_cnn_fwd32_plus_input_grad", threads, wall_ms);
  orev::bench::save_csv(csv,
                        "nn_micro_threads_" + std::to_string(threads));
  std::printf("[scaling] threads=%d wall_ms=%.3f\n", threads, wall_ms);
}

}  // namespace

int main(int argc, char** argv) {
  orev::bench::ObsGuard obs_guard(argc, argv);
  const int threads = orev::bench::parse_threads_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_thread_scaling(threads);
  return 0;
}
