// Shared fixtures for the benchmark suite: the spectrogram/KPM/PRB corpora
// at benchmark scale, victim training, the five-candidate surrogate list,
// and table-printing helpers.
//
// Scale note: the paper trains ImageNet-class surrogates on GPUs over
// 3,000 RGB 128×128 spectrograms. The benchmarks run the same pipeline on
// one CPU core, so they default to 24×24 single-channel spectrograms and a
// few hundred samples; every bench accepts its sizes as constants below.
// Relative orderings (which surrogate clones best, UAP-vs-input-specific,
// timing ratios) are preserved; see DESIGN.md §1.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <system_error>
#include <vector>

#include "apps/model_zoo.hpp"
#include "attack/clone.hpp"
#include "attack/metrics.hpp"
#include "attack/runner.hpp"
#include "attack/uap.hpp"
#include "data/dataset.hpp"
#include "ran/datasets.hpp"
#include "rictest/dataset.hpp"
#include "util/csv.hpp"
#include "util/fault/fault.hpp"
#include "util/obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace orev::bench {

/// Parse and strip a `--threads N` / `--threads=N` flag, configure the
/// global pool accordingly, and return the active thread count. With no
/// flag the pool keeps its default (OREV_NUM_THREADS or 1). The flag is
/// removed from argv so downstream parsers (e.g. google-benchmark) never
/// see it.
inline int parse_threads_flag(int& argc, char** argv) {
  int threads = -1;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--threads") == 0 && r + 1 < argc) {
      threads = std::atoi(argv[++r]);
    } else if (std::strncmp(argv[r], "--threads=", 10) == 0) {
      threads = std::atoi(argv[r] + 10);
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  if (threads > 0) util::set_num_threads(threads);
  std::printf("[threads] running with %d thread(s)\n", util::num_threads());
  return util::num_threads();
}

/// Monotonic wall-clock timer for CSV reporting. The observability layer's
/// timer, re-exported: `seconds()` as before, plus `elapsed_ns()` /
/// `lap_ns()` / `lap_seconds()` / `reset()` for finer-grained loops.
using WallTimer = obs::WallTimer;

/// Parse and strip `--metrics-out FILE` / `--trace-out FILE` flags, then
/// dump the process-wide metrics registry (JSON) and the trace ring
/// (chrome://tracing JSON) to those files when the guard goes out of scope
/// at the end of main(). `--trace-out` also force-enables tracing, so the
/// flag works without setting OREV_TRACE=1.
///
/// Also parses `--fault-plan FILE` / `--fault-seed N`: when either is
/// present, a FaultInjector is built from the plan file (or, with only a
/// seed, from fault::default_chaos_plan()) and installed as the
/// process-global injector — so every existing bench runs under a fault
/// schedule with no code changes. The injector's per-site stats print at
/// exit. All flags are removed from argv so downstream parsers (e.g.
/// google-benchmark) never see them.
///
/// Usage, first lines of a bench main():
///   bench::ObsGuard obs_guard(argc, argv);
///   bench::parse_threads_flag(argc, argv);
class ObsGuard {
 public:
  ObsGuard(int& argc, char** argv) {
    std::string fault_plan;
    std::string fault_seed;
    int w = 1;
    for (int r = 1; r < argc; ++r) {
      if (std::strcmp(argv[r], "--metrics-out") == 0 && r + 1 < argc) {
        metrics_out_ = argv[++r];
      } else if (std::strncmp(argv[r], "--metrics-out=", 14) == 0) {
        metrics_out_ = argv[r] + 14;
      } else if (std::strcmp(argv[r], "--trace-out") == 0 && r + 1 < argc) {
        trace_out_ = argv[++r];
      } else if (std::strncmp(argv[r], "--trace-out=", 12) == 0) {
        trace_out_ = argv[r] + 12;
      } else if (std::strcmp(argv[r], "--fault-plan") == 0 && r + 1 < argc) {
        fault_plan = argv[++r];
      } else if (std::strncmp(argv[r], "--fault-plan=", 13) == 0) {
        fault_plan = argv[r] + 13;
      } else if (std::strcmp(argv[r], "--fault-seed") == 0 && r + 1 < argc) {
        fault_seed = argv[++r];
      } else if (std::strncmp(argv[r], "--fault-seed=", 13) == 0) {
        fault_seed = argv[r] + 13;
      } else if (std::strcmp(argv[r], "--flight-dir") == 0 && r + 1 < argc) {
        flight_dir_ = argv[++r];
      } else if (std::strncmp(argv[r], "--flight-dir=", 13) == 0) {
        flight_dir_ = argv[r] + 13;
      } else {
        argv[w++] = argv[r];
      }
    }
    argc = w;
    if (!trace_out_.empty()) {
      obs::set_trace_enabled(true);
      // Causal spans and wall-clock trace events share the chrome export
      // file: if the bench recorded any causal spans, they win (the
      // destructor picks whichever ring has content).
      obs::set_causal_enabled(true);
    }
    if (!flight_dir_.empty()) obs::set_flight_dir(flight_dir_);
    if (!fault_plan.empty() || !fault_seed.empty()) {
      fault::FaultPlan plan = fault::default_chaos_plan();
      if (!fault_plan.empty()) {
        const std::optional<fault::FaultPlan> loaded =
            fault::FaultPlan::load(fault_plan);
        if (!loaded) {
          std::fprintf(stderr, "[fault] cannot read plan file %s\n",
                       fault_plan.c_str());
          std::exit(2);
        }
        plan = *loaded;
      }
      if (!fault_seed.empty()) {
        plan.seed = std::strtoull(fault_seed.c_str(), nullptr, 0);
      }
      injector_ = std::make_unique<fault::FaultInjector>(plan);
      fault::set_global_injector(injector_.get());
      std::printf("[fault] injector armed (plan=%s seed=%llu)\n",
                  fault_plan.empty() ? "<default-chaos>" : fault_plan.c_str(),
                  static_cast<unsigned long long>(plan.seed));
    }
  }

  ObsGuard(const ObsGuard&) = delete;
  ObsGuard& operator=(const ObsGuard&) = delete;

  ~ObsGuard() {
    if (injector_ != nullptr) {
      fault::set_global_injector(nullptr);
      std::printf("[fault] %s\n", injector_->stats_json().c_str());
    }
    if (!metrics_out_.empty()) {
      if (obs::Registry::instance().save_json(metrics_out_)) {
        std::printf("[obs] wrote metrics to %s\n", metrics_out_.c_str());
      } else {
        std::printf("[obs] FAILED to write metrics to %s\n",
                    metrics_out_.c_str());
      }
    }
    if (!trace_out_.empty()) {
      // Prefer the causal (virtual-time, deterministic) ring when the run
      // produced spans; fall back to the wall-clock trace ring otherwise.
      const bool ok = obs::causal_size() > 0
                          ? obs::save_causal_chrome_json(trace_out_)
                          : obs::save_trace_chrome_json(trace_out_);
      if (ok) {
        std::printf("[obs] wrote trace to %s (load via chrome://tracing)\n",
                    trace_out_.c_str());
      } else {
        std::printf("[obs] FAILED to write trace to %s\n",
                    trace_out_.c_str());
      }
    }
  }

 private:
  std::string metrics_out_;
  std::string trace_out_;
  std::string flight_dir_;
  std::unique_ptr<fault::FaultInjector> injector_;
};

/// The ε grid of Tables 1 and 2.
inline const std::vector<float> kEpsGrid = {0.05f, 0.1f, 0.2f, 0.3f, 0.5f};

/// Benchmark-scale spectrogram corpus (paper: 1,500 per class, 128×128).
inline ran::SpectrogramConfig bench_spectrogram_config() {
  ran::SpectrogramConfig cfg;
  cfg.freq_bins = 24;
  cfg.time_frames = 24;
  return cfg;
}

inline data::Dataset bench_spectrogram_corpus(int per_class = 180,
                                              std::uint64_t seed = 4242) {
  return ran::make_spectrogram_dataset(bench_spectrogram_config(), per_class,
                                       seed);
}

/// Train the Spectrogram IC xApp victim (BaseCNN) on a training split.
inline nn::Model train_victim_cnn(const data::Dataset& train,
                                  const data::Dataset& val,
                                  std::uint64_t seed = 11) {
  nn::Model victim = apps::make_base_cnn(train.sample_shape(),
                                         train.num_classes, seed);
  nn::TrainConfig cfg;
  cfg.max_epochs = 12;
  cfg.learning_rate = 2e-3f;
  cfg.early_stop_patience = 4;
  nn::Trainer trainer(cfg);
  trainer.fit(victim, train.x, train.y, val.x, val.y);
  return victim;
}

/// The five surrogate candidates of Tables 1/2 for a given input shape.
inline std::vector<attack::Candidate> surrogate_candidates(
    const nn::Shape& input_shape, int num_classes) {
  std::vector<attack::Candidate> out;
  for (const apps::Arch arch : apps::all_archs()) {
    out.push_back(attack::Candidate{
        apps::arch_name(arch), [arch, input_shape, num_classes](
                                   std::uint64_t seed) {
          return apps::make_arch(arch, input_shape, num_classes, seed);
        }});
  }
  return out;
}

/// MCA training configuration used across benches.
inline attack::CloneConfig bench_clone_config() {
  attack::CloneConfig cfg;
  cfg.train.max_epochs = 10;
  cfg.train.learning_rate = 2e-3f;
  cfg.train.early_stop_patience = 3;
  return cfg;
}

/// Train one named surrogate on D_clone; returns the trained model and its
/// cloning accuracy.
struct TrainedSurrogate {
  nn::Model model;
  double cloning_accuracy = 0.0;
};
inline TrainedSurrogate train_surrogate(const data::Dataset& d_clone,
                                        const attack::Candidate& candidate,
                                        const attack::CloneConfig& cfg) {
  attack::CloneReport r = attack::clone_model(d_clone, {candidate}, cfg);
  return TrainedSurrogate{std::move(r.model), r.cloning_accuracy};
}

/// Benchmark-scale PRB corpus for the power-saving rApp (paper: 40 days).
inline data::Dataset bench_prb_corpus(int days = 24,
                                      std::uint64_t seed = 0xc17f) {
  rictest::CityTraceConfig cfg;
  cfg.days = days;
  cfg.seed = seed;
  return rictest::make_power_saving_dataset(cfg, 12, /*stride=*/4);
}

/// Train the Power-Saving rApp victim CNN.
inline nn::Model train_victim_ps(const data::Dataset& train,
                                 const data::Dataset& val,
                                 std::uint64_t seed = 21) {
  nn::Model victim = apps::make_power_saving_cnn(train.sample_shape(),
                                                 train.num_classes, seed);
  nn::TrainConfig cfg;
  cfg.max_epochs = 40;
  cfg.learning_rate = 5e-3f;
  cfg.early_stop_patience = 8;
  nn::Trainer trainer(cfg);
  trainer.fit(victim, train.x, train.y, val.x, val.y);
  return victim;
}

/// Write a CSV under ./bench_results/ (created on demand) and announce it.
inline void save_csv(const CsvWriter& csv, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const std::string path = "bench_results/" + name + ".csv";
  if (csv.save(path)) {
    std::printf("[csv] wrote %s\n", path.c_str());
  } else {
    std::printf("[csv] FAILED to write %s\n", path.c_str());
  }
}

inline void print_rule() {
  std::printf("-------------------------------------------------------------"
              "-----------------\n");
}

}  // namespace orev::bench
