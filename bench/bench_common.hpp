// Shared fixtures for the benchmark suite: the spectrogram/KPM/PRB corpora
// at benchmark scale, victim training, the five-candidate surrogate list,
// and table-printing helpers.
//
// Scale note: the paper trains ImageNet-class surrogates on GPUs over
// 3,000 RGB 128×128 spectrograms. The benchmarks run the same pipeline on
// one CPU core, so they default to 24×24 single-channel spectrograms and a
// few hundred samples; every bench accepts its sizes as constants below.
// Relative orderings (which surrogate clones best, UAP-vs-input-specific,
// timing ratios) are preserved; see DESIGN.md §1.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "apps/model_zoo.hpp"
#include "attack/clone.hpp"
#include "attack/metrics.hpp"
#include "attack/runner.hpp"
#include "attack/uap.hpp"
#include "data/dataset.hpp"
#include "ran/datasets.hpp"
#include "rictest/dataset.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace orev::bench {

/// Parse and strip a `--threads N` / `--threads=N` flag, configure the
/// global pool accordingly, and return the active thread count. With no
/// flag the pool keeps its default (OREV_NUM_THREADS or 1). The flag is
/// removed from argv so downstream parsers (e.g. google-benchmark) never
/// see it.
inline int parse_threads_flag(int& argc, char** argv) {
  int threads = -1;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--threads") == 0 && r + 1 < argc) {
      threads = std::atoi(argv[++r]);
    } else if (std::strncmp(argv[r], "--threads=", 10) == 0) {
      threads = std::atoi(argv[r] + 10);
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  if (threads > 0) util::set_num_threads(threads);
  std::printf("[threads] running with %d thread(s)\n", util::num_threads());
  return util::num_threads();
}

/// Monotonic wall-clock timer for CSV reporting.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The ε grid of Tables 1 and 2.
inline const std::vector<float> kEpsGrid = {0.05f, 0.1f, 0.2f, 0.3f, 0.5f};

/// Benchmark-scale spectrogram corpus (paper: 1,500 per class, 128×128).
inline ran::SpectrogramConfig bench_spectrogram_config() {
  ran::SpectrogramConfig cfg;
  cfg.freq_bins = 24;
  cfg.time_frames = 24;
  return cfg;
}

inline data::Dataset bench_spectrogram_corpus(int per_class = 180,
                                              std::uint64_t seed = 4242) {
  return ran::make_spectrogram_dataset(bench_spectrogram_config(), per_class,
                                       seed);
}

/// Train the Spectrogram IC xApp victim (BaseCNN) on a training split.
inline nn::Model train_victim_cnn(const data::Dataset& train,
                                  const data::Dataset& val,
                                  std::uint64_t seed = 11) {
  nn::Model victim = apps::make_base_cnn(train.sample_shape(),
                                         train.num_classes, seed);
  nn::TrainConfig cfg;
  cfg.max_epochs = 12;
  cfg.learning_rate = 2e-3f;
  cfg.early_stop_patience = 4;
  nn::Trainer trainer(cfg);
  trainer.fit(victim, train.x, train.y, val.x, val.y);
  return victim;
}

/// The five surrogate candidates of Tables 1/2 for a given input shape.
inline std::vector<attack::Candidate> surrogate_candidates(
    const nn::Shape& input_shape, int num_classes) {
  std::vector<attack::Candidate> out;
  for (const apps::Arch arch : apps::all_archs()) {
    out.push_back(attack::Candidate{
        apps::arch_name(arch), [arch, input_shape, num_classes](
                                   std::uint64_t seed) {
          return apps::make_arch(arch, input_shape, num_classes, seed);
        }});
  }
  return out;
}

/// MCA training configuration used across benches.
inline attack::CloneConfig bench_clone_config() {
  attack::CloneConfig cfg;
  cfg.train.max_epochs = 10;
  cfg.train.learning_rate = 2e-3f;
  cfg.train.early_stop_patience = 3;
  return cfg;
}

/// Train one named surrogate on D_clone; returns the trained model and its
/// cloning accuracy.
struct TrainedSurrogate {
  nn::Model model;
  double cloning_accuracy = 0.0;
};
inline TrainedSurrogate train_surrogate(const data::Dataset& d_clone,
                                        const attack::Candidate& candidate,
                                        const attack::CloneConfig& cfg) {
  attack::CloneReport r = attack::clone_model(d_clone, {candidate}, cfg);
  return TrainedSurrogate{std::move(r.model), r.cloning_accuracy};
}

/// Benchmark-scale PRB corpus for the power-saving rApp (paper: 40 days).
inline data::Dataset bench_prb_corpus(int days = 24,
                                      std::uint64_t seed = 0xc17f) {
  rictest::CityTraceConfig cfg;
  cfg.days = days;
  cfg.seed = seed;
  return rictest::make_power_saving_dataset(cfg, 12, /*stride=*/4);
}

/// Train the Power-Saving rApp victim CNN.
inline nn::Model train_victim_ps(const data::Dataset& train,
                                 const data::Dataset& val,
                                 std::uint64_t seed = 21) {
  nn::Model victim = apps::make_power_saving_cnn(train.sample_shape(),
                                                 train.num_classes, seed);
  nn::TrainConfig cfg;
  cfg.max_epochs = 40;
  cfg.learning_rate = 5e-3f;
  cfg.early_stop_patience = 8;
  nn::Trainer trainer(cfg);
  trainer.fit(victim, train.x, train.y, val.x, val.y);
  return victim;
}

/// Write a CSV under ./bench_results/ (created on demand) and announce it.
inline void save_csv(const CsvWriter& csv, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const std::string path = "bench_results/" + name + ".csv";
  if (csv.save(path)) {
    std::printf("[csv] wrote %s\n", path.c_str());
  } else {
    std::printf("[csv] FAILED to write %s\n", path.c_str());
  }
}

inline void print_rule() {
  std::printf("-------------------------------------------------------------"
              "-----------------\n");
}

}  // namespace orev::bench
