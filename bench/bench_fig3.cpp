// Figure 3 + §5.3.3 reproduction: wall-clock cost of generating a single
// input-specific perturbation, per PGM and per surrogate architecture,
// over 50 spectrograms — the evidence that iterative PGMs cannot meet the
// Near-RT RIC's sub-second window, and the missed-spectrogram fractions
// quoted for MobileNetV2 (64.5%) and DenseNet121 (87.5%).
//
// Uses google-benchmark for the per-PGM microbenchmarks, then prints the
// paper-style summary (mean seconds per perturbation, fraction of a
// spectrogram stream that would go unperturbed for a given window).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace orev;
using namespace orev::bench;

namespace {

struct Fixture {
  data::Dataset corpus;
  data::Split split;
  nn::Model victim;
  data::Dataset d_clone;
  std::vector<attack::Candidate> candidates;

  Fixture()
      : corpus(bench_spectrogram_corpus(120)),
        split([&] {
          Rng rng(1);
          return data::stratified_split(corpus, 0.7, rng);
        }()),
        victim(train_victim_cnn(split.train, split.test)),
        d_clone(attack::collect_clone_dataset(victim, split.train.x)),
        candidates(surrogate_candidates(corpus.sample_shape(), 2)) {}
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// Trained surrogate per architecture, cached.
nn::Model& surrogate(int arch_index) {
  static std::map<int, nn::Model> cache;
  auto it = cache.find(arch_index);
  if (it == cache.end()) {
    Fixture& f = fixture();
    TrainedSurrogate s = train_surrogate(
        f.d_clone, f.candidates[static_cast<std::size_t>(arch_index)],
        bench_clone_config());
    it = cache.emplace(arch_index, std::move(s.model)).first;
  }
  return it->second;
}

attack::PgmPtr make_pgm(int pgm_index, float eps) {
  switch (pgm_index) {
    case 0: return std::make_unique<attack::Fgsm>(eps);
    case 1: return std::make_unique<attack::Pgd>(eps, 10);
    case 2:
      return std::make_unique<attack::CarliniWagner>(2.0f, 0.05f, 40);
    default: return std::make_unique<attack::DeepFool>(30, 0.05f);
  }
}

const char* kPgmNames[] = {"FGSM", "PGD", "C&W", "DeepFool"};

void BM_SinglePerturbation(benchmark::State& state) {
  Fixture& f = fixture();
  nn::Model& sur = surrogate(static_cast<int>(state.range(0)));
  const attack::PgmPtr pgm =
      make_pgm(static_cast<int>(state.range(1)), 0.2f);
  const nn::Tensor sample = f.split.test.sample(0);
  const int label = sur.predict_one(sample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pgm->perturb(sur, sample, label));
  }
  state.SetLabel(std::string(apps::arch_name(
                     apps::all_archs()[static_cast<std::size_t>(
                         state.range(0))])) +
                 "/" + kPgmNames[state.range(1)]);
}

}  // namespace

BENCHMARK(BM_SinglePerturbation)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  orev::bench::ObsGuard obs_guard(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Paper-style summary: mean seconds per perturbation over 50 samples
  // and the fraction of a periodic spectrogram stream missed for a given
  // near-RT window.
  std::printf("\n=== Fig. 3 summary: mean time per perturbation (50 "
              "spectrograms) ===\n");
  Fixture& f = fixture();
  const data::Dataset timing_set = f.split.test.take(50);

  // Missed-spectrogram accounting. With spectrograms arriving every
  // `window` and a busy single-threaded generator, the fraction of the
  // stream left unperturbed is 1 - window/generation_time (this formula
  // recovers the paper's 64.5% for MobileNetV2 at 1.4058 s / 0.5 s and
  // 87.5% for DenseNet121 at 4 s / 0.5 s). Our substrate's absolute times
  // are far smaller, so the window is calibrated to preserve the paper's
  // MobileNet+FGSM generation/window ratio of 1.4058/0.5 ≈ 2.81.
  CsvWriter csv;
  csv.header({"surrogate", "pgm", "mean_ms", "max_ms", "missed_fraction"});
  double window_ms = 0.0;
  {
    attack::Fgsm probe(0.2f);
    const attack::BatchAttackResult r =
        attack::attack_batch(probe, surrogate(2), timing_set.x);  // MobileNet
    window_ms = r.mean_ms_per_sample / (1.4058 / 0.5);
  }
  std::printf("near-RT window for miss accounting: %.3f ms "
              "(calibrated to the paper's MobileNet ratio)\n",
              window_ms);
  print_rule();
  std::printf("%-12s %-10s %12s %12s %10s\n", "surrogate", "PGM",
              "mean ms", "max ms", "missed");
  print_rule();
  const auto archs = apps::all_archs();
  for (std::size_t a = 0; a < archs.size(); ++a) {
    for (int p = 0; p < 4; ++p) {
      const attack::PgmPtr pgm = make_pgm(p, 0.2f);
      const attack::BatchAttackResult r =
          attack::attack_batch(*pgm, surrogate(static_cast<int>(a)),
                               timing_set.x);
      // Fraction of a periodic stream left unperturbed by a busy
      // single-threaded generator.
      const double miss_fraction =
          r.mean_ms_per_sample > window_ms
              ? 1.0 - window_ms / r.mean_ms_per_sample
              : 0.0;
      std::printf("%-12s %-10s %12.3f %12.3f %9.1f%%\n",
                  apps::arch_name(archs[a]).c_str(), kPgmNames[p],
                  r.mean_ms_per_sample, r.max_ms_per_sample,
                  100.0 * miss_fraction);
      csv.row(apps::arch_name(archs[a]), kPgmNames[p], r.mean_ms_per_sample,
              r.max_ms_per_sample, miss_fraction);
    }
  }
  print_rule();
  std::printf("shape check: iterative PGMs (PGD/C&W/DeepFool) cost multiples "
              "of FGSM;\nnorm-unbounded methods are the slowest, C&W the most "
              "expensive — §5.3.3.\n");
  save_csv(csv, "fig3");
  return 0;
}
