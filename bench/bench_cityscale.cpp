// City-scale emulation benchmark (DESIGN.md §16): drives the sharded
// CitySim scheduler at ≥2000 cells / ≥100k UEs and reports
//
//   UEs/sec          — UE-epochs advanced per wall-second, and
//   indications/sec  — KPM frames emitted per wall-second,
//
// at each thread count in {1, 4}, asserting that the merged per-shard
// event digest is byte-identical across thread counts and across repeated
// passes — the determinism witness the CI smoke diffs. Digest lines print
// as `[digest] threads=T pass=P <hex>` so two runs can be compared with a
// grep + diff, independent of the (wall-clock-bearing) JSON report.
//
// Two further phases quantify the PR's data-plane claims:
//
//   codec — N KPM indications through a NearRtRic, round-robin over the
//   configured cell count, via three delivery paths: the historical
//   copy-in tensor path, the move-payload path (this PR), and the binary
//   e2_codec path (arena encode + deliver_kpm_frame +
//   write_tensor_inplace), counting heap allocations with an overridden
//   global operator new. The binary path must beat both tensor paths on
//   allocations AND throughput, and must reject a truncated /
//   bit-flipped / bad-magic probe frame.
//
//   sdl — the same parallel writer load against a 1-stripe and a
//   default-stripe Sdl, reporting stripe contentions and wall time (the
//   oran.sdl.lock_wait_ns histogram fills as a side effect; view it via
//   --metrics-out or bench_perf_report).
//
// `--report-out FILE` writes the JSON consumed as the committed
// BENCH_CITYSCALE_<date>.json baseline (diffed by
// bench_perf_report --cityscale-baseline). The 1M-UE configuration is
// exercised by `--ues 1000000 --epochs 2 --passes 1`.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "citysim/citysim.hpp"
#include "oran/e2_codec.hpp"
#include "oran/near_rt_ric.hpp"
#include "oran/onboarding.hpp"
#include "util/check.hpp"

// ------------------------------------------------------- allocation probe
//
// Counts every heap allocation in the process so the codec phase can
// report allocations per indication. Relaxed atomics: the codec loops are
// single-threaded; the counter only needs to not tear under the scale
// phase's worker threads.

static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace orev;
using namespace orev::bench;

// ------------------------------------------------------------ scale phase

/// Sink that CRC-verifies every delivered frame through the real decoder,
/// so the scale numbers include full decode cost on the consumer side.
class DecodeSink : public citysim::FrameSink {
 public:
  void on_frame(std::uint32_t /*shard*/, std::string_view frame) override {
    oran::KpmFrameView v;
    if (oran::decode_kpm_frame(frame, v) != oran::KpmDecodeStatus::kOk) {
      ++bad;
      return;
    }
    ++frames;
    bytes += frame.size();
    checksum += v.cell_id + v.tti;
  }
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t bad = 0;
  std::uint64_t checksum = 0;  // keeps the decode honest
};

struct ScaleRun {
  int threads = 0;
  int pass = 0;
  double wall_seconds = 0.0;
  double ue_epochs_per_sec = 0.0;
  double indications_per_sec = 0.0;
  citysim::CityStats stats;
  std::string event_digest;
  std::string state_digest;
};

ScaleRun run_scale(const citysim::CityConfig& cfg, int threads, int pass,
                   std::uint64_t epochs) {
  util::set_num_threads(threads);
  citysim::CitySim sim(cfg);
  DecodeSink sink;
  sim.set_sink(&sink);
  WallTimer t;
  sim.run_epochs(epochs);
  ScaleRun out;
  out.wall_seconds = t.seconds();
  out.threads = threads;
  out.pass = pass;
  out.stats = sim.stats();
  out.event_digest = sim.event_digest();
  out.state_digest = sim.state_digest();
  out.ue_epochs_per_sec = static_cast<double>(cfg.ues) *
                          static_cast<double>(epochs) / out.wall_seconds;
  out.indications_per_sec =
      static_cast<double>(out.stats.reports) / out.wall_seconds;
  OREV_CHECK(sink.bad == 0, "scale sink saw undecodable frames");
  OREV_CHECK(sink.frames == out.stats.frames_delivered,
             "sink frame count must match simulator accounting");
  std::printf(
      "[scale] threads=%d pass=%d wall=%.3fs  UEs/sec=%.3e  ind/sec=%.3e  "
      "events=%llu cross_handovers=%llu\n",
      threads, pass, out.wall_seconds, out.ue_epochs_per_sec,
      out.indications_per_sec,
      static_cast<unsigned long long>(out.stats.events),
      static_cast<unsigned long long>(out.stats.handovers_cross));
  std::printf("[digest] threads=%d pass=%d %s\n", threads, pass,
              out.event_digest.c_str());
  return out;
}

// ------------------------------------------------------------ codec phase

struct CodecSide {
  double wall_seconds = 0.0;
  double inds_per_sec = 0.0;
  double allocs_per_ind = 0.0;
};

struct RicFixture {
  oran::Rbac rbac;
  oran::Operator op{"op", "sec"};
  oran::OnboardingService svc{&op, &rbac};
  oran::NearRtRic ric{&rbac, &svc};
};

void fill_features(std::uint64_t i, std::span<float> f) {
  for (std::size_t j = 0; j < f.size(); ++j) {
    f[j] = static_cast<float>((i * 31 + j * 7) % 97) * 0.01f;
  }
}

enum class CodecMode { kCopy, kMove, kBinary };

/// One delivery loop at city shape: frames round-robin over `cells`
/// distinct cells, so per-message key/tensor churn is what it is in the
/// simulator, not what a single hot cell's allocator reuse makes it.
/// kCopy is the historical string/tensor path (payload copied into the
/// SDL), kMove the rvalue overload (satellite of this PR), kBinary the
/// arena-encoded e2_codec path.
CodecSide run_codec(CodecMode mode, std::uint64_t inds,
                    std::uint16_t features, std::uint32_t cells) {
  RicFixture fx;
  std::vector<float> feats(features);
  const nn::Shape shape{static_cast<int>(features)};
  oran::KpmFrameArena arena;
  auto one = [&](std::uint64_t i) {
    const std::uint32_t cell = static_cast<std::uint32_t>(i % cells);
    fill_features(i, feats);
    if (mode == CodecMode::kBinary) {
      const std::string_view frame =
          arena.encode(cell, i, oran::IndicationKind::kKpm,
                       std::span<const float>(feats));
      OREV_CHECK(fx.ric.deliver_kpm_frame(frame),
                 "binary delivery must succeed without faults");
      return;
    }
    oran::E2Indication ind;
    ind.ran_node_id = "cell-" + std::to_string(cell);
    ind.tti = i;
    ind.kind = oran::IndicationKind::kKpm;
    ind.payload = nn::Tensor(shape, feats);
    const bool ok = mode == CodecMode::kMove
                        ? fx.ric.deliver_indication(std::move(ind))
                        : fx.ric.deliver_indication(ind);
    OREV_CHECK(ok, "tensor delivery must succeed without faults");
  };
  for (std::uint64_t i = 0; i < 1000; ++i) one(i);  // warm SDL map + arena
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  WallTimer t;
  for (std::uint64_t i = 0; i < inds; ++i) one(i);
  CodecSide out;
  out.wall_seconds = t.seconds();
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  out.inds_per_sec = static_cast<double>(inds) / out.wall_seconds;
  out.allocs_per_ind =
      static_cast<double>(a1 - a0) / static_cast<double>(inds);
  return out;
}

/// Malformed-frame probe: truncation, a payload bit flip, and a bad magic
/// must all be rejected (counted, never dispatched).
std::uint64_t run_codec_rejects() {
  RicFixture fx;
  std::vector<float> feats(8);
  fill_features(3, feats);
  oran::KpmFrameArena arena;
  const std::string good(arena.encode(1, 1, oran::IndicationKind::kKpm,
                                      std::span<const float>(feats)));
  OREV_CHECK(fx.ric.deliver_kpm_frame(good), "probe baseline must deliver");

  std::string truncated = good.substr(0, good.size() - 3);
  OREV_CHECK(!fx.ric.deliver_kpm_frame(truncated),
             "truncated frame must be rejected");
  std::string flipped = good;
  flipped[oran::kKpmFrameHeaderBytes + 2] ^= 0x40;  // payload bit flip
  OREV_CHECK(!fx.ric.deliver_kpm_frame(flipped),
             "bit-flipped frame must fail CRC");
  std::string bad_magic = good;
  bad_magic[0] ^= 0xff;
  OREV_CHECK(!fx.ric.deliver_kpm_frame(bad_magic),
             "bad magic must be rejected");
  return fx.ric.frames_rejected();
}

// -------------------------------------------------------------- SDL phase

struct SdlRun {
  std::size_t stripes = 0;
  double wall_seconds = 0.0;
  double writes_per_sec = 0.0;
  std::uint64_t contentions = 0;
};

SdlRun run_sdl_contention(std::size_t stripes, int threads, int workers,
                          std::uint64_t writes_per_worker) {
  util::set_num_threads(threads);
  oran::Rbac rbac;
  rbac.define_role("bench-writer",
                   {oran::Permission{"*", /*read=*/true, /*write=*/true}});
  rbac.assign_role("bench", "bench-writer");
  oran::Sdl sdl(&rbac, stripes);

  // Payloads big enough (4 KB) that the copy under the stripe lock is the
  // longest pipeline stage — the regime striping exists for. Tiny payloads
  // serialize on the (global) audit ring instead and no stripe ever
  // contends.
  constexpr int kPayloadFloats = 1024;
  const nn::Shape shape{kPayloadFloats};
  std::vector<std::string> keys;
  std::vector<std::vector<float>> bufs;
  for (int w = 0; w < workers; ++w) {
    keys.push_back("cell-" + std::to_string(w));
    bufs.emplace_back(kPayloadFloats, static_cast<float>(w));
    // Pre-create the entries so the timed loop is pure in-place traffic.
    OREV_CHECK(sdl.write_tensor_inplace("bench", "telemetry/kpm", keys.back(),
                                        shape, std::span<const float>(
                                            bufs.back())) ==
                   oran::SdlStatus::kOk,
               "seed write must succeed");
  }

  WallTimer t;
  util::parallel_for(0, workers, 1, [&](std::int64_t w) {
    for (std::uint64_t i = 0; i < writes_per_worker; ++i) {
      bufs[w][0] = static_cast<float>(i);
      OREV_CHECK(sdl.write_tensor_inplace(
                     "bench", "telemetry/kpm", keys[w], shape,
                     std::span<const float>(bufs[w])) == oran::SdlStatus::kOk,
                 "bench write must succeed");
    }
  });
  SdlRun out;
  out.wall_seconds = t.seconds();
  out.stripes = stripes;
  out.contentions = sdl.total_contentions();
  out.writes_per_sec = static_cast<double>(workers) *
                       static_cast<double>(writes_per_worker) /
                       out.wall_seconds;
  std::printf("[sdl] stripes=%zu wall=%.3fs writes/sec=%.3e contentions=%llu\n",
              stripes, out.wall_seconds, out.writes_per_sec,
              static_cast<unsigned long long>(out.contentions));
  return out;
}

// ------------------------------------------------------------ JSON report

void write_report(const std::string& path, const citysim::CityConfig& cfg,
                  std::uint64_t epochs, int passes,
                  const std::vector<ScaleRun>& scale, bool byte_identical,
                  std::uint64_t codec_inds, const CodecSide& copy,
                  const CodecSide& move, const CodecSide& binary,
                  std::uint64_t rejects, const SdlRun& sdl_single,
                  const SdlRun& sdl_striped, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::printf("[report] FAILED to open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"orev-cityscale-bench-v1\",\n");
  std::fprintf(f,
               "  \"config\": {\"cells\": %u, \"ues\": %u, \"shards\": %u, "
               "\"epochs\": %llu, \"passes\": %d, \"features\": %u, "
               "\"seed\": %llu},\n",
               cfg.cells, cfg.ues, cfg.shards,
               static_cast<unsigned long long>(epochs), passes, cfg.features,
               static_cast<unsigned long long>(cfg.seed));
  std::fprintf(f, "  \"scale\": [\n");
  for (std::size_t i = 0; i < scale.size(); ++i) {
    const ScaleRun& r = scale[i];
    std::fprintf(
        f,
        "    {\"threads\": %d, \"pass\": %d, \"wall_seconds\": %.6f, "
        "\"ue_epochs_per_sec\": %.1f, \"indications_per_sec\": %.1f, "
        "\"events\": %llu, \"reports\": %llu, \"handovers_cross\": %llu, "
        "\"event_digest\": \"%s\"}%s\n",
        r.threads, r.pass, r.wall_seconds, r.ue_epochs_per_sec,
        r.indications_per_sec, static_cast<unsigned long long>(r.stats.events),
        static_cast<unsigned long long>(r.stats.reports),
        static_cast<unsigned long long>(r.stats.handovers_cross),
        r.event_digest.c_str(), i + 1 < scale.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"determinism\": {\"byte_identical\": %s, "
               "\"event_digest\": \"%s\", \"state_digest\": \"%s\"},\n",
               byte_identical ? "true" : "false",
               scale.empty() ? "" : scale.front().event_digest.c_str(),
               scale.empty() ? "" : scale.front().state_digest.c_str());
  std::fprintf(
      f,
      "  \"codec\": {\"indications\": %llu,\n"
      "    \"copy\": {\"wall_seconds\": %.6f, \"inds_per_sec\": %.1f, "
      "\"allocs_per_ind\": %.3f},\n"
      "    \"move\": {\"wall_seconds\": %.6f, \"inds_per_sec\": %.1f, "
      "\"allocs_per_ind\": %.3f},\n"
      "    \"binary\": {\"wall_seconds\": %.6f, \"inds_per_sec\": %.1f, "
      "\"allocs_per_ind\": %.3f},\n"
      "    \"alloc_win\": %s, \"throughput_vs_copy\": %.3f, "
      "\"throughput_vs_move\": %.3f, \"frames_rejected\": %llu},\n",
      static_cast<unsigned long long>(codec_inds), copy.wall_seconds,
      copy.inds_per_sec, copy.allocs_per_ind, move.wall_seconds,
      move.inds_per_sec, move.allocs_per_ind, binary.wall_seconds,
      binary.inds_per_sec, binary.allocs_per_ind,
      binary.allocs_per_ind < move.allocs_per_ind ? "true" : "false",
      binary.inds_per_sec / copy.inds_per_sec,
      binary.inds_per_sec / move.inds_per_sec,
      static_cast<unsigned long long>(rejects));
  std::fprintf(
      f,
      "  \"sdl\": {\n"
      "    \"single_stripe\": {\"stripes\": %zu, \"wall_seconds\": %.6f, "
      "\"writes_per_sec\": %.1f, \"contentions\": %llu},\n"
      "    \"striped\": {\"stripes\": %zu, \"wall_seconds\": %.6f, "
      "\"writes_per_sec\": %.1f, \"contentions\": %llu}},\n",
      sdl_single.stripes, sdl_single.wall_seconds, sdl_single.writes_per_sec,
      static_cast<unsigned long long>(sdl_single.contentions),
      sdl_striped.stripes, sdl_striped.wall_seconds,
      sdl_striped.writes_per_sec,
      static_cast<unsigned long long>(sdl_striped.contentions));
  std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(f);
  std::printf("[report] wrote %s\n", path.c_str());
}

std::uint64_t flag_u64(int& argc, char** argv, const char* name,
                       std::uint64_t fallback) {
  const std::size_t len = std::strlen(name);
  std::uint64_t value = fallback;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], name) == 0 && r + 1 < argc) {
      value = std::strtoull(argv[++r], nullptr, 0);
    } else if (std::strncmp(argv[r], name, len) == 0 &&
               argv[r][len] == '=') {
      value = std::strtoull(argv[r] + len + 1, nullptr, 0);
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return value;
}

std::string flag_str(int& argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  std::string value;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], name) == 0 && r + 1 < argc) {
      value = argv[++r];
    } else if (std::strncmp(argv[r], name, len) == 0 &&
               argv[r][len] == '=') {
      value = argv[r] + len + 1;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  const int base_threads = parse_threads_flag(argc, argv);

  citysim::CityConfig cfg;
  cfg.cells = static_cast<std::uint32_t>(
      flag_u64(argc, argv, "--cells", cfg.cells));
  cfg.ues =
      static_cast<std::uint32_t>(flag_u64(argc, argv, "--ues", cfg.ues));
  cfg.shards = static_cast<std::uint32_t>(
      flag_u64(argc, argv, "--shards", cfg.shards));
  cfg.seed = flag_u64(argc, argv, "--seed", cfg.seed);
  const std::uint64_t epochs = flag_u64(argc, argv, "--epochs", 10);
  const int passes =
      static_cast<int>(flag_u64(argc, argv, "--passes", 2));
  const std::uint64_t codec_inds =
      flag_u64(argc, argv, "--codec-inds", 20000);
  const std::uint64_t sdl_writes =
      flag_u64(argc, argv, "--sdl-writes", 20000);
  const std::string report_out = flag_str(argc, argv, "--report-out");

  std::printf("=== City-scale emulation: %u cells, %u UEs, %u shards, "
              "%llu epochs, %d pass(es) ===\n",
              cfg.cells, cfg.ues, cfg.shards,
              static_cast<unsigned long long>(epochs), passes);

  // ----- scale + determinism ------------------------------------------------
  std::vector<ScaleRun> scale;
  for (int p = 0; p < passes; ++p) {
    for (const int threads : {1, 4}) {
      scale.push_back(run_scale(cfg, threads, p, epochs));
    }
  }
  bool byte_identical = true;
  for (const ScaleRun& r : scale) {
    byte_identical = byte_identical &&
                     r.event_digest == scale.front().event_digest &&
                     r.state_digest == scale.front().state_digest;
  }
  std::printf("[determinism] digests byte-identical across %zu runs: %s\n",
              scale.size(), byte_identical ? "yes" : "NO");

  // ----- codec comparison ---------------------------------------------------
  // The codec claim is a city-scale claim: at a handful of hot cells the
  // tensor path's allocator reuse flatters it. Rotate over at least the
  // 2000-cell acceptance floor even when the scale phase runs reduced.
  util::set_num_threads(base_threads > 0 ? base_threads : 1);
  const std::uint32_t codec_cells = std::max<std::uint32_t>(cfg.cells, 2000);
  // Best-of-3, modes interleaved: each side's number is its best run, so a
  // scheduler hiccup in one rep can't decide the comparison.
  CodecSide copy;
  CodecSide move;
  CodecSide binary;
  for (int rep = 0; rep < 3; ++rep) {
    auto best = [](CodecSide& acc, const CodecSide& r) {
      if (acc.inds_per_sec == 0.0 || r.inds_per_sec > acc.inds_per_sec)
        acc = r;
    };
    best(copy, run_codec(CodecMode::kCopy, codec_inds, cfg.features,
                         codec_cells));
    best(move, run_codec(CodecMode::kMove, codec_inds, cfg.features,
                         codec_cells));
    best(binary, run_codec(CodecMode::kBinary, codec_inds, cfg.features,
                           codec_cells));
  }
  const std::uint64_t rejects = run_codec_rejects();
  const bool alloc_win = binary.allocs_per_ind < move.allocs_per_ind &&
                         binary.allocs_per_ind < copy.allocs_per_ind;
  const bool tput_win = binary.inds_per_sec > copy.inds_per_sec &&
                        binary.inds_per_sec > move.inds_per_sec;
  std::printf("[codec] copy:   %.3e ind/sec, %.2f allocs/ind\n",
              copy.inds_per_sec, copy.allocs_per_ind);
  std::printf("[codec] move:   %.3e ind/sec, %.2f allocs/ind\n",
              move.inds_per_sec, move.allocs_per_ind);
  std::printf("[codec] binary: %.3e ind/sec, %.2f allocs/ind  "
              "(alloc win %s, x%.2f vs copy, x%.2f vs move, "
              "rejected probes %llu/3)\n",
              binary.inds_per_sec, binary.allocs_per_ind,
              alloc_win ? "yes" : "NO",
              binary.inds_per_sec / copy.inds_per_sec,
              binary.inds_per_sec / move.inds_per_sec,
              static_cast<unsigned long long>(rejects));

  // ----- SDL stripe contention ---------------------------------------------
  const SdlRun sdl_single =
      run_sdl_contention(/*stripes=*/1, /*threads=*/4, /*workers=*/8,
                         sdl_writes);
  const SdlRun sdl_striped =
      run_sdl_contention(oran::Sdl::kDefaultStripes, /*threads=*/4,
                         /*workers=*/8, sdl_writes);
  util::set_num_threads(base_threads > 0 ? base_threads : 1);

  // ----- verdict ------------------------------------------------------------
  const bool pass = byte_identical && alloc_win && tput_win && rejects == 3;
  print_rule();
  std::printf("cityscale bench: %s\n", pass ? "PASS" : "FAIL");
  if (!report_out.empty()) {
    write_report(report_out, cfg, epochs, passes, scale, byte_identical,
                 codec_inds, copy, move, binary, rejects, sdl_single,
                 sdl_striped, pass);
  }
  return pass ? 0 : 1;
}
