// Figure 6 reproduction: targeted attacks on the Power-Saving rApp at
// ε = 0.5 over ~500 prediction samples — (a) TASR and (b) NTASR for
// input-specific PGD, input-specific FGSM and the targeted UAP (TUP),
// per surrogate — plus the §6.3.2 scalability comparison: PGD needs
// minutes for the batch (29.75 min in the paper) while the precomputed
// TUP applies instantly.
#include <chrono>

#include "bench_common.hpp"

using namespace orev;
using namespace orev::bench;

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  std::printf("=== Figure 6: PGD vs FGSM vs TUP on the Power-Saving rApp "
              "(eps = 0.5) ===\n");
  const int target = static_cast<int>(rictest::kMostDisruptiveAction);

  data::Dataset corpus = bench_prb_corpus();
  Rng rng(3);
  data::Split split = data::stratified_split(corpus, 0.7, rng);
  nn::Model victim = train_victim_ps(split.train, split.test);
  const data::Dataset d_clone =
      attack::collect_clone_dataset(victim, split.train.x);
  const data::Dataset attack_set =
      split.test.take(std::min(500, split.test.size()));
  std::printf("attack set: %d samples\n", attack_set.size());

  attack::CloneConfig ccfg;
  ccfg.train.max_epochs = 30;
  ccfg.train.learning_rate = 5e-3f;
  ccfg.train.early_stop_patience = 6;

  CsvWriter csv;
  csv.header({"surrogate", "method", "tasr", "ntasr", "apd",
              "batch_seconds"});

  const std::vector<apps::Arch> surrogates = {
      apps::Arch::kDenseNet, apps::Arch::kMobileNet, apps::Arch::kOneLayer};

  for (const apps::Arch arch : surrogates) {
    attack::Candidate cand{
        apps::arch_name(arch), [&](std::uint64_t seed) {
          return apps::make_arch(arch, corpus.sample_shape(),
                                 corpus.num_classes, seed);
        }};
    TrainedSurrogate sur = train_surrogate(d_clone, cand, ccfg);
    std::printf("\nsurrogate %s (cloning accuracy %.3f)\n",
                cand.name.c_str(), sur.cloning_accuracy);
    print_rule();

    // Input-specific targeted PGD and FGSM, timed over the whole batch.
    struct Method {
      const char* name;
      attack::PgmPtr pgm;
    };
    Method methods[2] = {
        {"PGD", std::make_unique<attack::Pgd>(0.5f, 10)},
        {"FGSM", std::make_unique<attack::Fgsm>(0.5f)},
    };
    for (Method& m : methods) {
      const attack::BatchAttackResult batch =
          attack::attack_batch(*m.pgm, sur.model, attack_set.x, target);
      const attack::AttackMetrics metrics = attack::evaluate_attack(
          victim, attack_set.x, batch.adversarial, attack_set.y, target);
      const double batch_s =
          batch.mean_ms_per_sample * attack_set.size() / 1000.0;
      std::printf("  %-6s TASR %5.1f%%  NTASR %5.1f%%  APD %.2f  batch "
                  "time %.2f s\n",
                  m.name, 100.0 * metrics.tasr, 100.0 * metrics.ntasr,
                  metrics.apd, batch_s);
      csv.row(cand.name, m.name, 100.0 * metrics.tasr,
              100.0 * metrics.ntasr, metrics.apd, batch_s);
    }

    // TUP: precompute once, apply to the whole batch instantly.
    attack::UapConfig ucfg;
    ucfg.eps = 0.5f;
    ucfg.target_fooling = 0.95;
    ucfg.max_passes = 5;
    ucfg.min_confidence = 0.8f;
    ucfg.robust_draws = 3;
    ucfg.robust_noise = 0.1f;
    attack::DeepFool inner(30, 0.1f);
    const attack::UapResult tup = attack::generate_targeted_uap(
        sur.model, d_clone.take(250).x, inner, target, ucfg);
    const auto t0 = std::chrono::steady_clock::now();
    const nn::Tensor x_adv = attack::apply_uap(attack_set.x,
                                               tup.perturbation);
    const auto t1 = std::chrono::steady_clock::now();
    const double apply_s =
        std::chrono::duration<double>(t1 - t0).count();
    const attack::AttackMetrics metrics = attack::evaluate_attack(
        victim, attack_set.x, x_adv, attack_set.y, target);
    std::printf("  %-6s TASR %5.1f%%  NTASR %5.1f%%  APD %.2f  batch "
                "apply time %.4f s (precomputed)\n",
                "TUP", 100.0 * metrics.tasr, 100.0 * metrics.ntasr,
                metrics.apd, apply_s);
    csv.row(cand.name, "TUP", 100.0 * metrics.tasr, 100.0 * metrics.ntasr,
            metrics.apd, apply_s);
  }

  std::printf("\nshape check: PGD achieves the top TASR but needs the whole "
              "batch's generation time\n(the paper measures 29.75 minutes "
              "for 500 cells); the precomputed TUP applies in\nmilliseconds "
              "— the §6.3.2 scalability argument.\n");
  save_csv(csv, "fig6");
  return 0;
}
