// Figure 4 reproduction.
//   (a) White-box vs black-box attack on the Spectrogram IC xApp: victim
//       accuracy vs ε when the perturbation is generated on the victim
//       itself (white-box) vs on the cloned surrogate (black-box).
//       Paper shape: the black-box curve tracks the white-box curve with
//       only a small ε offset (~0.09 in the paper).
//   (b) Black-box attack on the KPM-based IC xApp: input-specific vs UAP
//       accuracy and APD vs ε. Paper shape: the input-specific attack is
//       stronger at a given ε but with substantially higher APD; the UAP
//       succeeds at small APD.
#include "bench_common.hpp"

using namespace orev;
using namespace orev::bench;

int main(int argc, char** argv) {
  ObsGuard obs_guard(argc, argv);
  CsvWriter csv;
  csv.header({"panel", "mode", "eps", "victim_accuracy", "apd"});

  // ---------------------------------------------------------- panel (a)
  std::printf("=== Figure 4(a): white-box vs black-box (spectrogram xApp) "
              "===\n");
  {
    data::Dataset corpus = bench_spectrogram_corpus();
    Rng rng(1);
    data::Split split = data::stratified_split(corpus, 0.7, rng);
    nn::Model victim = train_victim_cnn(split.train, split.test);
    const data::Dataset d_clone =
        attack::collect_clone_dataset(victim, split.train.x);
    TrainedSurrogate sur = train_surrogate(
        d_clone, surrogate_candidates(corpus.sample_shape(), 2)[1],
        bench_clone_config());  // DenseNet
    std::printf("surrogate cloning accuracy: %.3f\n", sur.cloning_accuracy);

    const data::Dataset attack_set = split.test.take(80);
    print_rule();
    std::printf("%-6s %-22s %-22s\n", "eps", "white-box acc/apd",
                "black-box acc/apd");
    print_rule();
    for (const float eps : kEpsGrid) {
      attack::Fgsm fgsm(eps);
      // White-box: gradients from the victim itself.
      const attack::BatchAttackResult wb =
          attack::attack_batch(fgsm, victim, attack_set.x);
      const attack::AttackMetrics mw = attack::evaluate_attack(
          victim, attack_set.x, wb.adversarial, attack_set.y);
      // Black-box: gradients from the surrogate.
      const attack::BatchAttackResult bb =
          attack::attack_batch(fgsm, sur.model, attack_set.x);
      const attack::AttackMetrics mb = attack::evaluate_attack(
          victim, attack_set.x, bb.adversarial, attack_set.y);
      std::printf("%-6.2f %.3f / %-14.3f %.3f / %-14.3f\n", eps, mw.accuracy,
                  mw.apd, mb.accuracy, mb.apd);
      csv.row("a", "white-box", eps, mw.accuracy, mw.apd);
      csv.row("a", "black-box", eps, mb.accuracy, mb.apd);
    }
    print_rule();
  }

  // ---------------------------------------------------------- panel (b)
  std::printf("\n=== Figure 4(b): black-box attack on the KPM-based IC xApp "
              "===\n");
  {
    // KPM corpus (§A.5: 2,910 instances; the victim trains at 0.979 and
    // the surrogate clones at 0.977 in the paper).
    const ran::KpmDatasetResult kd =
        ran::make_kpm_dataset(ran::UplinkConfig{}, 400, 7);
    Rng rng(2);
    data::Split split = data::stratified_split(kd.dataset, 0.7, rng);

    nn::Model victim =
        apps::make_kpm_dnn(ran::KpmRecord::kFeatureCount, 2, 31);
    nn::TrainConfig tcfg;
    tcfg.max_epochs = 25;
    tcfg.learning_rate = 5e-3f;
    nn::Trainer(tcfg).fit(victim, split.train.x, split.train.y, split.test.x,
                          split.test.y);
    const nn::EvalResult clean =
        nn::evaluate(victim, split.test.x, split.test.y);
    std::printf("KPM victim clean accuracy: %.3f\n", clean.accuracy);

    const data::Dataset d_clone =
        attack::collect_clone_dataset(victim, split.train.x);
    attack::CloneConfig ccfg;
    ccfg.train.max_epochs = 25;
    ccfg.train.learning_rate = 5e-3f;
    TrainedSurrogate sur = train_surrogate(
        d_clone,
        attack::Candidate{"KPM-DNN",
                          [](std::uint64_t s) {
                            return apps::make_kpm_dnn(
                                ran::KpmRecord::kFeatureCount, 2, s);
                          }},
        ccfg);
    std::printf("KPM surrogate cloning accuracy: %.3f\n",
                sur.cloning_accuracy);

    const data::Dataset attack_set = split.test.take(120);
    attack::UapConfig ubase;
    ubase.target_fooling = 0.95;
    ubase.max_passes = 5;
    ubase.min_confidence = 0.9f;
    ubase.robust_draws = 3;
    ubase.robust_noise = 0.1f;
    const auto sweep = attack::epsilon_sweep(
        victim, sur.model, attack_set.x, attack_set.y, kEpsGrid, ubase,
        /*target_class=*/-1, d_clone.take(200).x);

    print_rule();
    std::printf("%-6s %-24s %-24s\n", "eps", "input-specific acc/apd",
                "UAP acc/apd");
    print_rule();
    for (const auto& p : sweep) {
      std::printf("%-6.2f %.3f / %-16.3f %.3f / %-16.3f\n", p.eps,
                  p.input_specific.accuracy, p.input_specific.apd,
                  p.uap.accuracy, p.uap.apd);
      csv.row("b", "input-specific", p.eps, p.input_specific.accuracy,
              p.input_specific.apd);
      csv.row("b", "uap", p.eps, p.uap.accuracy, p.uap.apd);
    }
    print_rule();
  }

  save_csv(csv, "fig4");
  return 0;
}
