// Chaos benchmark (DESIGN.md §9): drives the closed near-RT loop and the
// non-RT PM pipeline under a deterministic FaultPlan, twice — once with the
// recovery layer armed (retries + fallback + circuit breaker + source
// retransmission) and once with it disabled — and reports loop
// availability, informed-control rate, fail-safe rate, and recovery
// behaviour. Every reported field derives from the seeded fault streams,
// so two runs with the same plan/seed produce byte-identical reports
// (the property the CI chaos-smoke step diffs).
//
// Flags (chaos-specific, parsed before ObsGuard):
//   --fault-plan FILE   fault schedule (default: the committed chaos plan)
//   --fault-seed N      override the plan's seed
//   --iters N           near-RT loop iterations (default 4000)
//   --periods N         non-RT PM periods (default 120)
//   --report-out FILE   deterministic JSON report
//                       (default bench_results/chaos_report.json)
// plus the usual --metrics-out/--trace-out via ObsGuard.
#include "bench_common.hpp"

#include "apps/ic_xapp.hpp"
#include "apps/power_saving_rapp.hpp"
#include "citysim/citysim.hpp"
#include "nn/blocks.hpp"
#include "nn/layers.hpp"
#include "oran/near_rt_ric.hpp"
#include "oran/non_rt_ric.hpp"
#include "rictest/emulator.hpp"
#include "serve/engine.hpp"

using namespace orev;
using namespace orev::bench;

namespace {

/// A 2-feature IC model: interference iff feature0 < 0.5 (low SINR).
/// Hand-set weights keep the bench independent of training time.
nn::Model tiny_ic_model() {
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Dense>(2, 2);
  nn::Model m("TinyIc", std::move(seq), {2}, 2);
  std::vector<nn::Tensor> w;
  w.push_back(nn::Tensor({2, 2}, {8.0f, 0.0f, -8.0f, 0.0f}));
  w.push_back(nn::Tensor({2}, {-4.0f, 4.0f}));
  m.set_weights(w);
  return m;
}

class SinkE2Node : public oran::E2Node {
 public:
  void handle_control(const oran::E2Control& /*c*/) override { ++controls_; }
  std::string node_id() const override { return "ran-1"; }
  std::uint64_t controls() const { return controls_; }

 private:
  std::uint64_t controls_ = 0;
};

struct NearRtResult {
  std::uint64_t iters = 0;
  std::uint64_t served = 0;        // iterations where any control arrived
  std::uint64_t informed = 0;      // classification-based control
  std::uint64_t fallbacks = 0;     // of informed: from cached telemetry
  std::uint64_t failsafes = 0;     // fail-safe adaptive-MCS controls
  std::uint64_t retransmissions = 0;
  std::uint64_t outages = 0;       // maximal runs of unserved iterations
  std::uint64_t longest_outage = 0;
  std::uint64_t indications_dropped = 0;
  std::uint64_t xapp_faults = 0;
  std::uint64_t quarantined_skips = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t sdl_write_failures = 0;
  std::uint64_t controls_dropped = 0;
  std::uint64_t controls_failed = 0;
  std::uint64_t telemetry_failures = 0;
  std::uint64_t serve_degraded = 0;   // engine degraded-sync completions
  std::uint64_t serve_shed = 0;       // classifications shed by the engine
  std::uint64_t defense_screened = 0; // rows through the inline screen
  std::uint64_t defense_flagged = 0;  // rows quarantined by the screen
  std::uint64_t review_passes = 0;    // quarantine review passes that ran
  std::uint64_t swap_attempts = 0;    // periodic hot-swap attempts
  std::uint64_t swaps_accepted = 0;
  std::uint64_t swaps_rejected = 0;   // includes fault-refused attempts
  std::string injector_stats;

  double availability() const {
    return iters == 0 ? 0.0
                      : static_cast<double>(served) /
                            static_cast<double>(iters);
  }
  double informed_rate() const {
    return iters == 0 ? 0.0
                      : static_cast<double>(informed) /
                            static_cast<double>(iters);
  }
};

/// One near-RT chaos run: `iters` KPM indications through a NearRtRic
/// hosting the IC xApp, under `plan`. With `recover` the full recovery
/// layer is armed (bounded retries, degraded-mode fallback, and up to two
/// source retransmissions when no control returns); without it every
/// fault is terminal for its iteration.
NearRtResult run_near_rt(const fault::FaultPlan& plan, bool recover,
                         std::uint64_t iters) {
  oran::Rbac rbac;
  oran::Operator op("op", "sec");
  oran::OnboardingService svc(&op, &rbac);
  rbac.define_role("ic-xapp",
                   {oran::Permission{"telemetry/*", true, false},
                    oran::Permission{"decisions", true, true},
                    oran::Permission{"e2/control", false, true}});
  oran::AppDescriptor d;
  d.name = "ic";
  d.version = "1";
  d.vendor = "v";
  d.payload = "p";
  d.requested_role = "ic-xapp";
  const std::string ic_id = svc.onboard(op.package(d)).app_id;

  oran::NearRtRic ric(&rbac, &svc, /*control_window_ms=*/1000.0);
  SinkE2Node node;
  ric.connect_e2(&node);

  fault::FaultInjector injector(plan);
  ric.set_fault_injector(&injector);
  fault::RetryPolicy policy;
  policy.max_attempts = recover ? 4 : 1;
  ric.set_retry_policy(policy);

  auto app = std::make_shared<apps::IcXApp>(tiny_ic_model(),
                                            oran::IndicationKind::kKpm, 13);
  apps::IcDegradedConfig dcfg;
  dcfg.enabled = recover;
  dcfg.max_stale = 2;
  app->set_degraded_config(dcfg);
  OREV_CHECK(ric.register_xapp(app, ic_id, 10), "IC xApp must register");

  // Serving path under chaos: classifications route through a ServeEngine
  // drawing from the same injector, so the plan's serve.admit/serve.batch
  // sites shed or degrade real requests. The drain after each delivery
  // keeps the control inside its iteration (batch-of-one, but the full
  // admission → batch → completion pipeline runs for every request).
  serve::ServeConfig scfg;
  scfg.name = recover ? "chaosic" : "chaosicraw";
  scfg.batch_max = 4;
  // Closed-loop surfaces under chaos: the defense plane screens every
  // served row and its review cadence draws the defense.review site (a
  // transient fault defers the pass, never loses records), while a
  // periodic same-weights hot-swap attempt draws the serve.swap site (a
  // transient fault refuses the swap and the fleet keeps serving — the
  // operational rollback path). The profile calibrates on both telemetry
  // patterns so screening is live without quarantining the clean,
  // deterministic chaos traffic.
  scfg.defense.enable = true;
  scfg.defense.review_every = 64;
  scfg.swap.enable = true;
  serve::ServeEngine engine(tiny_ic_model(), scfg);
  engine.set_fault_injector(&injector);
  engine.defense()->calibrate(nn::Tensor(
      {4, 2}, {0.1f, 0.9f, 0.9f, 0.1f, 0.1f, 0.9f, 0.9f, 0.1f}));
  app->set_serve_engine(&engine);
  const nn::Tensor swap_probe({2, 2}, {0.1f, 0.9f, 0.9f, 0.1f});
  const std::vector<int> swap_labels = tiny_ic_model().predict(swap_probe);

  NearRtResult out;
  out.iters = iters;
  std::uint64_t current_outage = 0;
  const int max_transmissions = recover ? 3 : 1;
  for (std::uint64_t t = 0; t < iters; ++t) {
    oran::E2Indication ind;
    ind.ran_node_id = "ran-1";
    ind.tti = t;
    ind.kind = oran::IndicationKind::kKpm;
    // A rare anomalous indication (far outside the calibrated profile)
    // keeps the quarantine ring non-empty so the review cadence actually
    // runs passes — and draws the defense.review fault site. The xApp
    // answers each quarantined row with a fail-safe control, so the
    // iteration still counts as served.
    const bool anomalous = t % 97 == 0;
    const float sinr = t % 2 == 0 ? 0.1f : 0.9f;
    ind.payload = anomalous
                      ? nn::Tensor({2}, std::vector<float>{4.0f, -3.0f})
                      : nn::Tensor({2}, std::vector<float>{sinr, 1.0f - sinr});

    // The RAN side retransmits (bounded) when no control comes back
    // within the window — the loop-level recovery a real node performs.
    const std::uint64_t controls_before = node.controls();
    const std::uint64_t informed_before = app->predictions_made();
    const std::uint64_t fallback_before = app->fallback_classifications();
    const std::uint64_t failsafe_before = app->failsafe_controls();
    for (int tx = 0; tx < max_transmissions; ++tx) {
      if (tx > 0) ++out.retransmissions;
      ric.deliver_indication(ind);
      engine.drain();
      if (node.controls() > controls_before) break;
    }

    const bool served = node.controls() > controls_before;
    if (served) {
      ++out.served;
      if (current_outage > 0) {
        ++out.outages;
        out.longest_outage = std::max(out.longest_outage, current_outage);
        current_outage = 0;
      }
      if (app->predictions_made() > informed_before) ++out.informed;
      out.fallbacks += app->fallback_classifications() - fallback_before;
      out.failsafes += app->failsafe_controls() - failsafe_before;
    } else {
      ++current_outage;
    }

    // Every 1000 iterations, attempt a gated hot-swap of a candidate
    // with identical weights: the gate metrics are trivially clean
    // (delta 0), so every refusal is the serve.swap fault path.
    if ((t + 1) % 1000 == 0) {
      ++out.swap_attempts;
      engine.request_hot_swap(tiny_ic_model(), swap_probe, swap_labels);
    }
  }
  if (current_outage > 0) {
    ++out.outages;
    out.longest_outage = std::max(out.longest_outage, current_outage);
  }

  const oran::XAppDispatchStats& s = ric.stats_of(ic_id);
  out.indications_dropped = ric.indications_dropped();
  out.xapp_faults = s.faults;
  out.quarantined_skips = s.quarantined_skips;
  out.breaker_opens = ric.breaker_opens(ic_id);
  out.sdl_write_failures = ric.sdl_write_failures();
  out.controls_dropped = ric.controls_dropped();
  out.controls_failed = ric.controls_failed();
  out.telemetry_failures = app->telemetry_failures();
  out.serve_degraded = engine.slo().degraded_syncs;
  out.serve_shed = app->serve_shed();
  out.defense_screened = engine.defense()->screened();
  out.defense_flagged = engine.defense()->flagged();
  out.review_passes = engine.defense()->review_passes();
  out.swaps_accepted = engine.swaps_accepted();
  out.swaps_rejected = engine.swaps_rejected();
  out.injector_stats = injector.stats_json();
  return out;
}

struct NonRtResult {
  std::uint64_t periods = 0;
  std::uint64_t decided = 0;        // periods with fresh-history decisions
  std::uint64_t fallbacks = 0;      // periods decided from cached history
  std::uint64_t failsafes = 0;      // periods skipped fail-safe
  std::uint64_t collect_failures = 0;
  std::uint64_t publish_failures = 0;
  std::uint64_t rapp_faults = 0;
  std::uint64_t policies_sent = 0;
  std::uint64_t policies_delivered = 0;
  std::uint64_t serve_degraded = 0;   // engine degraded-sync completions
  std::uint64_t serve_shed = 0;       // sector decisions shed by the engine
  std::string injector_stats;

  double decision_availability() const {
    return periods == 0
               ? 0.0
               : static_cast<double>(decided + fallbacks) /
                     static_cast<double>(periods);
  }
};

/// One non-RT chaos run: `periods` PM periods through a NonRtRic hosting
/// the power-saving rApp on the RICTest emulator, plus one A1 policy push
/// per period toward a Near-RT RIC instance.
NonRtResult run_non_rt(const fault::FaultPlan& plan, bool recover,
                       std::uint64_t periods) {
  oran::Rbac rbac;
  oran::Operator op("op", "sec");
  oran::OnboardingService svc(&op, &rbac);
  rbac.define_role("ps-rapp",
                   {oran::Permission{"pm", true, false},
                    oran::Permission{"rapp-decisions", true, true},
                    oran::Permission{"o1/cell-control", false, true}});
  oran::AppDescriptor d;
  d.name = "ps";
  d.version = "1";
  d.vendor = "v";
  d.payload = "p";
  d.type = oran::AppType::kRApp;
  d.requested_role = "ps-rapp";
  const std::string ps_id = svc.onboard(op.package(d)).app_id;

  oran::NonRtRic ric(&rbac, &svc, /*history_window=*/12);
  rictest::Emulator emulator{rictest::EmulatorConfig{}};
  ric.connect_o1(&emulator);

  fault::FaultInjector injector(plan);
  ric.set_fault_injector(&injector);
  fault::RetryPolicy policy;
  policy.max_attempts = recover ? 4 : 1;
  ric.set_retry_policy(policy);

  // The downstream Near-RT RIC receiving the A1 pushes stays fault-free;
  // only the A1 transport between the two is on the plan.
  oran::NearRtRic near(&rbac, &svc, 1000.0);

  // Untrained (seeded) model: decision *quality* is not under test here,
  // only whether the loop keeps producing decisions under faults.
  auto app = std::make_shared<apps::PowerSavingRApp>(
      apps::make_power_saving_cnn({1, 12, 9}, 6, 21));
  apps::PsDegradedConfig dcfg;
  dcfg.enabled = recover;
  dcfg.max_stale = 1;
  app->set_degraded_config(dcfg);
  OREV_CHECK(ric.register_rapp(app, ps_id, 10), "PS rApp must register");

  // Serving path under chaos: per-sector decisions batch through a
  // ServeEngine on the same injector (the rApp drains it every period),
  // so serve.admit/serve.batch faults hit the non-RT loop too.
  serve::ServeConfig scfg;
  scfg.name = recover ? "chaosps" : "chaospsraw";
  scfg.batch_max = rictest::kNumSectors;
  serve::ServeEngine engine(apps::make_power_saving_cnn({1, 12, 9}, 6, 21),
                            scfg);
  engine.set_fault_injector(&injector);
  app->set_serve_engine(&engine);

  NonRtResult out;
  out.periods = periods;
  for (std::uint64_t t = 0; t < periods; ++t) {
    emulator.advance();
    const std::uint64_t fallback_before = app->fallback_decisions();
    const std::uint64_t failsafe_before = app->failsafe_periods();
    const std::uint64_t decisions_before = app->decisions_made();
    ric.step();
    const bool fell_back = app->fallback_decisions() > fallback_before;
    if (app->decisions_made() > decisions_before && !fell_back) ++out.decided;
    if (fell_back) ++out.fallbacks;
    out.failsafes += app->failsafe_periods() - failsafe_before;

    oran::A1Policy pol;
    pol.policy_type = "interference-management";
    pol.params["mode"] = "adaptive";
    ++out.policies_sent;
    if (ric.push_a1_policy(near, pol)) ++out.policies_delivered;
  }

  out.collect_failures = ric.pm_collect_failures();
  out.publish_failures = ric.pm_publish_failures();
  out.rapp_faults = ric.stats_of(ps_id).faults;
  out.serve_degraded = engine.slo().degraded_syncs;
  out.serve_shed = app->serve_shed();
  out.injector_stats = injector.stats_json();
  return out;
}

// --------------------------------------------- city-scale emulation phase

struct CitySimResult {
  std::uint64_t events = 0;
  std::uint64_t reports = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t frame_retries = 0;
  std::uint64_t handovers_cross = 0;
  double avail = 0.0;
  std::string event_digest;
  std::string injector_stats;
};

/// The sharded simulator (DESIGN.md §16) under the same plan: the
/// citysim.event drop/transient lines are live at every barrier delivery.
/// Transients are redelivered (the report stays buffered) so only hard
/// drops cost availability; the digest stays the one reliable runs
/// produce because faults act on delivery, not on the event schedule.
/// Fully deterministic given the plan seed — the CI chaos smoke diffs
/// every field.
CitySimResult run_citysim(const fault::FaultPlan& plan,
                          std::uint64_t epochs) {
  fault::FaultInjector injector(plan);
  citysim::CityConfig cfg;
  cfg.cells = 200;
  cfg.ues = 5000;
  cfg.shards = 8;
  citysim::CitySim sim(cfg);
  sim.set_fault_injector(&injector);
  sim.run_epochs(epochs);
  const citysim::CityStats s = sim.stats();
  CitySimResult out;
  out.events = s.events;
  out.reports = s.reports;
  out.frames_delivered = s.frames_delivered;
  out.frames_lost = s.frames_lost;
  out.frame_retries = s.frame_retries;
  out.handovers_cross = s.handovers_cross;
  out.avail = sim.availability();
  out.event_digest = sim.event_digest();
  out.injector_stats = injector.stats_json();
  return out;
}

void append_citysim_json(std::string& json, const char* name,
                         const CitySimResult& r) {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\n"
      "    \"events\": %llu,\n"
      "    \"reports\": %llu,\n"
      "    \"frames_delivered\": %llu,\n"
      "    \"frames_lost\": %llu,\n"
      "    \"frame_retries\": %llu,\n"
      "    \"handovers_cross\": %llu,\n"
      "    \"availability\": %.6f,\n"
      "    \"event_digest\": \"%s\",\n",
      name, static_cast<unsigned long long>(r.events),
      static_cast<unsigned long long>(r.reports),
      static_cast<unsigned long long>(r.frames_delivered),
      static_cast<unsigned long long>(r.frames_lost),
      static_cast<unsigned long long>(r.frame_retries),
      static_cast<unsigned long long>(r.handovers_cross), r.avail,
      r.event_digest.c_str());
  json += buf;
  json += "    \"faults\": " + r.injector_stats + "\n  },\n";
}

void append_near_rt_json(std::string& json, const char* name,
                         const NearRtResult& r) {
  char buf[1280];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\n"
      "    \"iters\": %llu,\n"
      "    \"availability\": %.6f,\n"
      "    \"informed_rate\": %.6f,\n"
      "    \"served\": %llu,\n"
      "    \"informed\": %llu,\n"
      "    \"fallback_classifications\": %llu,\n"
      "    \"failsafe_controls\": %llu,\n"
      "    \"retransmissions\": %llu,\n"
      "    \"outages\": %llu,\n"
      "    \"longest_outage\": %llu,\n"
      "    \"indications_dropped\": %llu,\n"
      "    \"xapp_faults\": %llu,\n"
      "    \"quarantined_skips\": %llu,\n"
      "    \"breaker_opens\": %llu,\n"
      "    \"sdl_write_failures\": %llu,\n"
      "    \"controls_dropped\": %llu,\n"
      "    \"controls_failed\": %llu,\n"
      "    \"telemetry_failures\": %llu,\n"
      "    \"serve_degraded\": %llu,\n"
      "    \"serve_shed\": %llu,\n"
      "    \"defense_screened\": %llu,\n"
      "    \"defense_flagged\": %llu,\n"
      "    \"review_passes\": %llu,\n"
      "    \"swap_attempts\": %llu,\n"
      "    \"swaps_accepted\": %llu,\n"
      "    \"swaps_rejected\": %llu,\n",
      name, static_cast<unsigned long long>(r.iters), r.availability(),
      r.informed_rate(), static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.informed),
      static_cast<unsigned long long>(r.fallbacks),
      static_cast<unsigned long long>(r.failsafes),
      static_cast<unsigned long long>(r.retransmissions),
      static_cast<unsigned long long>(r.outages),
      static_cast<unsigned long long>(r.longest_outage),
      static_cast<unsigned long long>(r.indications_dropped),
      static_cast<unsigned long long>(r.xapp_faults),
      static_cast<unsigned long long>(r.quarantined_skips),
      static_cast<unsigned long long>(r.breaker_opens),
      static_cast<unsigned long long>(r.sdl_write_failures),
      static_cast<unsigned long long>(r.controls_dropped),
      static_cast<unsigned long long>(r.controls_failed),
      static_cast<unsigned long long>(r.telemetry_failures),
      static_cast<unsigned long long>(r.serve_degraded),
      static_cast<unsigned long long>(r.serve_shed),
      static_cast<unsigned long long>(r.defense_screened),
      static_cast<unsigned long long>(r.defense_flagged),
      static_cast<unsigned long long>(r.review_passes),
      static_cast<unsigned long long>(r.swap_attempts),
      static_cast<unsigned long long>(r.swaps_accepted),
      static_cast<unsigned long long>(r.swaps_rejected));
  json += buf;
  json += "    \"faults\": " + r.injector_stats + "\n  },\n";
}

void append_non_rt_json(std::string& json, const char* name,
                        const NonRtResult& r) {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\n"
      "    \"periods\": %llu,\n"
      "    \"decision_availability\": %.6f,\n"
      "    \"decided_fresh\": %llu,\n"
      "    \"fallback_periods\": %llu,\n"
      "    \"failsafe_periods\": %llu,\n"
      "    \"collect_failures\": %llu,\n"
      "    \"publish_failures\": %llu,\n"
      "    \"rapp_faults\": %llu,\n"
      "    \"policies_sent\": %llu,\n"
      "    \"policies_delivered\": %llu,\n"
      "    \"serve_degraded\": %llu,\n"
      "    \"serve_shed\": %llu,\n",
      name, static_cast<unsigned long long>(r.periods),
      r.decision_availability(),
      static_cast<unsigned long long>(r.decided),
      static_cast<unsigned long long>(r.fallbacks),
      static_cast<unsigned long long>(r.failsafes),
      static_cast<unsigned long long>(r.collect_failures),
      static_cast<unsigned long long>(r.publish_failures),
      static_cast<unsigned long long>(r.rapp_faults),
      static_cast<unsigned long long>(r.policies_sent),
      static_cast<unsigned long long>(r.policies_delivered),
      static_cast<unsigned long long>(r.serve_degraded),
      static_cast<unsigned long long>(r.serve_shed));
  json += buf;
  json += "    \"faults\": " + r.injector_stats + "\n  },\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Chaos-specific flags come out of argv first so ObsGuard's own
  // --fault-plan handling (the global injector) never engages here: this
  // bench owns its injectors, one fresh instance per run.
  std::string plan_file;
  std::string seed_str;
  std::string report_out = "bench_results/chaos_report.json";
  std::uint64_t iters = 4000;
  std::uint64_t periods = 120;
  {
    int w = 1;
    for (int r = 1; r < argc; ++r) {
      if (std::strcmp(argv[r], "--fault-plan") == 0 && r + 1 < argc) {
        plan_file = argv[++r];
      } else if (std::strcmp(argv[r], "--fault-seed") == 0 && r + 1 < argc) {
        seed_str = argv[++r];
      } else if (std::strcmp(argv[r], "--iters") == 0 && r + 1 < argc) {
        iters = std::strtoull(argv[++r], nullptr, 0);
      } else if (std::strcmp(argv[r], "--periods") == 0 && r + 1 < argc) {
        periods = std::strtoull(argv[++r], nullptr, 0);
      } else if (std::strcmp(argv[r], "--report-out") == 0 && r + 1 < argc) {
        report_out = argv[++r];
      } else {
        argv[w++] = argv[r];
      }
    }
    argc = w;
  }
  ObsGuard obs_guard(argc, argv);

  fault::FaultPlan plan = fault::default_chaos_plan();
  if (!plan_file.empty()) {
    const std::optional<fault::FaultPlan> loaded =
        fault::FaultPlan::load(plan_file);
    if (!loaded) {
      std::fprintf(stderr, "cannot read fault plan %s\n", plan_file.c_str());
      return 2;
    }
    plan = *loaded;
  }
  if (!seed_str.empty()) plan.seed = std::strtoull(seed_str.c_str(), nullptr, 0);

  std::printf("=== Chaos: closed loops under a deterministic fault plan "
              "(seed %llu) ===\n",
              static_cast<unsigned long long>(plan.seed));

  const NearRtResult with = run_near_rt(plan, /*recover=*/true, iters);
  const NearRtResult without = run_near_rt(plan, /*recover=*/false, iters);
  const NonRtResult nwith = run_non_rt(plan, true, periods);
  const NonRtResult nwithout = run_non_rt(plan, false, periods);
  const CitySimResult city = run_citysim(plan, /*epochs=*/10);

  std::printf("\n%-26s %-14s %-14s\n", "near-RT loop", "with recovery",
              "without");
  print_rule();
  std::printf("%-26s %-14.4f %-14.4f\n", "loop availability",
              with.availability(), without.availability());
  std::printf("%-26s %-14.4f %-14.4f\n", "informed-control rate",
              with.informed_rate(), without.informed_rate());
  std::printf("%-26s %-14llu %-14llu\n", "fail-safe controls",
              static_cast<unsigned long long>(with.failsafes),
              static_cast<unsigned long long>(without.failsafes));
  std::printf("%-26s %-14llu %-14llu\n", "fallback classifications",
              static_cast<unsigned long long>(with.fallbacks),
              static_cast<unsigned long long>(without.fallbacks));
  std::printf("%-26s %-14llu %-14llu\n", "longest outage (iters)",
              static_cast<unsigned long long>(with.longest_outage),
              static_cast<unsigned long long>(without.longest_outage));
  std::printf("%-26s %-14llu %-14llu\n", "breaker opens",
              static_cast<unsigned long long>(with.breaker_opens),
              static_cast<unsigned long long>(without.breaker_opens));
  std::printf("%-26s %llu/%llu            %llu/%llu\n", "hot-swaps accepted",
              static_cast<unsigned long long>(with.swaps_accepted),
              static_cast<unsigned long long>(with.swap_attempts),
              static_cast<unsigned long long>(without.swaps_accepted),
              static_cast<unsigned long long>(without.swap_attempts));
  std::printf("%-26s %-14llu %-14llu\n", "review passes",
              static_cast<unsigned long long>(with.review_passes),
              static_cast<unsigned long long>(without.review_passes));
  std::printf("\n%-26s %-14.4f %-14.4f\n", "non-RT decision avail.",
              nwith.decision_availability(),
              nwithout.decision_availability());
  std::printf("%-26s %llu/%llu       %llu/%llu\n", "A1 policies delivered",
              static_cast<unsigned long long>(nwith.policies_delivered),
              static_cast<unsigned long long>(nwith.policies_sent),
              static_cast<unsigned long long>(nwithout.policies_delivered),
              static_cast<unsigned long long>(nwithout.policies_sent));
  std::printf("\n%-26s %-14.4f\n", "citysim frame avail.", city.avail);
  std::printf("%-26s %llu delivered, %llu lost, %llu retried over %llu "
              "reports\n",
              "citysim frames",
              static_cast<unsigned long long>(city.frames_delivered),
              static_cast<unsigned long long>(city.frames_lost),
              static_cast<unsigned long long>(city.frame_retries),
              static_cast<unsigned long long>(city.reports));

  std::string json = "{\n";
  append_near_rt_json(json, "near_rt_with_recovery", with);
  append_near_rt_json(json, "near_rt_without_recovery", without);
  append_non_rt_json(json, "non_rt_with_recovery", nwith);
  append_non_rt_json(json, "non_rt_without_recovery", nwithout);
  append_citysim_json(json, "citysim", city);
  char tail[128];
  std::snprintf(tail, sizeof(tail), "  \"plan_seed\": %llu\n}\n",
                static_cast<unsigned long long>(plan.seed));
  json += tail;
  {
    std::error_code ec;
    const std::filesystem::path p(report_out);
    if (p.has_parent_path())
      std::filesystem::create_directories(p.parent_path(), ec);
    std::FILE* f = std::fopen(report_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write report %s\n", report_out.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\n[chaos] wrote report to %s\n", report_out.c_str());
  }

  CsvWriter csv;
  csv.header({"loop", "recovery", "availability", "informed_rate",
              "failsafes", "fallbacks", "breaker_opens"});
  csv.row("near_rt", 1, with.availability(), with.informed_rate(),
          with.failsafes, with.fallbacks, with.breaker_opens);
  csv.row("near_rt", 0, without.availability(), without.informed_rate(),
          without.failsafes, without.fallbacks, without.breaker_opens);
  csv.row("non_rt", 1, nwith.decision_availability(), 0.0, nwith.failsafes,
          nwith.fallbacks, 0);
  csv.row("non_rt", 0, nwithout.decision_availability(), 0.0,
          nwithout.failsafes, nwithout.fallbacks, 0);
  save_csv(csv, "chaos");

  // Self-check: the recovery layer must clear the availability bar and
  // beat the unprotected loop by a clear margin.
  if (with.availability() < 0.99) {
    std::fprintf(stderr, "FAIL: availability with recovery %.4f < 0.99\n",
                 with.availability());
    return 1;
  }
  if (without.availability() > with.availability() - 0.02) {
    std::fprintf(stderr,
                 "FAIL: recovery layer shows no measurable benefit "
                 "(%.4f vs %.4f)\n",
                 with.availability(), without.availability());
    return 1;
  }
  // The closed-loop fault sites must actually have been exercised: the
  // periodic swap attempts ran, at least one survived the plan's
  // transient faults, and the review cadence produced passes.
  if (with.swap_attempts == 0 || with.swaps_accepted == 0 ||
      with.swaps_accepted + with.swaps_rejected != with.swap_attempts) {
    std::fprintf(stderr,
                 "FAIL: hot-swap attempts under chaos look wrong "
                 "(%llu attempts, %llu accepted, %llu rejected)\n",
                 static_cast<unsigned long long>(with.swap_attempts),
                 static_cast<unsigned long long>(with.swaps_accepted),
                 static_cast<unsigned long long>(with.swaps_rejected));
    return 1;
  }
  if (with.defense_screened == 0 || with.review_passes == 0) {
    std::fprintf(stderr,
                 "FAIL: defense plane idle under chaos (screened %llu, "
                 "review passes %llu)\n",
                 static_cast<unsigned long long>(with.defense_screened),
                 static_cast<unsigned long long>(with.review_passes));
    return 1;
  }
  // City-scale plane: the plan's citysim.event lines must have fired (the
  // site is exercised, retries recovered the transients) while frame
  // availability clears the same bar the control loop does.
  if (city.avail < 0.99) {
    std::fprintf(stderr, "FAIL: citysim frame availability %.4f < 0.99\n",
                 city.avail);
    return 1;
  }
  if (city.frames_lost + city.frame_retries == 0) {
    std::fprintf(stderr,
                 "FAIL: citysim fault site never fired under the chaos "
                 "plan (%llu reports)\n",
                 static_cast<unsigned long long>(city.reports));
    return 1;
  }
  std::printf("loop availability %.4f with recovery vs %.4f without — "
              "recovery layer holds the loop up\n",
              with.availability(), without.availability());
  return 0;
}
