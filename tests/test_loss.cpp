#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"

namespace orev::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  Rng rng(1);
  const Tensor p = softmax(Tensor::randn({4, 5}, rng, 2.0f));
  for (int i = 0; i < 4; ++i) {
    double row = 0.0;
    for (int j = 0; j < 5; ++j) {
      EXPECT_GT(p.at2(i, j), 0.0f);
      row += p.at2(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(Softmax, InvariantToRowShift) {
  Tensor a({1, 3}, std::vector<float>{1, 2, 3});
  Tensor b({1, 3}, std::vector<float>{101, 102, 103});
  const Tensor pa = softmax(a);
  const Tensor pb = softmax(b);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(pa.at2(0, j), pb.at2(0, j), 1e-5f);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor a({1, 2}, std::vector<float>{1000.0f, 0.0f});
  const Tensor p = softmax(a);
  EXPECT_NEAR(p.at2(0, 0), 1.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(p.at2(0, 1)));
}

TEST(Softmax, TemperatureSmooths) {
  Tensor logits({1, 2}, std::vector<float>{2.0f, 0.0f});
  const Tensor sharp = softmax_t(logits, 1.0f);
  const Tensor soft = softmax_t(logits, 10.0f);
  EXPECT_GT(sharp.at2(0, 0), soft.at2(0, 0));
  EXPECT_GT(soft.at2(0, 0), 0.5f);  // still ordered correctly
}

TEST(Softmax, InvalidTemperatureThrows) {
  EXPECT_THROW(softmax_t(Tensor({1, 2}), 0.0f), CheckError);
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  const Tensor logits({2, 4});  // all zeros → uniform distribution
  const LossGrad lg = cross_entropy_with_logits(logits, {0, 3});
  EXPECT_NEAR(lg.loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss) {
  Tensor logits({1, 2}, std::vector<float>{20.0f, -20.0f});
  const LossGrad lg = cross_entropy_with_logits(logits, {0});
  EXPECT_LT(lg.loss, 1e-5f);
}

TEST(CrossEntropy, GradientIsProbMinusOnehotOverN) {
  Tensor logits({2, 2});  // uniform: p = 0.5 everywhere
  const LossGrad lg = cross_entropy_with_logits(logits, {0, 1});
  EXPECT_NEAR(lg.dlogits.at2(0, 0), (0.5f - 1.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(lg.dlogits.at2(0, 1), 0.5f / 2.0f, 1e-6f);
  EXPECT_NEAR(lg.dlogits.at2(1, 1), (0.5f - 1.0f) / 2.0f, 1e-6f);
}

TEST(CrossEntropy, GradientMatchesNumeric) {
  Rng rng(2);
  Tensor logits = Tensor::randn({3, 4}, rng);
  const std::vector<int> y = {1, 3, 0};
  const LossGrad lg = cross_entropy_with_logits(logits, y);
  const float h = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits;
    lp[i] += h;
    Tensor lm = logits;
    lm[i] -= h;
    const float numeric = (cross_entropy_with_logits(lp, y).loss -
                           cross_entropy_with_logits(lm, y).loss) /
                          (2.0f * h);
    EXPECT_NEAR(lg.dlogits[i], numeric, 5e-3f);
  }
}

TEST(CrossEntropy, LabelValidation) {
  Tensor logits({1, 2});
  EXPECT_THROW(cross_entropy_with_logits(logits, {2}), CheckError);
  EXPECT_THROW(cross_entropy_with_logits(logits, {0, 1}), CheckError);
}

TEST(SoftCrossEntropy, MatchesHardLabelsAtOnehot) {
  Rng rng(3);
  const Tensor logits = Tensor::randn({2, 3}, rng);
  Tensor onehot({2, 3});
  onehot.at2(0, 1) = 1.0f;
  onehot.at2(1, 2) = 1.0f;
  const LossGrad soft = soft_cross_entropy_with_logits(logits, onehot, 1.0f);
  const LossGrad hard = cross_entropy_with_logits(logits, {1, 2});
  EXPECT_NEAR(soft.loss, hard.loss, 1e-5f);
  for (std::size_t i = 0; i < logits.numel(); ++i)
    EXPECT_NEAR(soft.dlogits[i], hard.dlogits[i], 1e-5f);
}

TEST(SoftCrossEntropy, GradientMatchesNumeric) {
  Rng rng(4);
  Tensor logits = Tensor::randn({2, 3}, rng);
  const Tensor targets = softmax(Tensor::randn({2, 3}, rng));
  const float temp = 4.0f;
  const LossGrad lg = soft_cross_entropy_with_logits(logits, targets, temp);
  const float h = 1e-2f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits;
    lp[i] += h;
    Tensor lm = logits;
    lm[i] -= h;
    const float numeric =
        (soft_cross_entropy_with_logits(lp, targets, temp).loss -
         soft_cross_entropy_with_logits(lm, targets, temp).loss) /
        (2.0f * h);
    EXPECT_NEAR(lg.dlogits[i], numeric, 5e-3f);
  }
}

TEST(Accuracy, CountsArgmaxMatches) {
  Tensor logits({3, 2}, std::vector<float>{2, 1, 0, 3, 5, 5});
  // argmax: 0, 1, 0 (tie → first)
  EXPECT_NEAR(accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(F1, PerfectPredictionsScoreOne) {
  EXPECT_DOUBLE_EQ(f1_score({0, 1, 0, 1}, {0, 1, 0, 1}, 2), 1.0);
}

TEST(F1, AllWrongScoresZero) {
  EXPECT_DOUBLE_EQ(f1_score({1, 0}, {0, 1}, 2), 0.0);
}

TEST(F1, MacroAveragesClasses) {
  // Class 0: tp=1 fp=1 fn=0 → f1 = 2/3; class 1: tp=0 fp=0 fn=1 → 0;
  // class 2: tp=1 fp=0 fn=0 → 1. Macro = (2/3 + 0 + 1)/3.
  const double f1 = f1_score({0, 0, 2}, {0, 1, 2}, 3);
  EXPECT_NEAR(f1, (2.0 / 3.0 + 0.0 + 1.0) / 3.0, 1e-9);
}

TEST(F1, SizeMismatchThrows) {
  EXPECT_THROW(f1_score({0}, {0, 1}, 2), CheckError);
}

}  // namespace
}  // namespace orev::nn
