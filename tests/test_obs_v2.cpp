// Observability v2 lockdown (DESIGN.md §13): relative-error quantile
// sketches (accuracy bound, exact merge under randomized shard orders),
// the causal span log (parent integrity, deterministic chrome export,
// ring drop accounting), the flight recorder (deterministic reports,
// file output), multi-window SLO burn rates, and the Prometheus
// exposition fixes (HELP lines, name sanitization, sketch summaries).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "serve/burnrate.hpp"
#include "util/check.hpp"
#include "util/obs/obs.hpp"

namespace orev {
namespace {

/// Restore the causal switch and clear the ring around each test.
class CausalGuard {
 public:
  CausalGuard() : saved_(obs::causal_enabled()) { obs::causal_clear(); }
  ~CausalGuard() {
    obs::set_causal_enabled(saved_);
    obs::causal_clear();
  }

 private:
  bool saved_;
};

// ------------------------------------------------------- QuantileSketch

TEST(QuantileSketch, RelativeErrorBoundHolds) {
  obs::QuantileSketch s(0.01);
  for (int i = 1; i <= 10000; ++i) s.observe(static_cast<double>(i));
  EXPECT_EQ(s.count(), 10000u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10000.0);
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double truth = std::ceil(q * 10000.0);  // exact order statistic
    const double est = s.quantile(q);
    // The DDSketch guarantee is alpha-relative; allow 2*alpha for the
    // rank-vs-value discretization at the bucket edge.
    EXPECT_NEAR(est, truth, 0.02 * truth) << "q=" << q;
  }
}

TEST(QuantileSketch, QuantilesMonotoneAndClamped) {
  obs::QuantileSketch s(0.02);
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(3.0, 1.5);
  for (int i = 0; i < 5000; ++i) s.observe(dist(rng));
  double prev = s.min();
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double v = s.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, s.min());
    EXPECT_LE(v, s.max());
    prev = v;
  }
}

TEST(QuantileSketch, ZeroAndNegativeLandInZeroBucket) {
  obs::QuantileSketch s(0.01);
  s.observe(0.0);
  s.observe(-5.0);
  s.observe(100.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  // Two of three observations are "~0": the median resolves to the zero
  // bucket (clamped into the observed envelope), the max to the tail.
  EXPECT_LE(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(QuantileSketch, MergeAssociativeCommutativeUnderRandomShardOrders) {
  // The determinism contract's foundation: shard merge order never
  // changes the merged sketch. Build 8 shards of lognormal samples, merge
  // them in 20 random permutations (and one pairwise-tree order), and
  // demand identical count/sum/quantiles every time.
  constexpr int kShards = 8;
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(2.0, 1.0);
  std::vector<obs::QuantileSketch> shards(kShards, obs::QuantileSketch(0.01));
  for (int i = 0; i < kShards; ++i)
    for (int j = 0; j < 500 + 37 * i; ++j) shards[i].observe(dist(rng));

  auto merged_in = [&](const std::vector<int>& order) {
    obs::QuantileSketch out(0.01);
    for (const int i : order) out.merge(shards[static_cast<std::size_t>(i)]);
    return out;
  };
  std::vector<int> order(kShards);
  std::iota(order.begin(), order.end(), 0);
  const obs::QuantileSketch ref = merged_in(order);

  std::mt19937_64 shuffle_rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::shuffle(order.begin(), order.end(), shuffle_rng);
    const obs::QuantileSketch m = merged_in(order);
    EXPECT_EQ(m.count(), ref.count());
    EXPECT_EQ(m.bucket_count(), ref.bucket_count());
    EXPECT_DOUBLE_EQ(m.min(), ref.min());
    EXPECT_DOUBLE_EQ(m.max(), ref.max());
    for (const double q : {0.5, 0.95, 0.99, 0.999})
      EXPECT_DOUBLE_EQ(m.quantile(q), ref.quantile(q)) << "q=" << q;
  }

  // Associativity: ((a+b)+(c+d)) == (a+(b+(c+d))) — tree vs chain.
  obs::QuantileSketch ab(0.01), cd(0.01), tree(0.01), chain(0.01);
  ab.merge(shards[0]);
  ab.merge(shards[1]);
  cd.merge(shards[2]);
  cd.merge(shards[3]);
  tree.merge(ab);
  tree.merge(cd);
  for (int i = 3; i >= 0; --i) chain.merge(shards[static_cast<std::size_t>(i)]);
  EXPECT_EQ(tree.count(), chain.count());
  for (const double q : {0.5, 0.99})
    EXPECT_DOUBLE_EQ(tree.quantile(q), chain.quantile(q));
}

TEST(QuantileSketch, ResetEmptiesEverything) {
  obs::QuantileSketch s(0.01);
  s.observe(3.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.bucket_count(), 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(QuantileSketch, RegistrySketchMetricMergesShards) {
  obs::SketchMetric& m = obs::sketch("test.sketch.registry", 0.01);
  m.reset();
  for (int i = 1; i <= 100; ++i) m.observe(static_cast<double>(i));
  const obs::QuantileSketch s = m.merged();
  EXPECT_EQ(s.count(), 100u);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 2.0);
  // Same name returns the same instance; a different type must throw.
  EXPECT_EQ(&obs::sketch("test.sketch.registry"), &m);
  EXPECT_THROW(obs::counter("test.sketch.registry"), CheckError);
}

// ---------------------------------------------------------- CausalTrace

TEST(CausalTrace, DisabledModeRecordsNothingAndReturnsUntraced) {
  CausalGuard guard;
  obs::set_causal_enabled(false);
  const obs::TraceContext root =
      obs::causal_root(obs::derive_trace_id(obs::domains::kE2, 1), "e2.ind",
                       obs::lanes::kIndication, 1000);
  EXPECT_FALSE(root.valid());
  const obs::TraceContext child =
      obs::causal_child(root, "child", obs::lanes::kApp, 1000);
  EXPECT_FALSE(child.valid());
  EXPECT_EQ(obs::causal_size(), 0u);
}

TEST(CausalTrace, ParentChainValidatesAndExports) {
  CausalGuard guard;
  obs::set_causal_enabled(true);
  const std::uint64_t tid = obs::derive_trace_id(obs::domains::kE2, 7);
  const obs::TraceContext root =
      obs::causal_root(tid, "e2.indication", obs::lanes::kIndication, 1000);
  ASSERT_TRUE(root.valid());
  EXPECT_EQ(root.trace_id, tid);
  const obs::TraceContext dispatch =
      obs::causal_child(root, "dispatch.ic", obs::lanes::kDispatch, 1000);
  const obs::TraceContext admit =
      obs::causal_child(dispatch, "serve.admit", obs::lanes::kAdmit, 5);
  const obs::TraceContext done = obs::causal_child(
      admit, "serve.complete", obs::lanes::kComplete, 105, 0, admit.span_id);
  EXPECT_TRUE(done.valid());

  const std::vector<obs::CausalSpan> spans = obs::causal_snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_STREQ(spans[0].name, "e2.indication");
  EXPECT_EQ(spans[0].parent_span_id, 0u);
  EXPECT_EQ(spans[1].parent_span_id, spans[0].span_id);
  EXPECT_EQ(spans[2].parent_span_id, spans[1].span_id);
  EXPECT_EQ(spans[3].parent_span_id, spans[2].span_id);
  EXPECT_EQ(spans[3].flow_from, spans[2].span_id);
  for (const obs::CausalSpan& s : spans) EXPECT_EQ(s.trace_id, tid);
  // Span ids strictly increase in record order.
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_GT(spans[i].span_id, spans[i - 1].span_id);

  std::string why;
  EXPECT_TRUE(obs::causal_validate(&why)) << why;

  const std::string json = obs::causal_to_chrome_json();
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("serve.admit"), std::string::npos);
  // Cross-lane parent links render as flow ("s"/"f") pairs.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(CausalTrace, ExportIsByteIdenticalForIdenticalLogs) {
  CausalGuard guard;
  obs::set_causal_enabled(true);
  auto record = [] {
    obs::causal_clear();
    const obs::TraceContext root = obs::causal_root(
        obs::derive_trace_id(obs::domains::kApp, 3), "ps.decide",
        obs::lanes::kApp, 42);
    obs::causal_child(root, "serve.admit", obs::lanes::kAdmit, 43);
    return obs::causal_to_chrome_json();
  };
  const std::string a = record();
  const std::string b = record();
  // causal_clear() resets the span-id allocator, so a replayed scenario
  // exports byte-for-byte identically — the foundation of the trace
  // determinism contract.
  EXPECT_EQ(a, b);
}

TEST(CausalTrace, RingDropsOldestAndCountsThem) {
  CausalGuard guard;
  obs::set_causal_enabled(true);
  const std::size_t cap = obs::causal_capacity();
  const obs::TraceContext root = obs::causal_root(
      obs::derive_trace_id(obs::domains::kApp, 1), "root", obs::lanes::kApp, 0);
  for (std::size_t i = 0; i < cap + 9; ++i)
    obs::causal_child(root, "filler", obs::lanes::kApp, i);
  EXPECT_EQ(obs::causal_size(), cap);
  EXPECT_EQ(obs::causal_dropped(), 10u);  // root + 9 oldest fillers
  // Truncated logs still validate: unresolvable parents are skipped.
  std::string why;
  EXPECT_TRUE(obs::causal_validate(&why)) << why;
}

// -------------------------------------------------------- FlightRecorder

TEST(FlightRecorder, CapturesTailDeterministically) {
  CausalGuard guard;
  obs::set_causal_enabled(true);
  obs::flight_reset();
  auto scenario = [] {
    obs::causal_clear();
    obs::flight_reset();
    const obs::TraceContext root = obs::causal_root(
        obs::derive_trace_id(obs::domains::kE2, 1), "e2.indication",
        obs::lanes::kIndication, 1000);
    obs::causal_child(root, "dispatch.bad", obs::lanes::kDispatch, 1000);
    obs::flight_trigger("breaker.open", "bad-app");
    return obs::flight_last_report();
  };
  const std::string a = scenario();
  const std::string b = scenario();
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("\"schema\":\"orev-flight-v1\""), std::string::npos);
  EXPECT_NE(a.find("breaker.open"), std::string::npos);
  EXPECT_NE(a.find("bad-app"), std::string::npos);
  EXPECT_NE(a.find("dispatch.bad"), std::string::npos);
  EXPECT_EQ(a, b);  // same-seed scenario → byte-identical report
  EXPECT_EQ(obs::flight_trigger_count(), 1u);
}

TEST(FlightRecorder, WritesReportFileWhenDirConfigured) {
  CausalGuard guard;
  obs::set_causal_enabled(true);
  obs::flight_reset();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "orev_flight_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  obs::set_flight_dir(dir.string());
  const obs::TraceContext root = obs::causal_root(
      obs::derive_trace_id(obs::domains::kServe, 9), "serve.admit",
      obs::lanes::kAdmit, 5);
  (void)root;
  const std::uint64_t seq = obs::flight_trigger("quant.refuse", "cnnq: gate");
  obs::set_flight_dir("");
  EXPECT_GE(seq, 1u);
  bool found = false;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string fn = e.path().filename().string();
    if (fn.find("flight-") == 0 && fn.find("quant") != std::string::npos)
      found = true;
  }
  EXPECT_TRUE(found) << "no flight-*.json under " << dir;
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------------- BurnRate

TEST(BurnRate, BurnIsErrorRatioOverBudget) {
  serve::SloConfig cfg;
  cfg.window_us = 1000;
  cfg.short_windows = 2;
  cfg.long_windows = 4;
  cfg.miss_budget = 0.1;
  cfg.avail_budget = 0.1;
  serve::BurnRatePlane plane(cfg);
  // One window: 10 completions, 2 missed → miss ratio 0.2 → burn 2.0.
  for (int i = 0; i < 10; ++i) {
    plane.on_submit(100);
    plane.on_complete(100, /*deadline_missed=*/i < 2);
  }
  const serve::BurnRates r = plane.rates(100);
  EXPECT_NEAR(r.miss_short, 2.0, 1e-9);
  EXPECT_NEAR(r.miss_long, 2.0, 1e-9);
  EXPECT_NEAR(r.avail_short, 0.0, 1e-9);
  EXPECT_TRUE(r.miss_alert);
  EXPECT_FALSE(r.avail_alert);
}

TEST(BurnRate, ShortSpikeDoesNotTripLongWindow) {
  serve::SloConfig cfg;
  cfg.window_us = 1000;
  cfg.short_windows = 2;
  cfg.long_windows = 10;
  cfg.miss_budget = 0.01;
  serve::BurnRatePlane plane(cfg);
  // Eight clean windows of history, then one window with a miss burst.
  for (std::uint64_t w = 0; w < 8; ++w)
    for (int i = 0; i < 100; ++i) {
      plane.on_submit(w * 1000 + 1);
      plane.on_complete(w * 1000 + 1, false);
    }
  for (int i = 0; i < 10; ++i) {
    plane.on_submit(8000 + 1);
    plane.on_complete(8000 + 1, i < 5);
  }
  const serve::BurnRates r = plane.rates(8000 + 1);
  // Short horizon (2 windows: one clean + the burst): 5/110 / 0.01 ≈ 4.5.
  EXPECT_GT(r.miss_short, 1.0);
  // Long horizon dilutes the burst: 5/810 / 0.01 ≈ 0.62.
  EXPECT_LT(r.miss_long, 1.0);
  EXPECT_FALSE(r.miss_alert);  // multi-window rule suppresses the spike
}

TEST(BurnRate, SustainedRegressionTripsBothWindows) {
  serve::SloConfig cfg;
  cfg.window_us = 1000;
  cfg.short_windows = 2;
  cfg.long_windows = 4;
  cfg.avail_budget = 0.01;
  serve::BurnRatePlane plane(cfg);
  for (std::uint64_t w = 0; w < 4; ++w)
    for (int i = 0; i < 20; ++i) {
      plane.on_submit(w * 1000 + 1);
      if (i < 2) {
        plane.on_reject(w * 1000 + 1);
      } else {
        plane.on_complete(w * 1000 + 1, false);
      }
    }
  const serve::BurnRates r = plane.rates(3000 + 1);
  EXPECT_GT(r.avail_short, 1.0);
  EXPECT_GT(r.avail_long, 1.0);
  EXPECT_TRUE(r.avail_alert);
}

TEST(BurnRate, StaleCellsExpireFromTheRing) {
  serve::SloConfig cfg;
  cfg.window_us = 1000;
  cfg.short_windows = 1;
  cfg.long_windows = 2;
  cfg.miss_budget = 0.01;
  serve::BurnRatePlane plane(cfg);
  for (int i = 0; i < 10; ++i) {
    plane.on_submit(1);
    plane.on_complete(1, true);  // every completion missed, window 0
  }
  EXPECT_GT(plane.rates(1).miss_long, 0.0);
  // Jump far ahead: window 0 is outside the long horizon and its cell may
  // be reused — the misses must no longer count.
  const serve::BurnRates later = plane.rates(100 * 1000);
  EXPECT_DOUBLE_EQ(later.miss_long, 0.0);
  EXPECT_DOUBLE_EQ(later.miss_short, 0.0);
}

TEST(BurnRate, ConfigValidation) {
  serve::SloConfig bad;
  bad.window_us = 0;
  EXPECT_THROW(serve::BurnRatePlane{bad}, CheckError);
  serve::SloConfig bad2;
  bad2.short_windows = 10;
  bad2.long_windows = 5;
  EXPECT_THROW(serve::BurnRatePlane{bad2}, CheckError);
}

// ------------------------------------------------------------ PromExport

TEST(PromExport, HelpLinesAndEscaping) {
  obs::counter("test.prom.helped", "counts things \\ with\nnewlines").inc();
  const std::string text = obs::Registry::instance().to_prometheus();
  EXPECT_NE(text.find("# HELP orev_test_prom_helped"), std::string::npos);
  // Backslash and newline must arrive escaped, keeping one line per HELP.
  EXPECT_NE(text.find("\\\\ with\\nnewlines"), std::string::npos);
}

TEST(PromExport, NameSanitizationKeepsColons) {
  obs::counter("test.prom:rule name#2").inc();
  const std::string text = obs::Registry::instance().to_prometheus();
  // ':' is legal in exposition names and survives; space and '#' do not.
  EXPECT_NE(text.find("orev_test_prom:rule_name_2"), std::string::npos);
  EXPECT_EQ(text.find("rule name"), std::string::npos);
}

TEST(PromExport, SketchExportsSummaryWithQuantiles) {
  obs::SketchMetric& m =
      obs::sketch("test.prom.sketch", 0.01, "sketch help");
  m.reset();
  for (int i = 1; i <= 50; ++i) m.observe(static_cast<double>(i));
  const std::string text = obs::Registry::instance().to_prometheus();
  EXPECT_NE(text.find("# TYPE orev_test_prom_sketch summary"),
            std::string::npos);
  EXPECT_NE(text.find("orev_test_prom_sketch{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(text.find("orev_test_prom_sketch_count 50"), std::string::npos);
  // And the JSON export carries the sketches section.
  const std::string json = obs::Registry::instance().to_json();
  EXPECT_NE(json.find("\"sketches\""), std::string::npos);
  EXPECT_NE(json.find("\"test.prom.sketch\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

}  // namespace
}  // namespace orev
