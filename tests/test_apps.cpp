// Application-layer tests: model zoo construction/ordering, IC xApp
// behaviour on the Near-RT RIC, malicious xApp observe/attack modes,
// Power-Saving rApp execution on the emulator, malicious rApp injection.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/ic_xapp.hpp"
#include "apps/malicious_rapp.hpp"
#include "apps/malicious_xapp.hpp"
#include "apps/model_zoo.hpp"
#include "apps/power_saving_rapp.hpp"
#include "rictest/emulator.hpp"
#include "test_helpers.hpp"

namespace orev::apps {
namespace {

// -------------------------------------------------------------- model zoo

class ZooArch : public ::testing::TestWithParam<Arch> {};

TEST_P(ZooArch, BuildsAndClassifiesSpectrogramShape) {
  nn::Model m = make_arch(GetParam(), {1, 16, 16}, 2, 7);
  Rng rng(1);
  const nn::Tensor x = nn::Tensor::uniform({2, 1, 16, 16}, rng, 0.0f, 1.0f);
  const nn::Tensor logits = m.forward(x);
  EXPECT_EQ(logits.shape(), (nn::Shape{2, 2}));
}

TEST_P(ZooArch, BuildsOnPrbWindowShape) {
  // The rApp surrogates (Table 2) run on [1, 12, 9] PRB windows.
  nn::Model m = make_arch(GetParam(), {1, 12, 9}, 6, 8);
  Rng rng(2);
  const nn::Tensor x = nn::Tensor::uniform({1, 1, 12, 9}, rng, 0.0f, 1.0f);
  EXPECT_EQ(m.forward(x).shape(), (nn::Shape{1, 6}));
}

TEST_P(ZooArch, InputGradientFlowsToInput) {
  nn::Model m = make_arch(GetParam(), {1, 16, 16}, 2, 9);
  Rng rng(3);
  const nn::Tensor x = nn::Tensor::uniform({1, 16, 16}, rng, 0.1f, 0.9f);
  const nn::Tensor g = m.input_gradient(x, {0});
  EXPECT_EQ(g.numel(), x.numel());
  EXPECT_GT(g.norm2(), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(AllArchs, ZooArch,
                         ::testing::ValuesIn(all_archs()),
                         [](const ::testing::TestParamInfo<Arch>& info) {
                           std::string n = arch_name(info.param);
                           if (n == "1L") n = "OneLayer";
                           return n;
                         });

TEST(ModelZoo, ParameterCountOrdering) {
  // The zoo must preserve the families' relative size ordering:
  // 1L is the smallest trainable-capacity baseline among conv families.
  auto count = [](Arch a) {
    nn::Model m = make_arch(a, {1, 16, 16}, 2, 1);
    return m.num_parameters();
  };
  EXPECT_LT(count(Arch::kMobileNet), count(Arch::kDenseNet));
  EXPECT_GT(count(Arch::kBase), 0u);
}

TEST(ModelZoo, ArchNamesMatchPaper) {
  EXPECT_EQ(arch_name(Arch::kBase), "Base");
  EXPECT_EQ(arch_name(Arch::kDenseNet), "DenseNet");
  EXPECT_EQ(arch_name(Arch::kMobileNet), "MobileNet");
  EXPECT_EQ(arch_name(Arch::kResNet), "ResNet");
  EXPECT_EQ(arch_name(Arch::kOneLayer), "1L");
}

TEST(ModelZoo, ConvFamiliesRejectTinyInputs) {
  EXPECT_THROW(make_base_cnn({1, 4, 4}, 2, 1), CheckError);
  EXPECT_THROW(make_mini_resnet({1, 16}, 2, 1), CheckError);
}

TEST(ModelZoo, KpmDnnMatchesPaperLayout) {
  // Dense [64, 32, 16] + head: 4·64+64 + 64·32+32 + 32·16+16 + 16·2+2.
  nn::Model m = make_kpm_dnn(4, 2, 1);
  EXPECT_EQ(m.num_parameters(),
            static_cast<std::size_t>(4 * 64 + 64 + 64 * 32 + 32 + 32 * 16 +
                                     16 + 16 * 2 + 2));
}

TEST(ModelZoo, PowerSavingCnnSixOutputs) {
  nn::Model m = make_power_saving_cnn({1, 12, 9}, 6, 1);
  Rng rng(4);
  const nn::Tensor x = nn::Tensor::uniform({3, 1, 12, 9}, rng, 0.0f, 1.0f);
  EXPECT_EQ(m.forward(x).shape(), (nn::Shape{3, 6}));
}

TEST(ModelZoo, DeterministicForSeed) {
  nn::Model a = make_base_cnn({1, 16, 16}, 2, 42);
  nn::Model b = make_base_cnn({1, 16, 16}, 2, 42);
  Rng rng(5);
  const nn::Tensor x = nn::Tensor::uniform({1, 1, 16, 16}, rng, 0.0f, 1.0f);
  const nn::Tensor la = a.forward(x);
  const nn::Tensor lb = b.forward(x);
  for (std::size_t i = 0; i < la.numel(); ++i) EXPECT_EQ(la[i], lb[i]);
}

// --------------------------------------------- Near-RT RIC app scaffolding

class NearRtAppsTest : public ::testing::Test {
 protected:
  NearRtAppsTest()
      : op_("op", "sec"),
        svc_(&op_, &rbac_),
        ric_(&rbac_, &svc_, /*control_window_ms=*/1000.0) {
    // Victim role: read telemetry, publish decisions, steer RAN.
    rbac_.define_role("ic-xapp",
                      {oran::Permission{"telemetry/*", true, false},
                       oran::Permission{"decisions", true, true},
                       oran::Permission{"e2/control", false, true}});
    // Over-permissive role (the misconfiguration): telemetry WRITE.
    rbac_.define_role("kpi-processor",
                      {oran::Permission{"telemetry/*", true, true},
                       oran::Permission{"decisions", true, false}});
    ric_.connect_e2(&node_);
  }

  std::string onboard(const std::string& name, const std::string& role) {
    oran::AppDescriptor d;
    d.name = name;
    d.version = "1";
    d.vendor = "v";
    d.payload = "p";
    d.requested_role = role;
    return svc_.onboard(op_.package(d)).app_id;
  }

  oran::E2Indication kpm_indication(float sinr, std::uint64_t tti) {
    oran::E2Indication ind;
    ind.ran_node_id = "ran-1";
    ind.tti = tti;
    ind.kind = oran::IndicationKind::kKpm;
    ind.payload = nn::Tensor({2}, std::vector<float>{sinr, 1.0f - sinr});
    return ind;
  }

  class FakeE2Node : public oran::E2Node {
   public:
    void handle_control(const oran::E2Control& c) override {
      controls.push_back(c);
    }
    std::string node_id() const override { return "ran-1"; }
    std::vector<oran::E2Control> controls;
  };

  oran::Rbac rbac_;
  oran::Operator op_;
  oran::OnboardingService svc_;
  oran::NearRtRic ric_;
  FakeE2Node node_;
};

/// A 2-feature IC model: interference iff feature0 < 0.5 (low SINR).
nn::Model tiny_ic_model() {
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Dense>(2, 2);
  nn::Model m("TinyIc", std::move(seq), {2}, 2);
  std::vector<nn::Tensor> w;
  w.push_back(nn::Tensor({2, 2}, {8.0f, 0.0f, -8.0f, 0.0f}));
  w.push_back(nn::Tensor({2}, {-4.0f, 4.0f}));
  m.set_weights(w);
  return m;
}

TEST_F(NearRtAppsTest, IcXAppDetectsInterferenceAndGoesAdaptive) {
  auto app = std::make_shared<IcXApp>(tiny_ic_model(),
                                      oran::IndicationKind::kKpm, 13);
  ASSERT_TRUE(ric_.register_xapp(app, onboard("ic", "ic-xapp"), 10));
  ric_.deliver_indication(kpm_indication(/*sinr=*/0.1f, 1));  // jammed
  ASSERT_EQ(node_.controls.size(), 1u);
  EXPECT_EQ(node_.controls[0].action, oran::ControlAction::kSetAdaptiveMcs);
  EXPECT_EQ(app->interference_detected(), 1u);
}

TEST_F(NearRtAppsTest, IcXAppCleanChannelGoesFixed) {
  auto app = std::make_shared<IcXApp>(tiny_ic_model(),
                                      oran::IndicationKind::kKpm, 13);
  ric_.register_xapp(app, onboard("ic", "ic-xapp"), 10);
  ric_.deliver_indication(kpm_indication(/*sinr=*/0.9f, 1));
  ASSERT_EQ(node_.controls.size(), 1u);
  EXPECT_EQ(node_.controls[0].action, oran::ControlAction::kSetFixedMcs);
  EXPECT_EQ(node_.controls[0].fixed_mcs_index, 13);
}

TEST_F(NearRtAppsTest, IcXAppPublishesPrediction) {
  auto app = std::make_shared<IcXApp>(tiny_ic_model(),
                                      oran::IndicationKind::kKpm, 13);
  ric_.register_xapp(app, onboard("ic", "ic-xapp"), 10);
  ric_.deliver_indication(kpm_indication(0.1f, 1));
  std::string pred;
  ASSERT_EQ(ric_.sdl().read_text(oran::kRicPlatformId, oran::kNsDecisions,
                                 "ic/ran-1", pred),
            oran::SdlStatus::kOk);
  EXPECT_EQ(pred, std::to_string(ran::kLabelInterference));
}

TEST_F(NearRtAppsTest, MaliciousXAppObservesInputLabelPairs) {
  auto victim = std::make_shared<IcXApp>(tiny_ic_model(),
                                         oran::IndicationKind::kKpm, 13);
  auto spy = std::make_shared<MaliciousXApp>(oran::IndicationKind::kKpm);
  ric_.register_xapp(spy, onboard("spy", "kpi-processor"), 1);
  ric_.register_xapp(victim, onboard("ic", "ic-xapp"), 10);

  // Alternate jammed/clean indications; the spy pairs each input with the
  // victim's (lagged) published label.
  for (int t = 0; t < 6; ++t)
    ric_.deliver_indication(kpm_indication(t % 2 == 0 ? 0.1f : 0.9f,
                                           static_cast<std::uint64_t>(t)));
  ASSERT_EQ(spy->observed_inputs().size(), 5u);
  ASSERT_EQ(spy->observed_labels().size(), 5u);
  // Observation i pairs input i with the victim's label for input i.
  for (std::size_t i = 0; i < spy->observed_labels().size(); ++i) {
    const int expected =
        i % 2 == 0 ? ran::kLabelInterference : ran::kLabelClean;
    EXPECT_EQ(spy->observed_labels()[i], expected) << "observation " << i;
  }
}

TEST_F(NearRtAppsTest, MaliciousXAppUapFlipsVictimDecision) {
  auto victim = std::make_shared<IcXApp>(tiny_ic_model(),
                                         oran::IndicationKind::kKpm, 13);
  auto attacker = std::make_shared<MaliciousXApp>(oran::IndicationKind::kKpm);
  ric_.register_xapp(attacker, onboard("atk", "kpi-processor"), 1);
  ric_.register_xapp(victim, onboard("ic", "ic-xapp"), 10);

  // UAP raising the SINR feature hides the jammer from the victim.
  attacker->arm_uap(nn::Tensor({2}, std::vector<float>{0.8f, 0.0f}));
  ric_.deliver_indication(kpm_indication(/*sinr=*/0.1f, 1));  // jammed!
  ASSERT_EQ(node_.controls.size(), 1u);
  EXPECT_EQ(node_.controls[0].action, oran::ControlAction::kSetFixedMcs)
      << "victim should have been fooled into 'no interference'";
  EXPECT_EQ(attacker->perturbations_applied(), 1u);
}

TEST_F(NearRtAppsTest, CorrectlyScopedPolicyBlocksInjection) {
  // Same attack, but the attacker's role is read-only on telemetry —
  // the misconfiguration is absent and the victim decides correctly.
  rbac_.define_role("kpi-reader",
                    {oran::Permission{"telemetry/*", true, false},
                     oran::Permission{"decisions", true, false}});
  auto victim = std::make_shared<IcXApp>(tiny_ic_model(),
                                         oran::IndicationKind::kKpm, 13);
  auto attacker = std::make_shared<MaliciousXApp>(oran::IndicationKind::kKpm);
  ric_.register_xapp(attacker, onboard("atk", "kpi-reader"), 1);
  ric_.register_xapp(victim, onboard("ic", "ic-xapp"), 10);
  attacker->arm_uap(nn::Tensor({2}, std::vector<float>{0.8f, 0.0f}));
  ric_.deliver_indication(kpm_indication(0.1f, 1));
  ASSERT_EQ(node_.controls.size(), 1u);
  EXPECT_EQ(node_.controls[0].action, oran::ControlAction::kSetAdaptiveMcs);
  EXPECT_EQ(attacker->perturbations_applied(), 0u);
}

TEST_F(NearRtAppsTest, InputSpecificGeneratorDeadlineMisses) {
  auto attacker = std::make_shared<MaliciousXApp>(oran::IndicationKind::kKpm);
  ric_.register_xapp(attacker, onboard("atk", "kpi-processor"), 1);
  // A deliberately slow generator with an impossible deadline: every
  // attempt must be recorded as a miss and the SDL left untouched.
  attacker->arm_input_specific(
      [](const nn::Tensor& x) {
        // Busy-work that feeds the result so the optimiser cannot remove
        // it; guarantees the generation exceeds the 1 µs deadline.
        double sink = 0.0;
        for (int i = 0; i < 2000000; ++i) sink += std::sin(i * 1e-6);
        nn::Tensor adv = x;
        adv[0] = 0.99f + static_cast<float>(sink) * 1e-20f;
        return adv;
      },
      /*deadline_ms=*/1e-3);
  ric_.deliver_indication(kpm_indication(0.1f, 1));
  EXPECT_EQ(attacker->deadline_misses(), 1u);
  EXPECT_EQ(attacker->perturbations_applied(), 0u);
  nn::Tensor stored;
  ric_.sdl().read_tensor(oran::kRicPlatformId, oran::kNsKpm, "ran-1/current",
                         stored);
  EXPECT_FLOAT_EQ(stored[0], 0.1f);  // clean sample went through
}

// ------------------------------------------------ Non-RT RIC applications

class NonRtAppsTest : public ::testing::Test {
 protected:
  NonRtAppsTest()
      : op_("op", "sec"), svc_(&op_, &rbac_), ric_(&rbac_, &svc_, 12) {
    rbac_.define_role("ps-rapp",
                      {oran::Permission{"pm", true, false},
                       oran::Permission{"rapp-decisions", true, true},
                       oran::Permission{"o1/cell-control", false, true}});
    rbac_.define_role("pm-aggregator",
                      {oran::Permission{"pm", true, true},
                       oran::Permission{"rapp-decisions", true, false}});
    ric_.connect_o1(&emulator_);
  }

  std::string onboard(const std::string& name, const std::string& role) {
    oran::AppDescriptor d;
    d.name = name;
    d.version = "1";
    d.vendor = "v";
    d.payload = "p";
    d.type = oran::AppType::kRApp;
    d.requested_role = role;
    return svc_.onboard(op_.package(d)).app_id;
  }

  oran::Rbac rbac_;
  oran::Operator op_;
  oran::OnboardingService svc_;
  oran::NonRtRic ric_;
  rictest::Emulator emulator_{rictest::EmulatorConfig{}};
};

/// A trained power-saving model (trained on oracle labels, small corpus).
nn::Model trained_ps_model() {
  rictest::CityTraceConfig cfg;
  cfg.days = 6;
  const data::Dataset d = rictest::make_power_saving_dataset(cfg, 12, 8);
  nn::Model m = make_power_saving_cnn({1, 12, 9}, 6, 21);
  test::quick_fit(m, d, /*epochs=*/15, /*lr=*/5e-3f);
  return m;
}

TEST_F(NonRtAppsTest, RAppMakesDecisionsEveryPeriod) {
  auto app = std::make_shared<PowerSavingRApp>(trained_ps_model());
  ASSERT_TRUE(ric_.register_rapp(app, onboard("ps", "ps-rapp"), 10));
  emulator_.advance();
  ric_.step();
  EXPECT_EQ(app->decisions_made(), 3u);  // one per sector
  EXPECT_EQ(app->last_decisions().size(), 3u);
}

TEST_F(NonRtAppsTest, RAppDeactivatesIdleCapacityCellsOffPeak) {
  auto app = std::make_shared<PowerSavingRApp>(trained_ps_model());
  ric_.register_rapp(app, onboard("ps", "ps-rapp"), 10);
  // First periods of the day: bell-profile cells idle. Warm up the window
  // so the history reflects sustained low load.
  for (int i = 0; i < 12; ++i) {
    emulator_.advance();
    ric_.step();
  }
  EXPECT_GT(app->cells_deactivated(), 0u);
}

TEST_F(NonRtAppsTest, MaliciousRAppObservesDecisions) {
  auto victim = std::make_shared<PowerSavingRApp>(trained_ps_model());
  auto spy = std::make_shared<MaliciousRApp>();
  ric_.register_rapp(spy, onboard("spy", "pm-aggregator"), 1);
  ric_.register_rapp(victim, onboard("ps", "ps-rapp"), 10);
  for (int i = 0; i < 5; ++i) {
    emulator_.advance();
    ric_.step();
  }
  EXPECT_EQ(spy->observed_inputs().size(), 4u);  // one-dispatch lag
  for (const int label : spy->observed_labels()) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, rictest::kPsActionCount);
  }
}

TEST_F(NonRtAppsTest, MaliciousRAppPerturbsPmHistory) {
  auto attacker = std::make_shared<MaliciousRApp>();
  ric_.register_rapp(attacker, onboard("atk", "pm-aggregator"), 1);
  nn::Tensor uap({1, 12, 9});
  uap.fill(-0.3f);  // suppress 30 PRB points everywhere
  attacker->arm_targeted_uap(uap);
  for (int i = 0; i < 24; ++i) emulator_.advance();  // load the network
  ric_.step();
  EXPECT_EQ(attacker->perturbations_applied(), 1u);
  nn::Tensor hist;
  ric_.sdl().read_tensor(oran::kRicPlatformId, oran::kNsPm,
                         oran::kKeyPrbHistory, hist);
  // The victim-facing history must be lower than the emulator's truth.
  const oran::PmReport pm = emulator_.collect_pm();
  EXPECT_LT(hist.at2(11, 3), pm.cells.at(4).prb_util_dl + 1e-6);
}

TEST_F(NonRtAppsTest, ReadOnlyAttackerCannotPerturb) {
  rbac_.define_role("pm-reader", {oran::Permission{"pm", true, false},
                                  oran::Permission{"rapp-decisions", true,
                                                   false}});
  auto attacker = std::make_shared<MaliciousRApp>();
  ric_.register_rapp(attacker, onboard("atk", "pm-reader"), 1);
  nn::Tensor uap({1, 12, 9});
  uap.fill(-0.3f);
  attacker->arm_targeted_uap(uap);
  emulator_.advance();
  ric_.step();
  EXPECT_EQ(attacker->perturbations_applied(), 0u);
}

}  // namespace
}  // namespace orev::apps
