// City-scale emulation plane (DESIGN.md §16): deterministic sharded
// simulator, binary KPM codec, CRC-32C, checkpointing, striped SDL
// equivalence, and the NearRtRic binary/move delivery paths.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "citysim/citysim.hpp"
#include "oran/e2_codec.hpp"
#include "oran/near_rt_ric.hpp"
#include "oran/onboarding.hpp"
#include "oran/sdl.hpp"
#include "util/obs/obs.hpp"
#include "util/persist/persist.hpp"
#include "util/thread_pool.hpp"

namespace orev {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(util::num_threads()) {}
  ~ThreadGuard() { util::set_num_threads(saved_); }

 private:
  int saved_;
};

// A small city that still exercises every mechanism: multiple shards,
// frequent handovers, several epochs of reports.
citysim::CityConfig small_city() {
  citysim::CityConfig cfg;
  cfg.cells = 40;
  cfg.ues = 500;
  cfg.shards = 8;
  cfg.seed = 0x5eed;
  cfg.epoch_us = 100000;
  cfg.report_period_us = 100000;
  cfg.mean_dwell_us = 150000;  // several moves per UE across the run
  return cfg;
}

// ------------------------------------------------------------- CRC-32C

TEST(Crc32c, KnownAnswerAndChaining) {
  // iSCSI/RFC 3720 check value — also pins hw/sw dispatch agreement,
  // since whichever implementation runs must produce this constant.
  EXPECT_EQ(persist::crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(persist::crc32c(std::string_view{}), 0u);
  const std::string a = "city-scale ";
  const std::string b = "emulation plane";
  EXPECT_EQ(persist::crc32c(b, persist::crc32c(a)),
            persist::crc32c(a + b));
  // Odd lengths hit the byte-tail path of both implementations.
  for (std::size_t n = 1; n <= 17; ++n) {
    const std::string s(n, static_cast<char>(0xa5));
    EXPECT_NE(persist::crc32c(s), 0u) << "length " << n;
  }
}

// ------------------------------------------------------- binary KPM codec

TEST(KpmCodec, RoundTripPreservesEveryField) {
  oran::KpmFrameArena arena;
  std::vector<float> feats{1.5f, -2.25f, 0.0f, 100.0f, 0.125f};
  const std::string_view frame =
      arena.encode(4242, 77, oran::IndicationKind::kKpm,
                   std::span<const float>(feats));
  EXPECT_EQ(frame.size(), oran::kpm_frame_size(feats.size()));

  oran::KpmFrameView v;
  ASSERT_EQ(oran::decode_kpm_frame(frame, v), oran::KpmDecodeStatus::kOk);
  EXPECT_EQ(v.cell_id, 4242u);
  EXPECT_EQ(v.tti, 77u);
  EXPECT_EQ(v.kind, oran::IndicationKind::kKpm);
  ASSERT_EQ(v.feature_count, feats.size());
  for (std::size_t i = 0; i < feats.size(); ++i)
    EXPECT_EQ(v.feature(i), feats[i]) << "feature " << i;
}

TEST(KpmCodec, EveryTruncationIsRejected) {
  oran::KpmFrameArena arena;
  std::vector<float> feats(8, 0.5f);
  const std::string good(arena.encode(1, 2, oran::IndicationKind::kKpm,
                                      std::span<const float>(feats)));
  oran::KpmFrameView v;
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_NE(oran::decode_kpm_frame(good.substr(0, n), v),
              oran::KpmDecodeStatus::kOk)
        << "prefix of " << n << " bytes decoded";
  }
}

TEST(KpmCodec, EverySingleBitFlipFailsTheCrc) {
  oran::KpmFrameArena arena;
  std::vector<float> feats(6);
  for (std::size_t i = 0; i < feats.size(); ++i)
    feats[i] = static_cast<float>(i) * 0.25f;
  const std::string good(arena.encode(9, 3, oran::IndicationKind::kKpm,
                                      std::span<const float>(feats)));
  oran::KpmFrameView v;
  ASSERT_EQ(oran::decode_kpm_frame(good, v), oran::KpmDecodeStatus::kOk);
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = good;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(oran::decode_kpm_frame(flipped, v),
                oran::KpmDecodeStatus::kOk)
          << "flip at byte " << byte << " bit " << bit << " decoded";
    }
  }
}

TEST(KpmCodec, DeclaredFeatureCountIsBoundsChecked) {
  oran::KpmFrameArena arena;
  std::vector<float> feats(4, 1.0f);
  std::string frame(arena.encode(1, 1, oran::IndicationKind::kKpm,
                                 std::span<const float>(feats)));
  // Inflate the declared count past the actual frame size (offset 6,
  // u16 LE) — the decoder must reject before touching feature bytes.
  const std::uint16_t huge = 0x4000;
  std::memcpy(frame.data() + 6, &huge, sizeof(huge));
  oran::KpmFrameView v;
  EXPECT_EQ(oran::decode_kpm_frame(frame, v),
            oran::KpmDecodeStatus::kTruncated);
}

// --------------------------------------------------- simulator determinism

TEST(CitySim, DigestsAreThreadCountInvariant) {
  ThreadGuard guard;
  const citysim::CityConfig cfg = small_city();
  std::string event_ref;
  std::string state_ref;
  for (const int threads : {1, 2, 4}) {
    util::set_num_threads(threads);
    citysim::CitySim sim(cfg);
    sim.run_epochs(6);
    if (event_ref.empty()) {
      event_ref = sim.event_digest();
      state_ref = sim.state_digest();
      EXPECT_FALSE(event_ref.empty());
    } else {
      EXPECT_EQ(sim.event_digest(), event_ref) << threads << " threads";
      EXPECT_EQ(sim.state_digest(), state_ref) << threads << " threads";
    }
  }
}

TEST(CitySim, GoldenDigestLocksDuplicateTimestampTieBreak) {
  ThreadGuard guard;
  citysim::CityConfig cfg = small_city();
  cfg.handover_prob = 1.0;  // every executed move relocates its UE
  for (const int threads : {1, 4}) {
    util::set_num_threads(threads);
    citysim::CitySim sim(cfg);
    // Pin a burst of UEs — spanning several shards — to one identical
    // virtual time. Pop order of the tie is (time, shard, seq), so the
    // digest below changes if the tie-break ever changes.
    for (std::uint32_t ue = 0; ue < 64; ++ue) sim.pin_ue_move(ue, 50000);
    sim.run_epochs(3);
    EXPECT_EQ(sim.event_digest(),
              "ecb4538abbe206f211316ea835ed843d3f15c98f38b8fdbedc3dd2267c"
              "106838")
        << "at " << threads << " threads";
  }
}

TEST(CitySim, EpochHorizonEventRunsInTheNextEpoch) {
  ThreadGuard guard;
  util::set_num_threads(1);
  citysim::CityConfig cfg = small_city();
  cfg.handover_prob = 1.0;
  cfg.mean_dwell_us = 10 * cfg.epoch_us;  // background mobility quiet
  citysim::CitySim sim(cfg);
  const std::uint32_t ue = 3;
  const std::uint32_t before = sim.ue_cell(ue);
  // Exactly on the first horizon: the phase runs events strictly before
  // the horizon, so the move must wait for epoch 2.
  sim.pin_ue_move(ue, cfg.epoch_us);
  sim.run_epochs(1);
  EXPECT_EQ(sim.ue_cell(ue), before) << "horizon event ran a phase early";
  sim.run_epochs(1);
  EXPECT_NE(sim.ue_cell(ue), before) << "horizon event never ran";
}

TEST(CitySim, CrossShardHandoverLandsAtTheBarrier) {
  ThreadGuard guard;
  util::set_num_threads(1);
  citysim::CityConfig cfg = small_city();
  cfg.handover_prob = 1.0;
  cfg.mean_dwell_us = 10 * cfg.epoch_us;
  citysim::CitySim sim(cfg);
  const std::uint32_t ue = 3;
  const std::uint32_t src = sim.ue_cell(ue);
  sim.pin_ue_move(ue, cfg.epoch_us / 2);
  sim.run_epochs(1);
  const std::uint32_t dst = sim.ue_cell(ue);
  ASSERT_NE(dst, src);
  // Ownership already moved (counts stay conserved) even if the handover
  // crossed shards and travelled through the barrier message buffer.
  std::uint64_t attached = 0;
  for (std::uint32_t c = 0; c < cfg.cells; ++c)
    attached += sim.cell_ue_count(c);
  EXPECT_EQ(attached, cfg.ues);
  // Background UEs (first moves are dwell-staggered) hand over too; the
  // pinned one guarantees the counter is live.
  const citysim::CityStats s = sim.stats();
  EXPECT_GE(s.handovers_intra + s.handovers_cross, 1u);
}

TEST(CitySim, ZeroUeCellsStillReport) {
  ThreadGuard guard;
  util::set_num_threads(2);
  citysim::CityConfig cfg = small_city();
  cfg.ues = 5;  // 40 cells, 5 UEs: most cells are empty
  citysim::CitySim sim(cfg);
  std::uint32_t empty_cells = 0;
  for (std::uint32_t c = 0; c < cfg.cells; ++c)
    if (sim.cell_ue_count(c) == 0) ++empty_cells;
  ASSERT_GT(empty_cells, 0u);
  sim.run_epochs(3);
  const citysim::CityStats s = sim.stats();
  // Every cell reports every epoch, populated or not. The first report is
  // scheduled exactly on the epoch-1 horizon (strictly-before semantics),
  // so it executes in epoch 2: 3 epochs yield 2 reports per cell.
  EXPECT_EQ(s.reports, std::uint64_t{2} * cfg.cells);
  EXPECT_EQ(s.frames_delivered, s.reports);
  EXPECT_EQ(sim.availability(), 1.0);
}

// ------------------------------------------------------------ checkpointing

TEST(CitySim, CheckpointResumeMatchesUninterruptedRun) {
  ThreadGuard guard;
  util::set_num_threads(2);
  const citysim::CityConfig cfg = small_city();
  const std::string path = ::testing::TempDir() + "citysim_ckpt.bin";

  citysim::CitySim uninterrupted(cfg);
  uninterrupted.run_epochs(5);

  citysim::CitySim first(cfg);
  first.run_epochs(2);
  ASSERT_TRUE(first.save(path).ok()) << "checkpoint save failed";

  citysim::CitySim resumed(cfg);
  ASSERT_TRUE(resumed.load(path).ok()) << "checkpoint load failed";
  EXPECT_EQ(resumed.epoch(), 2u);
  EXPECT_EQ(resumed.state_digest(), first.state_digest());
  resumed.run_epochs(3);
  EXPECT_EQ(resumed.state_digest(), uninterrupted.state_digest());
}

TEST(CitySim, CheckpointRefusesAForeignConfig) {
  ThreadGuard guard;
  util::set_num_threads(1);
  const std::string path = ::testing::TempDir() + "citysim_ckpt_fp.bin";
  citysim::CitySim sim(small_city());
  sim.run_epochs(1);
  ASSERT_TRUE(sim.save(path).ok());
  citysim::CityConfig other = small_city();
  other.cells += 1;
  citysim::CitySim reject(other);
  const persist::Status st = reject.load(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code, persist::StatusCode::kMismatch);
}

// ----------------------------------------------------- striped SDL semantics

TEST(SdlStriping, StripeCountIsSemanticallyInvisible) {
  oran::Rbac rbac;
  rbac.define_role("writer",
                   {oran::Permission{"*", /*read=*/true, /*write=*/true}});
  rbac.assign_role("app", "writer");
  oran::Sdl one(&rbac, 1);
  oran::Sdl many(&rbac, oran::Sdl::kDefaultStripes);
  const nn::Shape shape{4};
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 40; ++k) {
      std::vector<float> payload(4, static_cast<float>(round * 100 + k));
      const std::string key = "cell-" + std::to_string(k);
      for (oran::Sdl* sdl : {&one, &many}) {
        ASSERT_EQ(sdl->write_tensor("app", "telemetry/kpm", key,
                                    nn::Tensor(shape, payload)),
                  oran::SdlStatus::kOk);
      }
    }
  }
  for (int k = 0; k < 40; ++k) {
    const std::string key = "cell-" + std::to_string(k);
    nn::Tensor a;
    nn::Tensor b;
    ASSERT_EQ(one.read_tensor("app", "telemetry/kpm", key, a),
              oran::SdlStatus::kOk);
    ASSERT_EQ(many.read_tensor("app", "telemetry/kpm", key, b),
              oran::SdlStatus::kOk);
    ASSERT_EQ(a.numel(), b.numel());
    for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
    EXPECT_EQ(one.version("telemetry/kpm", key),
              many.version("telemetry/kpm", key));
    EXPECT_EQ(one.version("telemetry/kpm", key).value_or(0), 3u);
  }
  EXPECT_EQ(one.read_tensor("app", "telemetry/kpm", "cell-999",
                            *std::make_unique<nn::Tensor>()),
            oran::SdlStatus::kNotFound);
}

// ------------------------------------------------- RIC delivery paths

struct RicFixture {
  oran::Rbac rbac;
  oran::Operator op{"op", "sec"};
  oran::OnboardingService svc{&op, &rbac};
  oran::NearRtRic ric{&rbac, &svc};
};

TEST(RicDelivery, MovePathStoresThePayloadAndCountsBytes) {
  RicFixture fx;
  obs::Counter& bytes = obs::counter("oran.e2.indication_bytes");
  const std::uint64_t before = bytes.value();

  oran::E2Indication ind;
  ind.ran_node_id = "cell-7";
  ind.tti = 1;
  ind.kind = oran::IndicationKind::kKpm;
  ind.payload = nn::Tensor({4}, {1.0f, 2.0f, 3.0f, 4.0f});
  ASSERT_TRUE(fx.ric.deliver_indication(std::move(ind)));
  EXPECT_EQ(bytes.value() - before, 4 * sizeof(float));

  nn::Tensor stored;
  ASSERT_EQ(fx.ric.sdl().read_tensor(oran::kRicPlatformId, oran::kNsKpm,
                                     "cell-7/current", stored),
            oran::SdlStatus::kOk);
  ASSERT_EQ(stored.numel(), 4u);
  EXPECT_EQ(stored[2], 3.0f);
}

TEST(RicDelivery, BinaryFramePathMatchesTheTensorPath) {
  RicFixture fx;
  std::vector<float> feats{0.5f, 1.5f, 2.5f};
  oran::KpmFrameArena arena;
  const std::string_view frame =
      arena.encode(11, 9, oran::IndicationKind::kKpm,
                   std::span<const float>(feats));
  ASSERT_TRUE(fx.ric.deliver_kpm_frame(frame));
  EXPECT_EQ(fx.ric.frames_rejected(), 0u);

  nn::Tensor stored;
  ASSERT_EQ(fx.ric.sdl().read_tensor(oran::kRicPlatformId, oran::kNsKpm,
                                     "cell-11/current", stored),
            oran::SdlStatus::kOk);
  ASSERT_EQ(stored.numel(), feats.size());
  for (std::size_t i = 0; i < feats.size(); ++i)
    EXPECT_EQ(stored[i], feats[i]);

  // Repeated frames for the same cell reuse the in-place write path;
  // the entry version must keep advancing.
  feats[0] = 9.0f;
  ASSERT_TRUE(fx.ric.deliver_kpm_frame(
      arena.encode(11, 10, oran::IndicationKind::kKpm,
                   std::span<const float>(feats))));
  ASSERT_EQ(fx.ric.sdl().read_tensor(oran::kRicPlatformId, oran::kNsKpm,
                                     "cell-11/current", stored),
            oran::SdlStatus::kOk);
  EXPECT_EQ(stored[0], 9.0f);
  EXPECT_GE(fx.ric.sdl().version(oran::kNsKpm, "cell-11/current").value_or(0),
            2u);
}

TEST(RicDelivery, MalformedFramesAreCountedNotDispatched) {
  RicFixture fx;
  std::vector<float> feats(8, 0.25f);
  oran::KpmFrameArena arena;
  const std::string good(arena.encode(2, 1, oran::IndicationKind::kKpm,
                                      std::span<const float>(feats)));
  EXPECT_FALSE(fx.ric.deliver_kpm_frame(good.substr(0, good.size() - 1)));
  std::string flipped = good;
  flipped[oran::kKpmFrameHeaderBytes] ^= 0x01;
  EXPECT_FALSE(fx.ric.deliver_kpm_frame(flipped));
  EXPECT_EQ(fx.ric.frames_rejected(), 2u);
}

}  // namespace
}  // namespace orev
