// Defense-plane tests (DESIGN.md §14): the three inline detectors
// (calibration profile, perturbation-norm screen, ensemble disagreement)
// and the bounded fine-tuning queue; the DefensePlane's quarantine ring,
// LKG-poisoning resistance, burst flight trigger with hysteresis, and
// checkpoint guard; and the ServeEngine integration — kQuarantined
// completions, byte-identical decisions across thread counts, screening on
// the degraded synchronous path, the config fingerprint, and the IC xApp's
// end-to-end quarantine → fail-safe → attestation-alert chain.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "apps/ic_xapp.hpp"
#include "apps/model_zoo.hpp"
#include "defense/detectors.hpp"
#include "nn/loss.hpp"
#include "oran/near_rt_ric.hpp"
#include "serve/serve.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/obs/flight.hpp"
#include "util/persist/bytes.hpp"
#include "util/thread_pool.hpp"

namespace orev {
namespace {

using serve::DefenseConfig;
using serve::DefensePlane;
using serve::DefenseVerdict;
using serve::ServeConfig;
using serve::ServeEngine;
using serve::ServeResult;
using serve::ServeStatus;

class ThreadGuard {
 public:
  ThreadGuard() : saved_(util::num_threads()) {}
  ~ThreadGuard() { util::set_num_threads(saved_); }

 private:
  int saved_;
};

/// KPM-style victim matching the serving tests: dense DNN over 4 features.
nn::Model kpm_model(std::uint64_t seed = 17) {
  return apps::make_kpm_dnn(/*num_features=*/4, /*num_classes=*/4, seed);
}

/// One clean sample: tight cluster around 0.5 per feature (σ = 0.05).
nn::Tensor cluster_row(Rng& rng) {
  nn::Tensor t({4});
  for (std::size_t j = 0; j < 4; ++j)
    t[j] = 0.5f + rng.normal(0.0f, 0.05f);
  return t;
}

/// An out-of-distribution sample: every feature ~12 cluster σ away.
nn::Tensor far_row(Rng& rng) {
  nn::Tensor t = cluster_row(rng);
  for (std::size_t j = 0; j < 4; ++j) t[j] += 0.6f;
  return t;
}

/// [m, 4] batch of clean cluster rows for profile calibration.
nn::Tensor cluster_rows(int m, std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor rows({m, 4});
  for (int i = 0; i < m; ++i) {
    const nn::Tensor r = cluster_row(rng);
    rows.set_batch(i, r);
  }
  return rows;
}

// ---------------------------------------------------- calibration profile --

TEST(CalibrationProfile, ScoresDistanceFromTheCleanDistribution) {
  defense::CalibrationProfile prof;
  nn::Tensor first({4}, 0.5f);
  prof.observe(first.raw(), first.numel());
  EXPECT_FALSE(prof.ready());  // variance needs two samples
  EXPECT_EQ(prof.score(first), 0.0);

  prof.observe_rows(cluster_rows(64, 0xca11));
  ASSERT_TRUE(prof.ready());
  EXPECT_EQ(prof.features(), 4u);
  EXPECT_EQ(prof.samples(), 65u);

  Rng rng(0x5c0);
  const double clean = prof.score(cluster_row(rng));
  const double adv = prof.score(far_row(rng));
  // A clean row's per-feature z's are ~N(0,1), so the normalized
  // Mahalanobis score sits near 1; the 12σ offset lands far above it.
  EXPECT_LT(clean, 4.0);
  EXPECT_GT(adv, 6.0);
  EXPECT_GT(adv, clean);

  // A row of the wrong width cannot be scored against this profile.
  nn::Tensor wrong({3}, 0.5f);
  EXPECT_EQ(prof.score(wrong), 0.0);
}

TEST(CalibrationProfile, RoundTripsThroughBytes) {
  defense::CalibrationProfile prof;
  prof.observe_rows(cluster_rows(32, 0xabe));

  persist::ByteWriter w;
  prof.save(w);
  persist::ByteReader r(w.buffer());
  defense::CalibrationProfile loaded;
  ASSERT_TRUE(loaded.load(r));

  EXPECT_EQ(loaded.samples(), prof.samples());
  Rng rng(0x99);
  for (int i = 0; i < 4; ++i) {
    const nn::Tensor probe = i % 2 == 0 ? cluster_row(rng) : far_row(rng);
    EXPECT_DOUBLE_EQ(loaded.score(probe), prof.score(probe)) << "probe " << i;
  }

  // A truncated stream must fail cleanly, not half-load.
  persist::ByteReader torn(
      std::string_view(w.buffer().data(), w.buffer().size() / 2));
  defense::CalibrationProfile partial;
  EXPECT_FALSE(partial.load(torn));
}

// ---------------------------------------------------------- norm screen --

/// Calibrate one flow with a gentle random walk (per-feature steps of
/// ±0.01), returning the walk's final row (the flow's LKG afterwards).
nn::Tensor calibrate_walk(defense::NormScreen& screen, const std::string& key,
                          int steps, std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor row({4}, 0.5f);
  for (int v = 0; v < steps; ++v) {
    screen.calibrate(key, static_cast<std::uint64_t>(v), row.raw(),
                     row.numel());
    for (std::size_t j = 0; j < 4; ++j)
      row[j] += rng.uniform(-0.01f, 0.01f);
  }
  return row;
}

TEST(NormScreen, FlagsStepsFarBeyondTheNaturalWalk) {
  defense::NormScreen screen;
  const nn::Tensor lkg = calibrate_walk(screen, "flow/a", 20, 0x4a1);
  ASSERT_TRUE(screen.ready());
  EXPECT_EQ(screen.flows(), 1u);

  // A natural-sized next step scores low; an ε=0.5 perturbation step is
  // many step-σ out.
  nn::Tensor natural = lkg;
  natural[0] += 0.008f;
  nn::Tensor adv = lkg;
  for (std::size_t j = 0; j < 4; ++j) adv[j] += 0.5f;
  const double z_nat = screen.score("flow/a", 20, natural.raw(), 4);
  const double z_adv = screen.score("flow/a", 20, adv.raw(), 4);
  EXPECT_LT(z_nat, 4.0);
  EXPECT_GT(z_adv, 4.0);

  // First-sight flows, empty keys and shape changes all opt out (0).
  EXPECT_EQ(screen.score("flow/unknown", 0, adv.raw(), 4), 0.0);
  EXPECT_EQ(screen.score("", 20, adv.raw(), 4), 0.0);
  EXPECT_EQ(screen.score("flow/a", 20, adv.raw(), 3), 0.0);
}

TEST(NormScreen, StalenessAndOutOfOrderVersionsDisableTheScreen) {
  defense::NormScreenConfig cfg;
  cfg.max_stale = 2;
  defense::NormScreen screen(cfg);
  const nn::Tensor lkg = calibrate_walk(screen, "flow/a", 20, 0x4a2);
  nn::Tensor adv = lkg;
  for (std::size_t j = 0; j < 4; ++j) adv[j] += 0.5f;

  // LKG is at version 19: lags of 1 and 2 score, 3 is past the bound,
  // and a version below the LKG (out-of-order submit) never scores.
  EXPECT_GT(screen.score("flow/a", 20, adv.raw(), 4), 4.0);
  EXPECT_GT(screen.score("flow/a", 21, adv.raw(), 4), 4.0);
  EXPECT_EQ(screen.score("flow/a", 22, adv.raw(), 4), 0.0);
  EXPECT_EQ(screen.score("flow/a", 18, adv.raw(), 4), 0.0);

  // reset_flow drops the LKG: the next sight is "first sight" again.
  screen.reset_flow("flow/a");
  EXPECT_EQ(screen.flows(), 0u);
  EXPECT_EQ(screen.score("flow/a", 20, adv.raw(), 4), 0.0);
}

TEST(NormScreen, RoundTripsThroughBytes) {
  defense::NormScreen screen;
  const nn::Tensor lkg = calibrate_walk(screen, "flow/a", 20, 0x4a3);
  calibrate_walk(screen, "flow/b", 10, 0x4a4);

  persist::ByteWriter w;
  screen.save(w);
  persist::ByteReader r(w.buffer());
  defense::NormScreen loaded;
  ASSERT_TRUE(loaded.load(r));

  EXPECT_EQ(loaded.calibration_steps(), screen.calibration_steps());
  EXPECT_EQ(loaded.flows(), screen.flows());
  nn::Tensor adv = lkg;
  for (std::size_t j = 0; j < 4; ++j) adv[j] += 0.3f;
  EXPECT_DOUBLE_EQ(loaded.score("flow/a", 20, adv.raw(), 4),
                   screen.score("flow/a", 20, adv.raw(), 4));
}

// ------------------------------------------------- ensemble disagreement --

TEST(EnsembleDisagreement, ScoresTheSiblingsDisbelief) {
  // The hand-weighted linear model is saturated: p(class 1 | (0.9, 0.9))
  // ≈ 1, so agreement scores ≈ 0 and dissent scores ≈ 1.
  defense::EnsembleDisagreement ens(test::known_linear_model());
  const nn::Tensor hi({2}, {0.9f, 0.9f});
  EXPECT_LT(ens.score(hi, 1), 0.1);
  EXPECT_GT(ens.score(hi, 0), 0.9);
  // Out-of-range primaries (a shed's −1, a bogus class) score full dissent.
  EXPECT_EQ(ens.score(hi, -1), 1.0);
  EXPECT_EQ(ens.score(hi, 5), 1.0);
}

// ------------------------------------------------------ fine-tune queue --

TEST(FineTuneQueue, StaysBoundedAndCountsDrops) {
  defense::FineTuneQueue q(3);
  EXPECT_EQ(q.capacity(), 3);
  EXPECT_EQ(defense::FineTuneQueue(0).capacity(), 1);  // floor, not a throw

  for (int i = 0; i < 5; ++i) {
    const bool pushed = q.push(nn::Tensor({2}, static_cast<float>(i)), i % 2);
    EXPECT_EQ(pushed, i < 3) << "push " << i;
  }
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.dropped(), 2u);

  const defense::FineTuneQueue::Batch b = q.batch();
  EXPECT_EQ(b.x.shape(), (nn::Shape{3, 2}));
  EXPECT_EQ(b.y, (std::vector<int>{0, 1, 0}));
  EXPECT_FLOAT_EQ(b.x.at2(2, 0), 2.0f);
}

TEST(FineTuneQueue, RoundTripsThroughBytes) {
  defense::FineTuneQueue q(4);
  q.push(nn::Tensor({2}, {0.1f, 0.2f}), 1);
  q.push(nn::Tensor({2}, {0.3f, 0.4f}), 0);

  persist::ByteWriter w;
  q.save(w);
  persist::ByteReader r(w.buffer());
  defense::FineTuneQueue loaded(4);
  ASSERT_TRUE(loaded.load(r));
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.dropped(), 0u);
  EXPECT_EQ(loaded.items()[1].label, 0);
  EXPECT_FLOAT_EQ(loaded.items()[1].sample[0], 0.3f);
}

TEST(HardenFineTunes, EmptyQueueIsANoOpAndTrainingRuns) {
  defense::FineTuneQueue empty(8);
  nn::Model victim = apps::make_kpm_dnn(2, 2, 31);
  nn::TrainConfig cfg;
  cfg.max_epochs = 5;
  cfg.learning_rate = 1e-2f;
  EXPECT_EQ(defense::harden(victim, empty, cfg).epochs_run, 0);

  // Inference-locked models cannot be hardened in place — clone first.
  nn::Model locked = victim.clone();
  locked.set_inference_only(true);
  defense::FineTuneQueue q(16);
  Rng rng(0x41);
  for (int i = 0; i < 16; ++i) {
    nn::Tensor s({2});
    const bool hi = i % 2 == 0;
    s[0] = (hi ? 0.8f : 0.2f) + rng.normal(0.0f, 0.03f);
    s[1] = (hi ? 0.8f : 0.2f) + rng.normal(0.0f, 0.03f);
    q.push(std::move(s), hi ? 1 : 0);
  }
  EXPECT_THROW(defense::harden(locked, q, cfg), CheckError);

  cfg.max_epochs = 30;
  const nn::TrainReport rep = defense::harden(victim, q, cfg);
  EXPECT_GT(rep.epochs_run, 0);
  // The queue doubles as its own validation split: after fine-tuning the
  // victim should classify the quarantined points by their labels.
  const defense::FineTuneQueue::Batch b = q.batch();
  EXPECT_GE(nn::accuracy(victim.forward(b.x), b.y), 0.9);
}

// ------------------------------------------------------- defense plane --

DefenseConfig tight_defense() {
  DefenseConfig cfg;
  cfg.enable = true;
  cfg.dist_threshold = 4.0;
  cfg.step_threshold = 4.0;
  cfg.ens_threshold = 0.9;
  return cfg;
}

TEST(DefensePlane, FlagsOutOfDistributionRowsAndBoundsTheQuarantineRing) {
  DefenseConfig cfg = tight_defense();
  cfg.quarantine_capacity = 2;
  DefensePlane plane(cfg, "ringtest");
  plane.calibrate(cluster_rows(64, 0xd1));

  Rng rng(0xd2);
  const DefenseVerdict clean = plane.screen(1, "", 0, cluster_row(rng), 1);
  EXPECT_FALSE(clean.flagged);
  EXPECT_LT(clean.score, 1.0);

  for (std::uint64_t id = 2; id <= 5; ++id) {
    const DefenseVerdict v = plane.screen(id, "", 0, far_row(rng), 1);
    EXPECT_TRUE(v.flagged) << "request " << id;
    EXPECT_GE(v.score, 1.0);
  }
  EXPECT_EQ(plane.screened(), 5u);
  EXPECT_EQ(plane.flagged(), 4u);
  // The ring keeps only the newest `quarantine_capacity` records.
  ASSERT_EQ(plane.quarantine().size(), 2u);
  EXPECT_EQ(plane.quarantine().front().request_id, 4u);
  EXPECT_EQ(plane.quarantine().back().request_id, 5u);
  // Each flagged row also fed the fine-tuning queue (reference label =
  // the primary's prediction here: no flow, so no temporal label exists).
  EXPECT_EQ(plane.finetune().size(), 4u);
  EXPECT_EQ(plane.finetune().items().front().label, 1);
}

TEST(DefensePlane, FlaggedRowsNeverAdvanceTheLastKnownGood) {
  DefensePlane plane(tight_defense(), "lkgtest");
  defense::NormScreen seed_screen;  // reuse the walk helper's row sequence
  const nn::Tensor last = calibrate_walk(seed_screen, "flow/a", 20, 0x1c6);
  // Rebuild the same walk inside the plane.
  Rng rng(0x1c6);
  nn::Tensor row({4}, 0.5f);
  nn::Tensor walk({20, 4});
  for (int v = 0; v < 20; ++v) {
    walk.set_batch(v, row);
    for (std::size_t j = 0; j < 4; ++j)
      row[j] += rng.uniform(-0.01f, 0.01f);
  }
  plane.calibrate_flow("flow/a", walk, /*first_version=*/0);

  nn::Tensor adv = last;
  for (std::size_t j = 0; j < 4; ++j) adv[j] += 0.5f;
  const DefenseVerdict v1 = plane.screen(1, "flow/a", 20, adv, 2);
  ASSERT_TRUE(v1.flagged);
  EXPECT_GE(v1.step_score, 4.0);

  // The flagged row must not have become the reference: the identical
  // perturbed row at the next version scores the exact same step (still
  // measured from the calibration walk's last row, version 19).
  const DefenseVerdict v2 = plane.screen(2, "flow/a", 21, adv, 2);
  EXPECT_TRUE(v2.flagged);
  EXPECT_DOUBLE_EQ(v2.step_score, v1.step_score);

  // A clean step is accepted and advances the LKG; from then on the same
  // adversarial point is measured from the fresh reference.
  nn::Tensor clean = last;
  clean[0] += 0.008f;
  const DefenseVerdict v3 = plane.screen(3, "flow/a", 22, clean, 2);
  EXPECT_FALSE(v3.flagged);
  const DefenseVerdict v4 = plane.screen(4, "flow/a", 23, adv, 2);
  EXPECT_TRUE(v4.flagged);
  EXPECT_NE(v4.step_score, v1.step_score);
}

TEST(DefensePlane, BurstTriggerLatchesFiresOnceAndRearms) {
  DefenseConfig cfg = tight_defense();
  cfg.burst_window = 4;
  cfg.burst_threshold = 0.5;
  DefensePlane plane(cfg, "bursttest");
  plane.calibrate(cluster_rows(64, 0xb1));

  Rng rng(0xb2);
  const std::uint64_t flight_before = obs::flight_trigger_count();
  std::uint64_t id = 0;
  // Flood: the window fills with flagged rows, the trigger fires exactly
  // once (latched), no matter how long the attack sustains.
  for (int i = 0; i < 8; ++i) plane.screen(++id, "", 0, far_row(rng), 1);
  EXPECT_EQ(plane.bursts(), 1u);
  EXPECT_EQ(obs::flight_trigger_count(), flight_before + 1);
  EXPECT_DOUBLE_EQ(plane.burst_rate(), 1.0);
  const std::string report = obs::flight_last_report();
  EXPECT_NE(report.find("\"schema\":\"orev-flight-v1\""), std::string::npos)
      << report;
  EXPECT_NE(report.find("defense.quarantine_burst"), std::string::npos);
  EXPECT_NE(report.find("bursttest"), std::string::npos);

  // Clean traffic drops the rate below threshold/2: the trigger rearms
  // and a second burst fires a second report.
  for (int i = 0; i < 4; ++i) plane.screen(++id, "", 0, cluster_row(rng), 1);
  EXPECT_EQ(plane.bursts(), 1u);
  for (int i = 0; i < 4; ++i) plane.screen(++id, "", 0, far_row(rng), 1);
  EXPECT_EQ(plane.bursts(), 2u);
  EXPECT_EQ(obs::flight_trigger_count(), flight_before + 2);
}

TEST(DefensePlane, BurstFlightReportIsDeterministic) {
  // Two identical planes fed the identical stream produce byte-identical
  // orev-flight-v1 reports — the committed post-mortem fixture contract.
  DefenseConfig cfg = tight_defense();
  cfg.burst_window = 4;
  cfg.burst_threshold = 0.5;
  std::string reports[2];
  for (int run = 0; run < 2; ++run) {
    obs::flight_reset();  // seq numbers restart → comparable reports
    DefensePlane plane(cfg, "fixture");
    plane.calibrate(cluster_rows(64, 0xf1));
    Rng rng(0xf2);
    for (std::uint64_t id = 1; id <= 6; ++id)
      plane.screen(id, "", 0, far_row(rng), 1);
    ASSERT_EQ(plane.bursts(), 1u);
    reports[run] = obs::flight_last_report();
  }
  obs::flight_reset();
  EXPECT_FALSE(reports[0].empty());
  EXPECT_EQ(reports[0], reports[1]);
}

TEST(DefensePlane, CheckpointRoundTripsAndRejectsOtherConfigs) {
  const std::string dir = ::testing::TempDir() + "orev_defense_ckpt";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/plane.ckpt";

  const DefenseConfig cfg = tight_defense();
  DefensePlane plane(cfg, "persisttest");
  plane.calibrate(cluster_rows(64, 0xe1));
  Rng rng(0xe2);
  nn::Tensor walk({12, 4});
  {
    nn::Tensor row({4}, 0.5f);
    for (int v = 0; v < 12; ++v) {
      walk.set_batch(v, row);
      for (std::size_t j = 0; j < 4; ++j)
        row[j] += rng.uniform(-0.01f, 0.01f);
    }
  }
  plane.calibrate_flow("flow/a", walk);
  for (std::uint64_t id = 1; id <= 3; ++id)
    plane.screen(id, "", 0, id == 2 ? far_row(rng) : cluster_row(rng), 1);
  ASSERT_TRUE(plane.save_status(path).ok());

  DefensePlane fresh(cfg, "persisttest");
  ASSERT_TRUE(fresh.load_status(path).ok());
  EXPECT_EQ(fresh.screened(), plane.screened());
  EXPECT_EQ(fresh.flagged(), plane.flagged());
  EXPECT_EQ(fresh.finetune().size(), plane.finetune().size());
  EXPECT_EQ(fresh.profile().samples(), plane.profile().samples());
  EXPECT_EQ(fresh.norm_screen().calibration_steps(),
            plane.norm_screen().calibration_steps());
  // The restored detector state scores probes exactly like the original.
  Rng probe_rng(0xe3);
  const nn::Tensor probe = far_row(probe_rng);
  const DefenseVerdict a = plane.screen(4, "", 0, probe, 1);
  const DefenseVerdict b = fresh.screen(4, "", 0, probe, 1);
  EXPECT_EQ(a.flagged, b.flagged);
  EXPECT_DOUBLE_EQ(a.dist_score, b.dist_score);
  EXPECT_DOUBLE_EQ(a.score, b.score);

  // Any config drift (a different threshold) must reject with kMismatch
  // and leave the plane untouched.
  DefenseConfig other = cfg;
  other.dist_threshold = 5.0;
  DefensePlane incompatible(other, "persisttest");
  const persist::Status st = incompatible.load_status(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code, persist::StatusCode::kMismatch);
  EXPECT_EQ(incompatible.screened(), 0u);

  // The fingerprint also covers the engine name.
  EXPECT_NE(DefensePlane(cfg, "enginea").fingerprint(),
            DefensePlane(cfg, "engineb").fingerprint());
}

// --------------------------------------------------- engine integration --

ServeConfig defended_engine_config(const std::string& name) {
  ServeConfig cfg;
  cfg.name = name;
  cfg.batch_max = 8;
  cfg.deadline_us = 1000000;
  cfg.flush_wait_us = 2000;
  cfg.replicas = 2;
  cfg.defense = tight_defense();
  return cfg;
}

/// Alternating workload: every 3rd row is out-of-distribution.
std::vector<nn::Tensor> mixed_inputs(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<nn::Tensor> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    out.push_back(i % 3 == 2 ? far_row(rng) : cluster_row(rng));
  return out;
}

TEST(ServeDefense, QuarantinedRequestsSurfaceAndCountInTheSlo) {
  ServeEngine eng(kpm_model(), defended_engine_config("sloq"));
  ASSERT_NE(eng.defense(), nullptr);
  eng.defense()->calibrate(cluster_rows(64, 0x51));

  const std::vector<nn::Tensor> inputs = mixed_inputs(24, 0x52);
  std::vector<ServeResult> results(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    eng.submit(nn::Tensor(inputs[i]),
               [&results, i](const ServeResult& r) { results[i] = r; });
  eng.drain();

  int quarantined = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i % 3 == 2) {
      EXPECT_EQ(results[i].status, ServeStatus::kQuarantined) << i;
      EXPECT_EQ(results[i].prediction, -1) << i;
      EXPECT_GE(results[i].defense_score, 1.0) << i;
      ++quarantined;
    } else {
      EXPECT_EQ(results[i].status, ServeStatus::kOk) << i;
      EXPECT_GE(results[i].prediction, 0) << i;
      EXPECT_LT(results[i].defense_score, 1.0) << i;
    }
  }
  const serve::SloSnapshot s = eng.slo();
  EXPECT_EQ(s.quarantined, static_cast<std::uint64_t>(quarantined));
  // Quarantines are completions (the app got an answer: "degrade"), never
  // silent drops.
  EXPECT_EQ(s.completed, inputs.size());
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(eng.defense()->flagged(),
            static_cast<std::uint64_t>(quarantined));
}

TEST(ServeDefense, DecisionsAreByteIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::vector<nn::Tensor> inputs = mixed_inputs(48, 0x61);
  const int thread_counts[2] = {1, 4};
  std::vector<ServeResult> runs[2];
  for (int t = 0; t < 2; ++t) {
    util::set_num_threads(thread_counts[t]);
    ServeEngine eng(kpm_model(), defended_engine_config("threads"));
    eng.attach_defense_sibling(apps::make_one_layer({4}, 4, 5));
    eng.defense()->calibrate(cluster_rows(64, 0x62));
    // Flow-tag half the stream so the norm screen participates too.
    std::vector<ServeResult>& results = runs[t];
    results.resize(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      serve::FlowTag flow;
      if (i % 2 == 0) {
        flow.key = "flow/a";
        flow.version = i;
      }
      eng.submit(nn::Tensor(inputs[i]), std::move(flow), obs::TraceContext{},
                 [&results, i](const ServeResult& r) { results[i] = r; });
    }
    eng.drain();
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].status, runs[1][i].status) << "request " << i;
    EXPECT_EQ(runs[0][i].prediction, runs[1][i].prediction) << "request " << i;
    EXPECT_EQ(runs[0][i].latency_us, runs[1][i].latency_us) << "request " << i;
    // Bitwise, not approximate: the defense scores are accumulated in a
    // fixed order on the driving thread.
    EXPECT_EQ(std::memcmp(&runs[0][i].defense_score,
                          &runs[1][i].defense_score, sizeof(double)),
              0)
        << "request " << i;
  }
}

TEST(ServeDefense, DegradedSyncPathIsNotAFailOpenSideDoor) {
  // Force every batch onto the degraded synchronous path: the screen must
  // still quarantine adversarial rows there.
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::FaultSpec delay;
  delay.kind = fault::FaultKind::kDelay;
  delay.probability = 1.0;
  delay.delay_ms = 10.0;
  plan.sites[fault::sites::kServeBatch] = {delay};
  fault::FaultInjector fi(plan);

  ServeConfig cfg = defended_engine_config("syncscreen");
  cfg.deadline_us = 4000;  // the 10 ms injected delay always misses it
  ServeEngine eng(kpm_model(), cfg);
  eng.set_fault_injector(&fi);
  eng.defense()->calibrate(cluster_rows(64, 0x71));

  const std::vector<nn::Tensor> inputs = mixed_inputs(12, 0x72);
  std::vector<ServeResult> results(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    eng.submit(nn::Tensor(inputs[i]),
               [&results, i](const ServeResult& r) { results[i] = r; });
  eng.drain();

  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i % 3 == 2)
      EXPECT_EQ(results[i].status, ServeStatus::kQuarantined) << i;
    else
      EXPECT_EQ(results[i].status, ServeStatus::kDegradedSync) << i;
  }
  EXPECT_EQ(eng.slo().quarantined, 4u);
  EXPECT_EQ(eng.slo().batched_samples, 0u);
}

TEST(ServeDefense, ConfigFingerprintCoversTheDefensePlane) {
  const nn::Model model = kpm_model();
  ServeConfig off;
  off.name = "fp";
  ServeConfig on = off;
  on.defense.enable = true;
  ServeEngine e_off(model.clone(), off);
  ServeEngine e_on(model.clone(), on);
  EXPECT_NE(e_off.config_fingerprint(), e_on.config_fingerprint());

  ServeConfig tuned = on;
  tuned.defense.dist_threshold += 1.0;
  ServeEngine e_tuned(model.clone(), tuned);
  EXPECT_NE(e_on.config_fingerprint(), e_tuned.config_fingerprint());

  ServeEngine e_on2(model.clone(), on);
  EXPECT_EQ(e_on.config_fingerprint(), e_on2.config_fingerprint());
}

TEST(ServeDefense, SiblingMustMatchTheServedModelAndAnEnabledPlane) {
  ServeEngine defended(kpm_model(), defended_engine_config("sibcheck"));
  EXPECT_THROW(defended.attach_defense_sibling(apps::make_one_layer({2}, 2, 3)),
               CheckError);
  EXPECT_NO_THROW(
      defended.attach_defense_sibling(apps::make_one_layer({4}, 4, 3)));
  EXPECT_TRUE(defended.defense()->has_sibling());

  ServeEngine undefended(kpm_model(), ServeConfig{});
  EXPECT_EQ(undefended.defense(), nullptr);
  EXPECT_THROW(undefended.attach_defense_sibling(apps::make_one_layer({4}, 4, 3)),
               CheckError);
}

// ------------------------------------------- PR 9: closed-loop defense --

/// Cluster row shifted by `delta` on every feature (delta/σ z per feature).
nn::Tensor offset_row(Rng& rng, float delta) {
  nn::Tensor t = cluster_row(rng);
  for (std::size_t j = 0; j < 4; ++j) t[j] += delta;
  return t;
}

/// [m, 4] wide clean rows (σ = 0.3): the operator-side recalibration that
/// turns an early borderline flag into a reviewable false positive.
nn::Tensor wide_rows(int m, std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor rows({m, 4});
  for (int i = 0; i < m; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      rows.at2(i, static_cast<int>(j)) = 0.5f + rng.normal(0.0f, 0.3f);
  return rows;
}

TEST(NormScreen, StaleDecayDiscountsEvidenceInsteadOfExpiring) {
  defense::NormScreenConfig hard_cfg;
  hard_cfg.max_stale = 2;
  defense::NormScreenConfig decay_cfg = hard_cfg;
  decay_cfg.stale_decay = true;
  defense::NormScreen hard(hard_cfg);
  defense::NormScreen decay(decay_cfg);
  calibrate_walk(hard, "flow/a", 20, 0x4a7);
  const nn::Tensor lkg = calibrate_walk(decay, "flow/a", 20, 0x4a7);
  nn::Tensor adv = lkg;
  for (std::size_t j = 0; j < 4; ++j) adv[j] += 0.5f;

  // Within the staleness bound the two modes are byte-identical (the LKG
  // is at version 19, so version 21 is a lag of 2).
  EXPECT_DOUBLE_EQ(decay.score("flow/a", 21, adv.raw(), 4),
                   hard.score("flow/a", 21, adv.raw(), 4));

  // Past the bound, hard expiry goes blind while decay keeps discounted
  // evidence: lag 3 is exactly max_stale/lag = 2/3 of the fresh score.
  EXPECT_EQ(hard.score("flow/a", 22, adv.raw(), 4), 0.0);
  const double fresh = decay.score("flow/a", 21, adv.raw(), 4);
  EXPECT_NEAR(decay.score("flow/a", 22, adv.raw(), 4), fresh * 2.0 / 3.0,
              1e-12);

  // The separation the decay exists for: an attack-sized step's huge z
  // survives a deep discount, a natural step's modest z does not.
  EXPECT_GT(decay.score("flow/a", 25, adv.raw(), 4), 4.0);  // lag 6, ×1/3
  nn::Tensor natural = lkg;
  natural[0] += 0.008f;
  EXPECT_LT(decay.score("flow/a", 40, natural.raw(), 4), 1.0);  // lag 21

  // Out-of-order submits never score, decay or not.
  EXPECT_EQ(decay.score("flow/a", 18, adv.raw(), 4), 0.0);
  EXPECT_EQ(hard.score("flow/a", 18, adv.raw(), 4), 0.0);
}

TEST(NormScreen, HasReferenceTracksFreshnessOrderShapeAndDecay) {
  defense::NormScreenConfig cfg;
  cfg.max_stale = 2;
  defense::NormScreen hard(cfg);
  cfg.stale_decay = true;
  defense::NormScreen decay(cfg);
  EXPECT_FALSE(hard.has_reference("flow/a", 0, 4));  // unknown flow
  calibrate_walk(hard, "flow/a", 20, 0x4a8);
  calibrate_walk(decay, "flow/a", 20, 0x4a8);

  EXPECT_TRUE(hard.has_reference("flow/a", 21, 4));   // lag 2, in bound
  EXPECT_FALSE(hard.has_reference("flow/a", 22, 4));  // lag 3, expired
  EXPECT_TRUE(decay.has_reference("flow/a", 22, 4));  // decay: still usable
  // Out-of-order and shape changes are unusable under either mode.
  EXPECT_FALSE(hard.has_reference("flow/a", 18, 4));
  EXPECT_FALSE(decay.has_reference("flow/a", 18, 4));
  EXPECT_FALSE(hard.has_reference("flow/a", 21, 3));
}

TEST(NormScreen, ReviewScoreIsRetrospectiveAndNeverAdvancesTheReference) {
  defense::NormScreen screen;
  const nn::Tensor lkg = calibrate_walk(screen, "flow/a", 20, 0x4a9);
  nn::Tensor adv = lkg;
  for (std::size_t j = 0; j < 4; ++j) adv[j] += 0.5f;

  // The retrospective distance equals the live score at the LKG's own
  // version (no staleness penalty — the guards exist for stream events).
  const double live = screen.score("flow/a", 20, adv.raw(), 4);
  const double review = screen.review_score("flow/a", adv.raw(), 4);
  EXPECT_GT(review, 4.0);
  EXPECT_DOUBLE_EQ(review, live);
  // Const: asking twice answers twice, the reference never moves.
  EXPECT_DOUBLE_EQ(screen.review_score("flow/a", adv.raw(), 4), review);
  EXPECT_EQ(screen.review_score("flow/none", adv.raw(), 4), 0.0);

  // After the flow advances, the same sample re-measures against the new
  // reference — the review always asks "how far from the LKG *now*".
  nn::Tensor next = lkg;
  next[0] += 0.2f;
  screen.accept("flow/a", 21, next.raw(), 4);
  EXPECT_NE(screen.review_score("flow/a", adv.raw(), 4), review);
}

TEST(NormScreen, StaleDecayRoundTripsThroughBytes) {
  defense::NormScreenConfig cfg;
  cfg.max_stale = 2;
  cfg.stale_decay = true;
  defense::NormScreen screen(cfg);
  const nn::Tensor lkg = calibrate_walk(screen, "flow/a", 20, 0x4aa);

  persist::ByteWriter w;
  screen.save(w);
  persist::ByteReader r(w.buffer());
  defense::NormScreen loaded;
  ASSERT_TRUE(loaded.load(r));

  // The decay flag is part of the stream: the loaded screen scores a
  // stale reference (lag 5 > max_stale) exactly like the original.
  nn::Tensor adv = lkg;
  for (std::size_t j = 0; j < 4; ++j) adv[j] += 0.5f;
  const double stale = screen.score("flow/a", 24, adv.raw(), 4);
  EXPECT_GT(stale, 0.0);
  EXPECT_DOUBLE_EQ(loaded.score("flow/a", 24, adv.raw(), 4), stale);
  EXPECT_TRUE(loaded.has_reference("flow/a", 24, 4));
}

// ------------------------------------------------- adaptive thresholds --

defense::AdaptiveConfig fast_adaptive() {
  defense::AdaptiveConfig cfg;
  cfg.enable = true;
  cfg.warmup = 8;
  cfg.update_every = 4;
  return cfg;
}

TEST(AdaptiveThresholds, TracksTheCleanTailInsideTheEnvelope) {
  defense::AdaptiveThresholds at(fast_adaptive(), 6.0, 6.0, 0.9);
  EXPECT_DOUBLE_EQ(at.dist_threshold(), 6.0);

  // A clean stream whose scores sit near 1: the tracked target
  // (margin × q0.995 ≈ 1.25) is far below the static 6.0, so the
  // threshold ratchets down — but the floor (0.5 × 6 = 3) catches it.
  for (int i = 0; i < 200; ++i) {
    at.observe_accepted("flow/a", 1.0, 1.0, 0.1);
    at.on_row();
  }
  EXPECT_GE(at.dist_threshold(), 3.0);   // envelope floor
  EXPECT_LE(at.dist_threshold(), 3.35);  // converged near it
  EXPECT_GT(at.updates(), 0u);
  EXPECT_GT(at.clamped(), 0u);             // floor engaged
  EXPECT_GT(at.held_by_hysteresis(), 0u);  // dead band engaged
}

TEST(AdaptiveThresholds, PatientAttackerCannotWalkPastTheCeiling) {
  defense::AdaptiveThresholds at(fast_adaptive(), 6.0, 6.0, 0.9);
  // Worst case: every observation the attacker sneaks under the flag line
  // is enormous. The adapted threshold may climb, but never past
  // ceiling_frac × static = 12.
  for (int i = 0; i < 400; ++i) {
    at.observe_accepted("flow/a", 100.0, 100.0, 0.89);
    at.on_row();
  }
  EXPECT_GT(at.dist_threshold(), 6.0);
  EXPECT_LE(at.dist_threshold(), 12.0);
  EXPECT_LE(at.step_threshold("flow/a"), 12.0);
  EXPECT_GT(at.clamped(), 0u);
}

TEST(AdaptiveThresholds, PerFlowStepThresholdsDivergeWithLocalHistory) {
  defense::AdaptiveThresholds at(fast_adaptive(), 6.0, 4.0, 0.9);
  // Two flows with very different natural step scales: the hot flow's
  // local threshold must sit above the cold flow's.
  for (int i = 0; i < 200; ++i) {
    at.observe_accepted("flow/hot", 1.0, 5.0, 0.1);
    at.on_row();
    at.observe_accepted("flow/cold", 1.0, 0.2, 0.1);
    at.on_row();
  }
  EXPECT_GT(at.step_threshold("flow/hot"), at.step_threshold("flow/cold"));
  // A flow with no local history falls back to the global estimate, and
  // the const query does not create a track for it.
  EXPECT_DOUBLE_EQ(at.step_threshold("flow/fresh"), at.step_threshold(""));
  EXPECT_EQ(at.flow_count(), 2u);
}

TEST(AdaptiveThresholds, RoundTripsThroughBytes) {
  defense::AdaptiveThresholds at(fast_adaptive(), 6.0, 6.0, 0.9);
  for (int i = 0; i < 100; ++i) {
    at.observe_accepted("flow/a", 1.0 + 0.01 * (i % 7), 2.0, 0.1);
    at.on_row();
  }
  persist::ByteWriter w;
  at.save(w);
  persist::ByteReader r(w.buffer());
  defense::AdaptiveThresholds loaded;
  ASSERT_TRUE(loaded.load(r));
  EXPECT_DOUBLE_EQ(loaded.dist_threshold(), at.dist_threshold());
  EXPECT_DOUBLE_EQ(loaded.ens_threshold(), at.ens_threshold());
  EXPECT_DOUBLE_EQ(loaded.step_threshold("flow/a"),
                   at.step_threshold("flow/a"));
  EXPECT_EQ(loaded.updates(), at.updates());
  EXPECT_EQ(loaded.held_by_hysteresis(), at.held_by_hysteresis());
  EXPECT_EQ(loaded.clamped(), at.clamped());
  EXPECT_EQ(loaded.flow_count(), at.flow_count());

  persist::ByteReader torn(
      std::string_view(w.buffer().data(), w.buffer().size() / 2));
  defense::AdaptiveThresholds partial;
  EXPECT_FALSE(partial.load(torn));
}

// ------------------------------------------------ quarantine review loop --

TEST(FineTuneQueue, OverflowDropCountSurvivesCheckpointAndKeepsRejecting) {
  defense::FineTuneQueue q(3);
  for (int i = 0; i < 5; ++i)
    q.push(nn::Tensor({2}, static_cast<float>(i)), i % 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.dropped(), 2u);

  persist::ByteWriter w;
  q.save(w);
  persist::ByteReader r(w.buffer());
  defense::FineTuneQueue loaded(3);
  ASSERT_TRUE(loaded.load(r));
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.dropped(), 2u);
  // The restored queue is still full: overflow semantics carry over.
  EXPECT_FALSE(loaded.push(nn::Tensor({2}, 9.0f), 1));
  EXPECT_EQ(loaded.dropped(), 3u);
}

TEST(DefensePlane, QuarantineRingWrapsAroundUnderSustainedFlood) {
  DefenseConfig cfg = tight_defense();
  cfg.quarantine_capacity = 4;
  cfg.review_every = 1000;  // review mode: flag-time finetune push is off
  DefensePlane plane(cfg, "floodtest");
  plane.calibrate(cluster_rows(64, 0xf7));

  Rng rng(0xf8);
  for (std::uint64_t id = 1; id <= 20; ++id)
    ASSERT_TRUE(plane.screen(id, "", 0, far_row(rng), 1).flagged) << id;
  EXPECT_EQ(plane.flagged(), 20u);
  EXPECT_EQ(plane.evicted(), 16u);
  EXPECT_TRUE(plane.finetune().items().empty());
  // The ring holds exactly the newest capacity records, oldest first.
  ASSERT_EQ(plane.quarantine().size(), 4u);
  EXPECT_EQ(plane.quarantine().front().request_id, 17u);
  EXPECT_EQ(plane.quarantine().back().request_id, 20u);

  // A review pass sees only the survivors — evicted rows are gone, and
  // the counter makes that loss visible instead of silent.
  const std::vector<serve::ReviewOutcome> outcomes =
      plane.review([](const nn::Tensor&) { return 2; });
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes.front().request_id, 17u);
  EXPECT_EQ(plane.reviewed(), 4u);
  EXPECT_EQ(plane.released() + plane.confirmed(), 4u);
  EXPECT_EQ(plane.evicted(), 16u);
  EXPECT_TRUE(plane.quarantine().empty());
  EXPECT_EQ(plane.review_passes(), 1u);
}

TEST(DefensePlane, ReviewReleasesRecalibratedFalsePositivesAndConfirmsAttacks) {
  DefenseConfig cfg = tight_defense();
  cfg.use_ensemble = false;
  cfg.review_every = 1000;
  DefensePlane plane(cfg, "reviewtest");
  plane.calibrate(cluster_rows(64, 0xa1));

  // Against the thin early profile a mild drift row flags (z ≈ 4.5 per
  // feature, threshold 4)…
  Rng rng(0xa2);
  const nn::Tensor borderline = offset_row(rng, 0.225f);
  const DefenseVerdict vb = plane.screen(1, "", 0, borderline, 1);
  ASSERT_TRUE(vb.flagged);
  // …while a genuine attack-scale row flags far harder.
  const nn::Tensor attack = offset_row(rng, 5.0f);
  ASSERT_TRUE(plane.screen(2, "", 0, attack, 1).flagged);
  ASSERT_EQ(plane.quarantine().size(), 2u);

  // The fleet keeps calibrating on wider clean traffic; under the richer
  // profile the drift row is ordinary and the attack row is still absurd.
  plane.calibrate(wide_rows(192, 0xa3));

  const std::vector<serve::ReviewOutcome> outcomes =
      plane.review([](const nn::Tensor&) { return 3; });
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].released);
  EXPECT_EQ(outcomes[0].request_id, 1u);
  EXPECT_EQ(outcomes[0].corrected_pred, 3);
  EXPECT_GE(outcomes[0].original_score, 1.0);
  EXPECT_LT(outcomes[0].review_score, cfg.release_margin);
  EXPECT_FALSE(outcomes[1].released);
  EXPECT_EQ(outcomes[1].corrected_pred, -1);
  EXPECT_GE(outcomes[1].review_score, cfg.release_margin);

  EXPECT_EQ(plane.released(), 1u);
  EXPECT_EQ(plane.confirmed(), 1u);
  // Only the confirmed record feeds hardening, under its flag-time
  // temporal-consistency label (the primary's prediction here: no flow).
  ASSERT_EQ(plane.finetune().size(), 1u);
  EXPECT_EQ(plane.finetune().items().front().label, 1);
}

TEST(DefensePlane, ReseedMarginGatesAdoptionAfterReferenceLoss) {
  DefenseConfig cfg = tight_defense();
  cfg.use_ensemble = false;
  cfg.max_stale = 1;
  cfg.reseed_margin = 0.5;
  DefensePlane plane(cfg, "reseedtest");
  plane.calibrate(cluster_rows(64, 0xb5));
  Rng walk_rng(0xb6);
  nn::Tensor row({4}, 0.5f);
  nn::Tensor walk({20, 4});
  for (int v = 0; v < 20; ++v) {
    walk.set_batch(v, row);
    for (std::size_t j = 0; j < 4; ++j)
      row[j] += walk_rng.uniform(-0.01f, 0.01f);
  }
  plane.calibrate_flow("flow/a", walk);  // LKG at version 19

  // A sustained flag run ages the reference past max_stale = 1 (flagged
  // rows never advance it), so the flow loses its reference.
  Rng rng(0xb7);
  ASSERT_TRUE(plane.screen(1, "flow/a", 21, far_row(rng), 1).flagged);
  ASSERT_TRUE(plane.screen(2, "flow/a", 22, far_row(rng), 1).flagged);
  ASSERT_FALSE(plane.norm_screen().has_reference("flow/a", 23, 4));

  // The burst's first unflagged row is suspicious (score in
  // [margin, 1)): it serves, but must NOT become the new reference.
  const nn::Tensor mid = offset_row(rng, 0.15f);
  const DefenseVerdict vm = plane.screen(3, "flow/a", 23, mid, 1);
  ASSERT_FALSE(vm.flagged);
  ASSERT_GE(vm.score, cfg.reseed_margin);
  EXPECT_FALSE(plane.norm_screen().has_reference("flow/a", 24, 4));

  // A clearly clean row (score < margin) re-seeds the flow.
  const nn::Tensor clean = cluster_row(rng);
  const DefenseVerdict vc = plane.screen(4, "flow/a", 24, clean, 1);
  ASSERT_FALSE(vc.flagged);
  ASSERT_LT(vc.score, cfg.reseed_margin);
  EXPECT_TRUE(plane.norm_screen().has_reference("flow/a", 25, 4));
}

TEST(HardenCandidate, ReplayMixLearnsTheQueueWithoutTouchingTheServed) {
  // Clean task: two tight clusters. The replay set is its own anchor.
  const int kReplay = 16;
  nn::Tensor replay_x({kReplay, 2});
  std::vector<int> replay_y;
  Rng rng(0xc1);
  for (int i = 0; i < kReplay; ++i) {
    const bool hi = i % 2 == 0;
    replay_x.at2(i, 0) = (hi ? 0.8f : 0.2f) + rng.normal(0.0f, 0.02f);
    replay_x.at2(i, 1) = (hi ? 0.8f : 0.2f) + rng.normal(0.0f, 0.02f);
    replay_y.push_back(hi ? 1 : 0);
  }
  // The quarantined points live elsewhere in input space.
  defense::FineTuneQueue q(16);
  for (int i = 0; i < 12; ++i) {
    nn::Tensor s({2});
    const bool hi = i % 2 == 0;
    s[0] = (hi ? 0.9f : 0.1f) + rng.normal(0.0f, 0.02f);
    s[1] = (hi ? 0.1f : 0.9f) + rng.normal(0.0f, 0.02f);
    q.push(std::move(s), hi ? 1 : 0);
  }

  nn::Model served = apps::make_kpm_dnn(2, 2, 31);
  served.set_inference_only(true);
  const std::vector<int> before = served.predict(replay_x);

  nn::TrainConfig tc;
  tc.max_epochs = 60;
  tc.learning_rate = 5e-2f;
  nn::TrainReport rep;
  nn::Model candidate =
      defense::harden_candidate(served, q, tc, &rep, &replay_x, &replay_y);
  EXPECT_GT(rep.epochs_run, 0);

  // The served model is untouched (hardening clones), and the candidate
  // masters both the replay anchors and the quarantined points.
  EXPECT_EQ(served.predict(replay_x), before);
  const defense::FineTuneQueue::Batch b = q.batch();
  EXPECT_GE(nn::accuracy(candidate.forward(replay_x), replay_y), 0.9);
  EXPECT_GE(nn::accuracy(candidate.forward(b.x), b.y), 0.9);

  // Replay labels must pair 1:1 with the replay rows.
  std::vector<int> short_y(replay_y.begin(), replay_y.end() - 1);
  EXPECT_THROW(
      defense::harden_candidate(served, q, tc, nullptr, &replay_x, &short_y),
      CheckError);
}

// ------------------------------------------------------ gated hot swap --

/// [m, 4] evaluation probe + labels from the served model itself, so the
/// current model's clean accuracy is exactly 1 and any disagreeing
/// candidate regresses.
struct SwapProbe {
  nn::Tensor x;
  std::vector<int> labels;
};

SwapProbe swap_probe(nn::Model served, std::uint64_t seed) {
  Rng rng(seed);
  SwapProbe p{nn::Tensor({32, 4}), {}};
  for (std::size_t i = 0; i < p.x.numel(); ++i)
    p.x[i] = rng.uniform(-1.0f, 1.0f);
  p.labels = served.predict(p.x);
  return p;
}

TEST(ServeSwap, GateRefusesRegressionsAndStampsEpochsOnAccept) {
  ServeConfig cfg = defended_engine_config("swapgate");
  cfg.swap.enable = true;
  ServeEngine eng(kpm_model(17), cfg);
  const SwapProbe p = swap_probe(kpm_model(17), 0xd7);
  // A differently-initialised candidate disagrees with the labels the
  // served model produced: the gate refuses and nothing is installed.
  const serve::SwapGateReport bad =
      eng.request_hot_swap(kpm_model(99), p.x, p.labels);
  EXPECT_TRUE(bad.attempted);
  EXPECT_FALSE(bad.accepted);
  EXPECT_NE(bad.reason.find("clean accuracy regressed"), std::string::npos)
      << bad.reason;
  EXPECT_EQ(eng.swap_epoch(), 0u);
  EXPECT_EQ(eng.swaps_rejected(), 1u);
  EXPECT_EQ(eng.defense()->model_epoch(), 0u);

  // A same-weights candidate is a zero delta: accepted, epoch advances,
  // and the defense plane stamps new quarantine records with it.
  const serve::SwapGateReport good =
      eng.request_hot_swap(kpm_model(17), p.x, p.labels);
  EXPECT_TRUE(good.accepted);
  EXPECT_EQ(good.epoch, 1u);
  EXPECT_DOUBLE_EQ(good.clean_delta, 0.0);
  EXPECT_EQ(eng.swap_epoch(), 1u);
  EXPECT_EQ(eng.swaps_accepted(), 1u);
  EXPECT_EQ(eng.defense()->model_epoch(), 1u);

  // Disabled gate: refused without attempting.
  ServeEngine off(kpm_model(17), defended_engine_config("swapoff"));
  const serve::SwapGateReport rep =
      off.request_hot_swap(kpm_model(17), p.x, p.labels);
  EXPECT_FALSE(rep.attempted);
  EXPECT_FALSE(rep.accepted);

  // A candidate with a different architecture identity can never swap in.
  EXPECT_THROW(eng.request_hot_swap(apps::make_kpm_dnn(4, 3, 17), p.x,
                                    p.labels),
               CheckError);
}

TEST(ServeSwap, AcceptedSwapLandsOnABatchBoundary) {
  ServeConfig cfg = defended_engine_config("swapboundary");
  cfg.swap.enable = true;
  cfg.swap.tol_clean = 1.0;  // accept any candidate: boundary is the point
  ServeEngine eng(kpm_model(17), cfg);

  // The two models must genuinely disagree somewhere for this test to
  // prove anything.
  Rng rng(0xd8);
  std::vector<nn::Tensor> inputs;
  for (int i = 0; i < 12; ++i) {
    nn::Tensor t({4});
    for (std::size_t j = 0; j < 4; ++j) t[j] = rng.uniform(-1.0f, 1.0f);
    inputs.push_back(std::move(t));
  }
  nn::Tensor all({12, 4});
  for (int i = 0; i < 12; ++i) all.set_batch(i, inputs[static_cast<std::size_t>(i)]);
  const std::vector<int> old_preds = kpm_model(17).predict(all);
  const std::vector<int> new_preds = kpm_model(99).predict(all);
  ASSERT_NE(old_preds, new_preds);

  // Four requests sit in a half-full batch when the swap request lands:
  // the engine quiesces first, so they complete under the model they were
  // admitted against — no batch ever straddles epochs.
  std::vector<int> served(12, -2);
  for (std::size_t i = 0; i < 4; ++i)
    eng.submit(nn::Tensor(inputs[i]), [&served, i](const ServeResult& r) {
      served[i] = r.prediction;
    });
  const SwapProbe p = swap_probe(kpm_model(17), 0xd9);
  const serve::SwapGateReport rep =
      eng.request_hot_swap(kpm_model(99), p.x, p.labels);
  ASSERT_TRUE(rep.accepted);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(served[i], old_preds[i]) << "pre-swap request " << i;

  // Everything after the boundary serves under the candidate.
  for (std::size_t i = 4; i < 12; ++i)
    eng.submit(nn::Tensor(inputs[i]), [&served, i](const ServeResult& r) {
      served[i] = r.prediction;
    });
  eng.drain();
  for (std::size_t i = 4; i < 12; ++i)
    EXPECT_EQ(served[i], new_preds[i]) << "post-swap request " << i;
}

TEST(ServeSwap, InjectedTransientRefusesAndTheFleetKeepsServing) {
  fault::FaultPlan plan;
  plan.seed = 11;
  fault::FaultSpec transient;
  transient.kind = fault::FaultKind::kTransient;
  transient.probability = 1.0;
  plan.sites[fault::sites::kServeSwap] = {transient};
  fault::FaultInjector fi(plan);

  ServeConfig cfg = defended_engine_config("swapfault");
  cfg.swap.enable = true;
  ServeEngine eng(kpm_model(17), cfg);
  eng.set_fault_injector(&fi);

  const SwapProbe p = swap_probe(kpm_model(17), 0xda);
  const serve::SwapGateReport rep =
      eng.request_hot_swap(kpm_model(17), p.x, p.labels);
  EXPECT_TRUE(rep.attempted);
  EXPECT_FALSE(rep.accepted);
  EXPECT_NE(rep.reason.find("injected fault"), std::string::npos);
  EXPECT_EQ(eng.swap_epoch(), 0u);

  // Rollback is implicit — nothing was installed — and the fleet serves.
  ServeResult out;
  eng.submit(nn::Tensor({4}, 0.25f), [&out](const ServeResult& r) { out = r; });
  eng.drain();
  EXPECT_EQ(out.status, ServeStatus::kOk);
  EXPECT_GE(out.prediction, 0);
}

TEST(ServeSwap, CrashKillPointResumesByteExactAgainstNeverCrashed) {
  const std::string dir = ::testing::TempDir() + "orev_swap_ckpt";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);

  ServeConfig cfg = defended_engine_config("swapcrash");
  cfg.swap.enable = true;
  cfg.swap.checkpoint_dir = dir;
  // The kill-point only fires on the accepted path (the crash simulates
  // dying *after* the durable commit), so the gate must pass.
  cfg.swap.tol_clean = 1.0;

  fault::FaultPlan plan;
  plan.seed = 13;
  fault::FaultSpec crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.probability = 1.0;
  plan.sites[fault::sites::kServeSwap] = {crash};
  fault::FaultInjector fi(plan);

  const SwapProbe p = swap_probe(kpm_model(17), 0xdb);
  const std::vector<nn::Tensor> after = mixed_inputs(8, 0xdc);

  // Victim: the swap durably commits (install + checkpoint), then the
  // process "dies" at the kill-point.
  ServeEngine victim(kpm_model(17), cfg);
  victim.defense()->calibrate(cluster_rows(64, 0xdd));
  victim.set_fault_injector(&fi);
  EXPECT_THROW(victim.request_hot_swap(kpm_model(99), p.x, p.labels),
               fault::FaultInjectedError);
  EXPECT_EQ(victim.swap_epoch(), 1u);  // committed before the crash

  // A fresh process resumes from the committed checkpoints…
  ServeEngine resumed(kpm_model(17), cfg);
  ASSERT_TRUE(resumed.load_status(dir + "/engine.ckpt").ok());
  ASSERT_TRUE(resumed.defense()->load_status(dir + "/defense.ckpt").ok());
  resumed.resume_hot_swap(kpm_model(99));
  EXPECT_EQ(resumed.swap_epoch(), 1u);

  // …and serves byte-identically to an engine that never crashed.
  ServeConfig clean_cfg = cfg;
  clean_cfg.swap.checkpoint_dir.clear();  // no checkpoint side effects
  ServeEngine reference(kpm_model(17), clean_cfg);
  reference.defense()->calibrate(cluster_rows(64, 0xdd));
  ASSERT_TRUE(reference.request_hot_swap(kpm_model(99), p.x, p.labels)
                  .accepted);

  std::vector<ServeResult> a(after.size()), b(after.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    resumed.submit(nn::Tensor(after[i]),
                   [&a, i](const ServeResult& r) { a[i] = r; });
    reference.submit(nn::Tensor(after[i]),
                     [&b, i](const ServeResult& r) { b[i] = r; });
  }
  resumed.drain();
  reference.drain();
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << i;
    EXPECT_EQ(a[i].prediction, b[i].prediction) << i;
    EXPECT_EQ(a[i].latency_us, b[i].latency_us) << i;
  }
}

TEST(ServeReview, ReleaseHandlerReplaysRecalibratedFalsePositives) {
  ServeConfig cfg = defended_engine_config("enginereview");
  cfg.batch_max = 1;  // flush in submit: each row screens immediately
  cfg.defense.use_ensemble = false;
  cfg.defense.review_every = 1000;  // manual review below
  ServeEngine eng(kpm_model(17), cfg);
  eng.defense()->calibrate(cluster_rows(64, 0xe7));

  std::vector<serve::ReviewOutcome> releases;
  eng.set_release_handler(
      [&releases](const serve::ReviewOutcome& o) { releases.push_back(o); });

  Rng rng(0xe8);
  ServeResult flagged_result;
  eng.submit(offset_row(rng, 0.225f),
             [&flagged_result](const ServeResult& r) { flagged_result = r; });
  eng.drain();
  ASSERT_EQ(flagged_result.status, ServeStatus::kQuarantined);

  // Recalibrating on wider clean traffic turns the early flag into a
  // reviewable false positive; the handler replays it with the serving
  // model's corrected prediction.
  eng.defense()->calibrate(wide_rows(192, 0xe9));
  eng.review_quarantine_now();
  ASSERT_EQ(releases.size(), 1u);
  EXPECT_TRUE(releases[0].released);
  EXPECT_GE(releases[0].corrected_pred, 0);
  EXPECT_EQ(eng.defense()->released(), 1u);
  EXPECT_EQ(eng.defense()->review_passes(), 1u);
}

// ------------------------------------------------ IC xApp quarantine e2e --

class DefenseFakeE2Node : public oran::E2Node {
 public:
  void handle_control(const oran::E2Control& c) override {
    controls.push_back(c);
  }
  std::string node_id() const override { return "ran-1"; }
  std::vector<oran::E2Control> controls;
};

/// RIC fixture whose xApp role may also write defense alerts — the
/// attestation namespace is RBAC-gated like any other SDL write.
class DefenseRicTest : public ::testing::Test {
 protected:
  DefenseRicTest()
      : op_("op", "sec"),
        svc_(&op_, &rbac_),
        ric_(&rbac_, &svc_, /*control_window_ms=*/1000.0) {
    rbac_.define_role("xapp-defense",
                      {oran::Permission{"telemetry/*", true, false},
                       oran::Permission{"decisions", true, true},
                       oran::Permission{"defense-alerts", true, true},
                       oran::Permission{"e2/control", false, true}});
    ric_.connect_e2(&node_);
  }

  std::string onboard(const std::string& name) {
    oran::AppDescriptor d;
    d.name = name;
    d.version = "1";
    d.vendor = "v";
    d.payload = "p";
    d.requested_role = "xapp-defense";
    return svc_.onboard(op_.package(d)).app_id;
  }

  oran::E2Indication kpm_indication(nn::Tensor payload, std::uint64_t tti) {
    oran::E2Indication ind;
    ind.ran_node_id = "ran-1";
    ind.tti = tti;
    ind.kind = oran::IndicationKind::kKpm;
    ind.payload = std::move(payload);
    return ind;
  }

  oran::Rbac rbac_;
  oran::Operator op_;
  oran::OnboardingService svc_;
  oran::NearRtRic ric_;
  DefenseFakeE2Node node_;
};

TEST_F(DefenseRicTest, QuarantineDegradesToFailsafeAndPublishesAttestation) {
  auto app = std::make_shared<apps::IcXApp>(
      kpm_model(), oran::IndicationKind::kKpm, /*fixed_mcs_index=*/13);
  const std::string app_id = onboard("ic");
  ASSERT_TRUE(ric_.register_xapp(app, app_id, 10));

  ServeConfig cfg = defended_engine_config("icquarantine");
  cfg.batch_max = 1;  // flush in submit → each delivery completes inline
  ServeEngine eng(kpm_model(), cfg);
  eng.defense()->calibrate(cluster_rows(64, 0x91));
  app->set_serve_engine(&eng);

  // Clean telemetry serves normally: controls are issued from real
  // predictions and nothing is quarantined.
  Rng rng(0x92);
  for (std::uint64_t tti = 1; tti <= 3; ++tti)
    ric_.deliver_indication(kpm_indication(cluster_row(rng), tti));
  eng.drain();
  EXPECT_EQ(app->serve_quarantined(), 0u);
  EXPECT_EQ(app->predictions_made(), 3u);
  ASSERT_EQ(node_.controls.size(), 3u);

  // A perturbed indication (the §3.1 injection, written into the SDL by
  // the platform like any telemetry) is quarantined: the xApp must take
  // the fail-safe adaptive MCS and publish an attestation alert naming
  // the flagged entry and its last SDL writer.
  ric_.deliver_indication(kpm_indication(far_row(rng), 4));
  eng.drain();
  EXPECT_EQ(app->serve_quarantined(), 1u);
  EXPECT_EQ(app->predictions_made(), 3u);  // no prediction acted on
  EXPECT_EQ(eng.slo().quarantined, 1u);
  ASSERT_EQ(node_.controls.size(), 4u);
  EXPECT_EQ(node_.controls.back().action,
            oran::ControlAction::kSetAdaptiveMcs);

  std::string decision;
  ASSERT_EQ(ric_.sdl().read_text(app_id, oran::kNsDecisions, "ic/ran-1",
                                 decision),
            oran::SdlStatus::kOk);
  EXPECT_EQ(decision, "failsafe");

  std::string alert;
  ASSERT_EQ(ric_.sdl().read_text(app_id, oran::kNsDefenseAlerts,
                                 app_id + "/ran-1", alert),
            oran::SdlStatus::kOk);
  EXPECT_NE(alert.find("telemetry/kpm/ran-1/current"), std::string::npos)
      << alert;
  // The platform wrote the (perturbed) telemetry, so the attestation
  // names it — under a co-hosted-attacker plan this is where the rogue
  // app's identity would surface.
  EXPECT_NE(alert.find("writer=ric-platform"), std::string::npos) << alert;
}

TEST_F(DefenseRicTest, ReviewReleaseReplaysThroughTheDecisionPath) {
  auto app = std::make_shared<apps::IcXApp>(
      kpm_model(), oran::IndicationKind::kKpm, /*fixed_mcs_index=*/13);
  const std::string app_id = onboard("ic");
  ASSERT_TRUE(ric_.register_xapp(app, app_id, 10));

  ServeConfig cfg = defended_engine_config("icrelease");
  cfg.batch_max = 1;
  cfg.defense.use_ensemble = false;
  cfg.defense.review_every = 1000;  // reviews run manually below
  ServeEngine eng(kpm_model(), cfg);
  eng.defense()->calibrate(cluster_rows(64, 0xf3));
  app->set_serve_engine(&eng);
  app->enable_release_channel(ric_);

  // Clean traffic, then one mild drift row the thin profile flags: the
  // xApp degrades to fail-safe and attests, as in the quarantine test.
  Rng rng(0xf4);
  for (std::uint64_t tti = 1; tti <= 3; ++tti)
    ric_.deliver_indication(kpm_indication(cluster_row(rng), tti));
  ric_.deliver_indication(kpm_indication(offset_row(rng, 0.225f), 4));
  eng.drain();
  ASSERT_EQ(app->serve_quarantined(), 1u);
  ASSERT_EQ(app->predictions_made(), 3u);
  ASSERT_EQ(node_.controls.size(), 4u);

  // Operator-side recalibration reveals the flag as a false positive; the
  // review releases it and the xApp replays it through the normal
  // decision path — prediction published, control issued, and a
  // correcting attestation superseding the quarantine alert.
  eng.defense()->calibrate(wide_rows(192, 0xf5));
  eng.review_quarantine_now();
  EXPECT_EQ(app->serve_released(), 1u);
  EXPECT_EQ(app->predictions_made(), 4u);
  EXPECT_EQ(node_.controls.size(), 5u);

  std::string decision;
  ASSERT_EQ(ric_.sdl().read_text(app_id, oran::kNsDecisions, "ic/ran-1",
                                 decision),
            oran::SdlStatus::kOk);
  EXPECT_NE(decision, "failsafe");

  std::string alert;
  ASSERT_EQ(ric_.sdl().read_text(app_id, oran::kNsDefenseAlerts,
                                 app_id + "/ran-1", alert),
            oran::SdlStatus::kOk);
  EXPECT_NE(alert.find("released"), std::string::npos) << alert;
  EXPECT_NE(alert.find("epoch=0"), std::string::npos) << alert;
}

}  // namespace
}  // namespace orev
