// Differential lockdown for the compiled conv-chain plans (DESIGN.md §12).
//
// Four suites:
//   * CompiledCnnDifferential — randomized Conv/DepthwiseConv/Pool/BN/Dense
//     architectures (seeded shapes, strides, paddings, odd channel counts)
//     whose compiled logits must be byte-identical to the layer walk at
//     1 and 4 threads, including every SIMD remainder width;
//   * CompiledCnnErrors — property tests that unsupported layers, collapsed
//     dims and inference-mode violations come back as *typed* compile
//     failures, never a crash or exception;
//   * Int8Calibrator / Int8Gate — fuzzing the quantizer's activation
//     calibration on constant / denormal-adjacent / extreme-range inputs,
//     plus both accuracy-gate verdicts: a passing fixture that activates
//     the tier and a quantization-hostile fixture (decision margins far
//     below the int8 rounding step) that must be refused, fall back to
//     float, and increment serve.<name>.quant_rejected;
//   * ServeCheckpoint — nn/serialize round-trip for Conv2D /
//     DepthwiseConv2D / BatchNorm state in serving checkpoints, and a
//     committed golden CNN checkpoint whose compiled predictions are
//     locked byte-for-byte (regenerate with OREV_UPDATE_GOLDEN=1).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "apps/model_zoo.hpp"
#include "nn/blocks.hpp"
#include "nn/layers.hpp"
#include "serve/serve.hpp"
#include "test_helpers.hpp"
#include "util/csv.hpp"
#include "util/obs/metrics.hpp"
#include "util/sha256.hpp"
#include "util/thread_pool.hpp"

#ifndef OREV_GOLDEN_DIR
#error "OREV_GOLDEN_DIR must be defined by the build"
#endif

namespace orev {
namespace {

using serve::compile_error_name;
using serve::CompiledCnn;
using serve::CompiledInt8;
using serve::CompileError;
using serve::ServeConfig;
using serve::ServeEngine;
using serve::ServeResult;
using serve::ServeStatus;

class ThreadGuard {
 public:
  ThreadGuard() : saved_(util::num_threads()) {}
  ~ThreadGuard() { util::set_num_threads(saved_); }

 private:
  int saved_;
};

std::string tensor_digest(const nn::Tensor& t) {
  Sha256 h;
  h.update(t.raw(), t.numel() * sizeof(float));
  return Sha256::to_hex(h.finish());
}

void fill_uniform(nn::Tensor& t, Rng& rng, float lo, float hi) {
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(lo, hi);
}

/// Move BatchNorm running stats off their init values the way a trained
/// model would look, then lock the model for inference.
void warm_and_lock(nn::Model& m, std::uint64_t seed, int batch = 8) {
  Rng rng(seed);
  nn::Shape shape = m.input_shape();
  shape.insert(shape.begin(), batch);
  nn::Tensor x(shape);
  for (int e = 0; e < 2; ++e) {
    fill_uniform(x, rng, -1.0f, 1.0f);
    m.forward(x, /*training=*/true);
  }
  m.set_inference_only(true);
}

nn::Tensor random_batch(const nn::Model& m, int rows, std::uint64_t seed,
                        float lo = -1.0f, float hi = 1.0f) {
  nn::Shape shape = m.input_shape();
  shape.insert(shape.begin(), rows);
  nn::Tensor x(shape);
  Rng rng(seed);
  fill_uniform(x, rng, lo, hi);
  return x;
}

/// Randomized conv-chain generator. Odd channel counts and spatial sizes
/// on purpose: they drive the pixel-vectorized conv kernel through its
/// 16-wide, 8-wide and scalar remainder paths, and the dense kernel
/// through its column remainders. Every architecture is valid by
/// construction (spatial dims are tracked so no stage collapses).
nn::Model random_cnn_model(std::uint64_t seed) {
  Rng rng(seed);
  const int c0 = rng.uniform_int(1, 3);
  const int hw0 = rng.uniform_int(7, 13);
  int c = c0, h = hw0, w = hw0;

  auto seq = std::make_unique<nn::Sequential>();
  const int blocks = rng.uniform_int(1, 3);
  for (int b = 0; b < blocks; ++b) {
    const int k = rng.uniform_int(1, std::min(3, std::min(h, w)));
    const int pad = k > 1 ? rng.uniform_int(0, 1) : 0;
    int stride = rng.uniform_int(1, 2);
    if ((h + 2 * pad - k) / stride + 1 < 1) stride = 1;
    const int oh = (h + 2 * pad - k) / stride + 1;
    const int ow = (w + 2 * pad - k) / stride + 1;
    if (rng.uniform() < 0.3f) {
      seq->emplace<nn::DepthwiseConv2D>(c, k, stride, pad);
    } else {
      const int oc = rng.uniform_int(3, 9);  // odd counts included
      seq->emplace<nn::Conv2D>(c, oc, k, stride, pad,
                               /*bias=*/rng.uniform() < 0.7f);
      c = oc;
    }
    h = oh;
    w = ow;
    if (rng.uniform() < 0.5f) seq->emplace<nn::BatchNorm>(c);
    if (rng.uniform() < 0.75f) seq->emplace<nn::ReLU>();
    if (h >= 4 && w >= 4 && rng.uniform() < 0.5f) {
      seq->emplace<nn::MaxPool2D>(2);
      h /= 2;
      w /= 2;
    }
  }
  seq->emplace<nn::Flatten>();
  const int hidden = rng.uniform_int(9, 21);
  const int classes = rng.uniform_int(2, 5);
  seq->emplace<nn::Dense>(c * h * w, hidden);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::Dense>(hidden, classes, /*bias=*/rng.uniform() < 0.5f);

  nn::Model m("RandCnn", std::move(seq), {c0, hw0, hw0}, classes);
  m.init(rng);
  warm_and_lock(m, seed ^ 0xb00f);
  return m;
}

// ---------------------------------------------- differential harness --

TEST(CompiledCnnDifferential, RandomArchitecturesByteIdenticalAtOneAndFourThreads) {
  ThreadGuard guard;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    nn::Model m = random_cnn_model(seed);
    CompiledCnn::CompileResult r = CompiledCnn::compile(m);
    ASSERT_NE(r.plan, nullptr)
        << "seed " << seed << ": " << compile_error_name(r.failure.code)
        << " — " << r.failure.detail;

    const nn::Tensor batch = random_batch(m, 13, seed * 7919u);
    const nn::Tensor walk = m.forward(batch, /*training=*/false);

    util::set_num_threads(1);
    const nn::Tensor lg1 = r.plan->logits(batch);
    util::set_num_threads(4);
    const nn::Tensor lg4 = r.plan->logits(batch);

    ASSERT_EQ(lg1.numel(), walk.numel()) << "seed " << seed;
    EXPECT_EQ(std::memcmp(lg1.raw(), walk.raw(),
                          walk.numel() * sizeof(float)),
              0)
        << "seed " << seed << ": compiled logits differ from the layer walk";
    EXPECT_EQ(std::memcmp(lg1.raw(), lg4.raw(),
                          walk.numel() * sizeof(float)),
              0)
        << "seed " << seed << ": thread count changed the compiled bits";
    EXPECT_EQ(r.plan->predict(batch), m.predict(batch)) << "seed " << seed;
  }
}

TEST(CompiledCnnDifferential, IcXappCnnMatchesWalkAtServingBatchSizes) {
  nn::Model m = apps::make_base_cnn({1, 16, 16}, 4, /*seed=*/29);
  m.set_inference_only(true);
  CompiledCnn::CompileResult r = CompiledCnn::compile(m);
  ASSERT_NE(r.plan, nullptr) << r.failure.detail;
  EXPECT_STREQ(r.plan->kind(), "cnn");
  for (const int rows : {1, 3, 32}) {
    const nn::Tensor batch =
        random_batch(m, rows, 0x1c0de + static_cast<std::uint64_t>(rows),
                     0.0f, 1.0f);
    const nn::Tensor walk = m.forward(batch, /*training=*/false);
    const nn::Tensor lg = r.plan->logits(batch);
    EXPECT_EQ(
        std::memcmp(lg.raw(), walk.raw(), walk.numel() * sizeof(float)), 0)
        << "rows=" << rows;
  }
}

TEST(CompiledCnnDifferential, HandBuiltDepthwiseBnChainExercisesEveryFusion) {
  // Bias-less conv, fused BN after conv and after depthwise, a standalone
  // BN after a pool (no GEMM host to fuse into), and a trailing ReLU.
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Conv2D>(2, 5, 3, /*stride=*/1, /*padding=*/1,
                           /*bias=*/false);
  seq->emplace<nn::BatchNorm>(5);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::DepthwiseConv2D>(5, 3, /*stride=*/2, /*padding=*/1);
  seq->emplace<nn::BatchNorm>(5);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::MaxPool2D>(2);
  seq->emplace<nn::BatchNorm>(5);
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Dense>(5 * 2 * 2, 3);
  nn::Model m("FusionChain", std::move(seq), {2, 9, 9}, 3);
  Rng rng(0xf0f0);
  m.init(rng);
  warm_and_lock(m, 0xf1f1);

  CompiledCnn::CompileResult r = CompiledCnn::compile(m);
  ASSERT_NE(r.plan, nullptr) << r.failure.detail;

  ThreadGuard guard;
  const nn::Tensor batch = random_batch(m, 17, 0xabcd);
  const nn::Tensor walk = m.forward(batch, /*training=*/false);
  util::set_num_threads(1);
  const std::string d1 = tensor_digest(r.plan->logits(batch));
  util::set_num_threads(4);
  const std::string d4 = tensor_digest(r.plan->logits(batch));
  EXPECT_EQ(d1, tensor_digest(walk));
  EXPECT_EQ(d1, d4);
}

// ------------------------------------------------- typed compile errors --

void expect_failure(nn::Model& m, CompileError code) {
  CompiledCnn::CompileResult r;
  EXPECT_NO_THROW(r = CompiledCnn::compile(m));
  EXPECT_EQ(r.plan, nullptr);
  EXPECT_EQ(r.failure.code, code)
      << "got " << compile_error_name(r.failure.code) << " — "
      << r.failure.detail;
  EXPECT_FALSE(r.failure.detail.empty());
  EXPECT_NE(compile_error_name(r.failure.code), nullptr);
}

TEST(CompiledCnnErrors, NonSequentialRootIsTyped) {
  nn::Model m("BareDense", std::make_unique<nn::Dense>(4, 2), {4}, 2);
  Rng rng(1);
  m.init(rng);
  m.set_inference_only(true);
  expect_failure(m, CompileError::kNonSequentialRoot);
}

TEST(CompiledCnnErrors, UnsupportedLayersAreTypedNotFatal) {
  {
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::Conv2D>(1, 4, 3);
    seq->emplace<nn::GlobalAvgPool>();
    seq->emplace<nn::Dense>(4, 2);
    nn::Model m("GapNet", std::move(seq), {1, 8, 8}, 2);
    Rng rng(2);
    m.init(rng);
    m.set_inference_only(true);
    expect_failure(m, CompileError::kUnsupportedLayer);
  }
  {
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::Residual>(std::make_unique<nn::Dense>(4, 4));
    seq->emplace<nn::Dense>(4, 2);
    nn::Model m("ResNet", std::move(seq), {4}, 2);
    Rng rng(3);
    m.init(rng);
    m.set_inference_only(true);
    expect_failure(m, CompileError::kUnsupportedLayer);
  }
}

TEST(CompiledCnnErrors, UnlockedModelIsRejectedBecauseBnStatsCouldMove) {
  nn::Model m = apps::make_base_cnn({1, 16, 16}, 4, 29);
  ASSERT_FALSE(m.inference_only());
  expect_failure(m, CompileError::kNotInferenceMode);
}

TEST(CompiledCnnErrors, CollapsingDimsAreTyped) {
  {
    // Pool kernel larger than the spatial extent.
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::MaxPool2D>(5);
    seq->emplace<nn::Flatten>();
    seq->emplace<nn::Dense>(1, 2);
    nn::Model m("PoolCollapse", std::move(seq), {1, 4, 4}, 2);
    Rng rng(4);
    m.init(rng);
    m.set_inference_only(true);
    expect_failure(m, CompileError::kBadDims);
  }
  {
    // Conv kernel larger than the input plane.
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::Conv2D>(1, 3, 3);
    seq->emplace<nn::Flatten>();
    seq->emplace<nn::Dense>(3, 2);
    nn::Model m("ConvCollapse", std::move(seq), {1, 2, 2}, 2);
    Rng rng(5);
    m.init(rng);
    m.set_inference_only(true);
    expect_failure(m, CompileError::kBadDims);
  }
  {
    // No stages at all.
    nn::Model m("Empty", std::make_unique<nn::Sequential>(), {4}, 4);
    m.set_inference_only(true);
    expect_failure(m, CompileError::kBadDims);
  }
}

TEST(CompiledCnnErrors, ShapeMismatchesAreTyped) {
  {
    // Dense over a spatial tensor (missing Flatten).
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::Conv2D>(1, 4, 3);
    seq->emplace<nn::Dense>(4 * 6 * 6, 2);
    nn::Model m("NoFlatten", std::move(seq), {1, 8, 8}, 2);
    Rng rng(6);
    m.init(rng);
    m.set_inference_only(true);
    expect_failure(m, CompileError::kShapeMismatch);
  }
  {
    // Model does not end in num_classes flat logits.
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::Dense>(4, 8);
    nn::Model m("WrongTail", std::move(seq), {4}, 2);
    Rng rng(7);
    m.init(rng);
    m.set_inference_only(true);
    expect_failure(m, CompileError::kShapeMismatch);
  }
}

// ------------------------------------------------ int8 calibrator fuzz --

/// Small conv chain for the quantizer tests: input [1, 8, 8], 3 classes.
nn::Model quant_cnn_model(std::uint64_t seed = 0x9a17) {
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Conv2D>(1, 4, 3, /*stride=*/1, /*padding=*/1);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::MaxPool2D>(2);
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Dense>(4 * 4 * 4, 8);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::Dense>(8, 3);
  nn::Model m("QuantCnn", std::move(seq), {1, 8, 8}, 3);
  Rng rng(seed);
  m.init(rng);
  m.set_inference_only(true);
  return m;
}

TEST(Int8Calibrator, HostileActivationDistributionsProduceUsableScales) {
  nn::Model m = quant_cnn_model();
  CompiledCnn::CompileResult r = CompiledCnn::compile(m);
  ASSERT_NE(r.plan, nullptr);
  const int rows = 12, feats = 64;

  struct Dist {
    const char* name;
    float lo, hi;
  };
  // Constant, all-zero, denormal-adjacent and extreme-range calibration
  // sets: every one must yield finite positive scales for every GEMM
  // stage (the scale floor handles maxabs == 0) and valid predictions.
  const Dist dists[] = {
      {"zeros", 0.0f, 0.0f},
      {"constant", 0.5f, 0.5f},
      {"denormal-adjacent", -1e-38f, 1e-38f},
      {"extreme-range", -1e30f, 1e30f},
      {"mixed", -3.0f, 3.0f},
  };
  Rng rng(0xfe2);
  for (const Dist& d : dists) {
    std::vector<float> calib(static_cast<std::size_t>(rows) * feats);
    for (float& v : calib) v = rng.uniform(d.lo, d.hi);
    serve::CompileFailure why;
    std::unique_ptr<CompiledInt8> q =
        CompiledInt8::build(*r.plan, calib.data(), rows, &why);
    ASSERT_NE(q, nullptr) << d.name << ": " << why.detail;
    const std::vector<float>& scales = q->stage_scales();
    ASSERT_EQ(scales.size(), r.plan->stages().size()) << d.name;
    for (std::size_t i = 0; i < scales.size(); ++i) {
      if (!r.plan->stages()[i].is_gemm()) continue;
      EXPECT_TRUE(std::isfinite(scales[i]) && scales[i] > 0.0f)
          << d.name << " stage " << i << " scale " << scales[i];
    }
    const std::vector<int> preds = q->predict_rows(calib.data(), rows);
    for (int p : preds) {
      EXPECT_GE(p, 0) << d.name;
      EXPECT_LT(p, 3) << d.name;
    }
  }
}

TEST(Int8Calibrator, NonFiniteCalibrationOrWeightsAreTypedRefusals) {
  nn::Model m = quant_cnn_model();
  CompiledCnn::CompileResult r = CompiledCnn::compile(m);
  ASSERT_NE(r.plan, nullptr);

  std::vector<float> calib(64, 0.25f);
  calib[7] = std::numeric_limits<float>::quiet_NaN();
  serve::CompileFailure why;
  EXPECT_EQ(CompiledInt8::build(*r.plan, calib.data(), 1, &why), nullptr);
  EXPECT_EQ(why.code, CompileError::kNonFiniteStats);

  calib[7] = 0.25f;
  EXPECT_EQ(CompiledInt8::build(*r.plan, calib.data(), 0, &why), nullptr);
  EXPECT_EQ(why.code, CompileError::kBadDims);
  EXPECT_EQ(CompiledInt8::build(*r.plan, nullptr, 4, &why), nullptr);
  EXPECT_EQ(why.code, CompileError::kBadDims);

  // An infinite weight is caught at quantization time, not served.
  nn::Model bad = test::known_linear_model();
  std::vector<nn::Tensor> w;
  w.push_back(nn::Tensor({2, 2},
                         {1.0f, std::numeric_limits<float>::infinity(), 1.0f,
                          1.0f}));
  w.push_back(nn::Tensor({2}, {0.0f, 0.0f}));
  bad.set_weights(w);
  bad.set_inference_only(true);
  CompiledCnn::CompileResult br = CompiledCnn::compile(bad);
  ASSERT_NE(br.plan, nullptr);
  EXPECT_EQ(CompiledInt8::build(*br.plan, calib.data(), 4, &why), nullptr);
  EXPECT_EQ(why.code, CompileError::kNonFiniteStats);
}

// ----------------------------------------------------- int8 accuracy gate --

TEST(Int8Gate, ActivatesWhenTheQuantizedTierAgreesWithFloat) {
  nn::Model m = apps::make_base_cnn({1, 16, 16}, 4, 29);
  const nn::Tensor clean = random_batch(m, 64, 0x6a7e, 0.0f, 1.0f);
  m.set_inference_only(true);
  const std::vector<int> labels = m.predict(clean);

  ServeConfig cfg;
  cfg.name = "gatepass";
  cfg.quant.enable = true;
  cfg.quant.calib_samples = 32;
  ServeEngine eng(m.clone(), cfg);

  const double rejected_before =
      obs::counter("serve.gatepass.quant_rejected").value();
  const serve::QuantGateReport rep = eng.activate_int8_tier(clean, labels);
  EXPECT_TRUE(rep.attempted);
  EXPECT_TRUE(rep.activated) << rep.reason;
  EXPECT_TRUE(eng.int8_active());
  EXPECT_EQ(rep.reason, "activated");
  EXPECT_DOUBLE_EQ(rep.acc_float, 1.0);  // labels are the float predictions
  EXPECT_LE(rep.clean_delta, cfg.quant.tol_clean);
  EXPECT_EQ(obs::counter("serve.gatepass.quant_rejected").value(),
            rejected_before);
  EXPECT_EQ(eng.quant_report().reason, rep.reason);

  // The engine keeps serving through the quantized tier: every request is
  // batched (not degraded) and yields a valid class.
  std::vector<ServeResult> results(16);
  for (int i = 0; i < 16; ++i)
    eng.submit(clean.slice_batch(i),
               [&results, i](const ServeResult& r) { results[i] = r; });
  eng.drain();
  for (const ServeResult& r : results) {
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_GE(r.prediction, 0);
    EXPECT_LT(r.prediction, 4);
  }
}

TEST(Int8Gate, RefusesQuantizationHostileModelAndFallsBackToFloat) {
  // Decision margin (3e-5 on the second logit's weight) is orders of
  // magnitude below the int8 rounding step (max|w| / 127 ≈ 8e-3): both
  // weight rows quantize to identical integers, so the int8 decision rule
  // degenerates to sign(x0 + x1) while the float rule is sign(x1). Every
  // evaluation row below makes the two disagree → clean delta 1.0.
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Dense>(2, 2, /*bias=*/false);
  nn::Model m("HairlineMargin", std::move(seq), {2}, 2);
  std::vector<nn::Tensor> w;
  w.push_back(nn::Tensor({2, 2}, {1.0f, 1.0f, 1.0f, 1.00003f}));
  m.set_weights(w);

  nn::Tensor clean({8, 2});
  for (int i = 0; i < 8; ++i) {
    const float sign = i % 2 == 0 ? 1.0f : -1.0f;
    clean.at2(i, 0) = -0.8f * sign;
    clean.at2(i, 1) = 0.05f * sign;
  }
  nn::Model ref = m.clone();
  ref.set_inference_only(true);
  const std::vector<int> labels = ref.predict(clean);

  ServeConfig cfg;
  cfg.name = "gatefail";
  cfg.quant.enable = true;
  ServeEngine eng(std::move(m), cfg);
  const double rejected_before =
      obs::counter("serve.gatefail.quant_rejected").value();
  const serve::QuantGateReport rep = eng.activate_int8_tier(clean, labels);

  EXPECT_TRUE(rep.attempted);
  EXPECT_FALSE(rep.activated);
  EXPECT_FALSE(eng.int8_active());
  EXPECT_GT(rep.clean_delta, cfg.quant.tol_clean);
  EXPECT_NE(rep.reason.find("clean accuracy drifted"), std::string::npos)
      << rep.reason;
  EXPECT_EQ(obs::counter("serve.gatefail.quant_rejected").value(),
            rejected_before + 1.0);

  // Refused tier → the float path keeps serving, byte-identical to the
  // engine's own unbatched reference.
  std::vector<int> reference;
  for (int i = 0; i < 8; ++i)
    reference.push_back(eng.predict_sync(clean.slice_batch(i)));
  std::vector<ServeResult> results(8);
  for (int i = 0; i < 8; ++i)
    eng.submit(clean.slice_batch(i),
               [&results, i](const ServeResult& r) { results[i] = r; });
  eng.drain();
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(results[static_cast<std::size_t>(i)].prediction,
              reference[static_cast<std::size_t>(i)])
        << "request " << i;
}

TEST(Int8Gate, DisabledTierIsNotCountedAsARejection) {
  nn::Model m = quant_cnn_model();
  const nn::Tensor clean = random_batch(m, 8, 0xd15a, 0.0f, 1.0f);
  const std::vector<int> labels = m.predict(clean);
  ServeConfig cfg;
  cfg.name = "gateoff";  // quant.enable stays false
  ServeEngine eng(m.clone(), cfg);
  const double rejected_before =
      obs::counter("serve.gateoff.quant_rejected").value();
  const serve::QuantGateReport rep = eng.activate_int8_tier(clean, labels);
  EXPECT_FALSE(rep.attempted);
  EXPECT_FALSE(rep.activated);
  EXPECT_FALSE(eng.int8_active());
  EXPECT_EQ(obs::counter("serve.gateoff.quant_rejected").value(),
            rejected_before);
}

// --------------------------------------------- checkpoint serialization --

/// Fixed architecture for the checkpoint tests: exercises Conv2D weights,
/// DepthwiseConv2D weights and BatchNorm running-stat state (which only
/// save_state carries — it is not a Param).
nn::Model ckpt_cnn_model(std::uint64_t seed) {
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Conv2D>(2, 6, 3, /*stride=*/1, /*padding=*/1);
  seq->emplace<nn::BatchNorm>(6);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::DepthwiseConv2D>(6, 3, /*stride=*/1, /*padding=*/1);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::MaxPool2D>(2);
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Dense>(6 * 4 * 4, 13);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::Dense>(13, 3);
  nn::Model m("CkptCnn", std::move(seq), {2, 8, 8}, 3);
  Rng rng(seed);
  m.init(rng);
  return m;
}

TEST(ServeCheckpoint, ConvDepthwiseBnStateRoundTripsByteExact) {
  const std::string dir = ::testing::TempDir() + "orev_cnn_ckpt";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/cnn.ckpt";

  nn::Model saved = ckpt_cnn_model(7);
  warm_and_lock(saved, 0x3a1e);  // BN stats off init before saving
  ASSERT_TRUE(saved.save(path));

  // Different init seed: every weight and BN stat must come from the file.
  nn::Model loaded = ckpt_cnn_model(8);
  ASSERT_TRUE(loaded.load(path));
  loaded.set_inference_only(true);

  const nn::Tensor batch = random_batch(saved, 11, 0xc4e);
  const nn::Tensor a = saved.forward(batch, /*training=*/false);
  const nn::Tensor b = loaded.forward(batch, /*training=*/false);
  EXPECT_EQ(std::memcmp(a.raw(), b.raw(), a.numel() * sizeof(float)), 0)
      << "layer-walk logits drifted across the checkpoint round trip";

  CompiledCnn::CompileResult ps = CompiledCnn::compile(saved);
  CompiledCnn::CompileResult pl = CompiledCnn::compile(loaded);
  ASSERT_NE(ps.plan, nullptr);
  ASSERT_NE(pl.plan, nullptr);
  EXPECT_EQ(tensor_digest(ps.plan->logits(batch)),
            tensor_digest(pl.plan->logits(batch)));
}

TEST(ServeCheckpoint, GoldenCnnCheckpointPredictionsAreLocked) {
  const std::string ckpt_path =
      std::string(OREV_GOLDEN_DIR) + "/cnn_serve.ckpt";
  const std::string csv_path =
      std::string(OREV_GOLDEN_DIR) + "/cnn_serve_preds.csv";

  if (std::getenv("OREV_UPDATE_GOLDEN") != nullptr) {
    nn::Model gen = ckpt_cnn_model(42);
    warm_and_lock(gen, 0x601d);
    ASSERT_TRUE(gen.save(ckpt_path)) << "failed to write " << ckpt_path;
  }

  nn::Model m = ckpt_cnn_model(0);  // weights replaced by the golden file
  ASSERT_TRUE(m.load(ckpt_path))
      << "missing/incompatible golden checkpoint " << ckpt_path
      << " (regenerate with OREV_UPDATE_GOLDEN=1)";
  m.set_inference_only(true);
  CompiledCnn::CompileResult r = CompiledCnn::compile(m);
  ASSERT_NE(r.plan, nullptr) << r.failure.detail;

  const nn::Tensor batch = random_batch(m, 12, 0x601d2, 0.0f, 1.0f);
  const nn::Tensor lg = r.plan->logits(batch);
  EXPECT_EQ(r.plan->predict(batch), m.predict(batch));

  CsvWriter csv;
  csv.header({"sample", "prediction"});
  const std::vector<int> preds = r.plan->predict(batch);
  for (std::size_t i = 0; i < preds.size(); ++i)
    csv.row(static_cast<int>(i), preds[i]);
  csv.row("logits_sha256", tensor_digest(lg));

  if (std::getenv("OREV_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(csv.save(csv_path)) << "failed to write " << csv_path;
    SUCCEED() << "regenerated " << ckpt_path << " and " << csv_path;
    return;
  }
  std::ifstream in(csv_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << csv_path
                         << " (run with OREV_UPDATE_GOLDEN=1 to create)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), csv.str())
      << "golden CNN checkpoint predictions drifted; if the numerics change "
         "is intentional, regenerate with OREV_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace orev
