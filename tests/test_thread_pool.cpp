// Unit tests for the deterministic thread pool (src/util/thread_pool.hpp):
// construction/teardown, range and grain edge cases, exception propagation,
// nested-submit safety, lazy per-task contexts, and the ordered reduction's
// thread-count-invariant chunking.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace orev::util {
namespace {

/// Restore the global pool size on scope exit so tests don't leak thread
/// counts into each other.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(num_threads()) {}
  ~ThreadGuard() { set_num_threads(saved_); }

 private:
  int saved_;
};

TEST(ThreadPool, ConstructAndTearDownRepeatedly) {
  for (int n : {1, 2, 4, 3, 1, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), n);
    std::atomic<int> calls{0};
    pool.run_on_all([&] { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), n);
  }
}

TEST(ThreadPool, SetNumThreadsResizesGlobalPool) {
  ThreadGuard guard;
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
}

TEST(ThreadPool, ChunkCountMatchesCeilDiv) {
  EXPECT_EQ(chunk_count(10, 3), 4);
  EXPECT_EQ(chunk_count(9, 3), 3);
  EXPECT_EQ(chunk_count(1, 100), 1);
  EXPECT_EQ(chunk_count(0, 5), 0);
}

TEST(ParallelFor, EmptyRangeRunsNothing) {
  ThreadGuard guard;
  set_num_threads(4);
  std::atomic<int> calls{0};
  parallel_for(0, 0, 1, [&](std::int64_t) { calls.fetch_add(1); });
  parallel_for(5, 5, 2, [&](std::int64_t) { calls.fetch_add(1); });
  parallel_for(7, 3, 1, [&](std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, OneElementRangeRunsInline) {
  ThreadGuard guard;
  set_num_threads(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed_on;
  parallel_for(3, 4, 1, [&](std::int64_t i) {
    EXPECT_EQ(i, 3);
    executed_on = std::this_thread::get_id();
  });
  EXPECT_EQ(executed_on, caller);  // single chunk never enters the pool
}

TEST(ParallelFor, EveryIndexVisitedExactlyOnce) {
  ThreadGuard guard;
  for (int threads : {1, 2, 4}) {
    set_num_threads(threads);
    for (std::int64_t grain : {1, 2, 3, 7, 100}) {
      std::vector<std::atomic<int>> hits(37);
      parallel_for(0, 37, grain,
                   [&](std::int64_t i) { hits[i].fetch_add(1); });
      for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ParallelFor, GrainLargerThanRangeIsOneChunk) {
  ThreadGuard guard;
  set_num_threads(4);
  std::vector<int> order;
  // nchunks == 1 → inline serial on the caller, so order is ascending.
  parallel_for(0, 5, 1000, [&](std::int64_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadGuard guard;
  set_num_threads(4);
  EXPECT_THROW(
      parallel_for(0, 64, 1,
                   [&](std::int64_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Pool must still be usable after a failed region.
  std::atomic<int> calls{0};
  parallel_for(0, 8, 1, [&](std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ParallelFor, NestedSubmitRunsInlineSerial) {
  ThreadGuard guard;
  set_num_threads(4);
  std::vector<std::atomic<int>> hits(16 * 8);
  parallel_for(0, 16, 1, [&](std::int64_t i) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    const std::thread::id outer = std::this_thread::get_id();
    parallel_for(0, 8, 1, [&](std::int64_t j) {
      // The nested region must not hop threads (it degrades to serial).
      EXPECT_EQ(std::this_thread::get_id(), outer);
      hits[i * 8 + j].fetch_add(1);
    });
  });
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForCtx, ContextCreatedLazilyPerTask) {
  ThreadGuard guard;
  set_num_threads(4);
  std::atomic<int> ctx_created{0};
  std::atomic<int> visited{0};
  parallel_for_ctx(
      0, 32, 1,
      [&] {
        ctx_created.fetch_add(1);
        return 0;
      },
      [&](int&, std::int64_t) { visited.fetch_add(1); });
  EXPECT_EQ(visited.load(), 32);
  // At most one context per participating task, at least one overall.
  EXPECT_GE(ctx_created.load(), 1);
  EXPECT_LE(ctx_created.load(), num_threads());
}

TEST(ParallelForCtx, MakeCtxExceptionPropagates) {
  ThreadGuard guard;
  set_num_threads(2);
  EXPECT_THROW(parallel_for_ctx(
                   0, 16, 1,
                   []() -> int { throw std::runtime_error("ctx boom"); },
                   [](int&, std::int64_t) {}),
               std::runtime_error);
}

TEST(ParallelReduceOrdered, SumsMatchSerial) {
  ThreadGuard guard;
  std::vector<double> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = 1.0 / (1.0 + static_cast<double>(i));

  // The reference uses the SAME chunking as the parallel helper (grain 7),
  // folded in ascending chunk order — the invariant under test is that the
  // result is bit-identical at every thread count.
  const std::int64_t grain = 7;
  double expected = 0.0;
  {
    const std::int64_t n = static_cast<std::int64_t>(values.size());
    std::vector<double> accs(static_cast<std::size_t>(chunk_count(n, grain)),
                             0.0);
    for (std::int64_t c = 0; c < chunk_count(n, grain); ++c)
      for (std::int64_t i = c * grain; i < std::min(n, (c + 1) * grain); ++i)
        accs[static_cast<std::size_t>(c)] +=
            values[static_cast<std::size_t>(i)];
    for (const double a : accs) expected += a;
  }

  for (int threads : {1, 2, 4}) {
    set_num_threads(threads);
    const double got = parallel_reduce_ordered(
        0, static_cast<std::int64_t>(values.size()), grain,
        [] { return 0.0; },
        [&](double& acc, std::int64_t i) {
          acc += values[static_cast<std::size_t>(i)];
        },
        [](double& total, const double& acc) { total += acc; });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParallelReduceOrdered, EmptyRangeReturnsFreshAccumulator) {
  ThreadGuard guard;
  set_num_threads(4);
  const int total = parallel_reduce_ordered(
      0, 0, 1, [] { return 42; }, [](int&, std::int64_t) {},
      [](int& t, const int& a) { t += a; });
  EXPECT_EQ(total, 42);
}

TEST(ParallelFor, DisjointWritesProduceFullPermutation) {
  ThreadGuard guard;
  set_num_threads(4);
  std::vector<std::int64_t> out(257, -1);
  parallel_for(0, 257, 3, [&](std::int64_t i) { out[i] = i * i; });
  for (std::int64_t i = 0; i < 257; ++i) EXPECT_EQ(out[i], i * i);
}

}  // namespace
}  // namespace orev::util
