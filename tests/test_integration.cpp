// End-to-end integration tests: the complete attack lifecycle on both RIC
// platforms, through the real plumbing — onboarding, RBAC, SDL, E2/O1 —
// exactly as the benchmarks run it.
//
//   * Near-RT: RAN sim → E2 indications → malicious xApp (observe, then
//     UAP-armed) → IC xApp → E2 MCS control → link performance.
//   * Non-RT: emulator → O1 PM collection → malicious rApp (targeted UAP)
//     → Power-Saving rApp → O1 cell switching → network throughput.
#include <gtest/gtest.h>

#include "apps/ic_xapp.hpp"
#include "apps/malicious_rapp.hpp"
#include "apps/malicious_xapp.hpp"
#include "apps/model_zoo.hpp"
#include "apps/power_saving_rapp.hpp"
#include "attack/clone.hpp"
#include "attack/uap.hpp"
#include "ran/datasets.hpp"
#include "rictest/emulator.hpp"
#include "test_helpers.hpp"

namespace orev {
namespace {

/// E2 adapter: couples an UplinkSim to the Near-RT RIC control path.
class RanNode : public oran::E2Node {
 public:
  explicit RanNode(ran::UplinkSim* sim) : sim_(sim) {}
  void handle_control(const oran::E2Control& c) override {
    if (c.action == oran::ControlAction::kSetAdaptiveMcs) {
      sim_->set_mcs_mode(ran::McsMode::kAdaptive);
    } else {
      sim_->set_mcs_mode(ran::McsMode::kFixed);
    }
  }
  std::string node_id() const override { return "ran-1"; }

 private:
  ran::UplinkSim* sim_;
};

class NearRtClosedLoop : public ::testing::Test {
 protected:
  NearRtClosedLoop()
      : op_("op", "sec"),
        svc_(&op_, &rbac_),
        ric_(&rbac_, &svc_, 1000.0),
        sim_(ran::UplinkConfig{}, /*seed=*/77),
        node_(&sim_) {
    rbac_.define_role("ic-xapp",
                      {oran::Permission{"telemetry/*", true, false},
                       oran::Permission{"decisions", true, true},
                       oran::Permission{"e2/control", false, true}});
    rbac_.define_role("kpi-processor",
                      {oran::Permission{"telemetry/*", true, true},
                       oran::Permission{"decisions", true, false}});
    ric_.connect_e2(&node_);

    // Train the victim IC model on KPM features from the same simulator
    // family (held-out seed).
    const ran::KpmDatasetResult kd =
        ran::make_kpm_dataset(ran::UplinkConfig{}, 150, 5);
    norm_ = kd.norm;
    victim_model_ = std::make_unique<nn::Model>(
        apps::make_kpm_dnn(ran::KpmRecord::kFeatureCount, 2, 31));
    test::quick_fit(*victim_model_, kd.dataset, 20, 5e-3f);
  }

  std::string onboard(const std::string& name, const std::string& role) {
    oran::AppDescriptor d;
    d.name = name;
    d.version = "1";
    d.vendor = "v";
    d.payload = "p";
    d.requested_role = role;
    return svc_.onboard(op_.package(d)).app_id;
  }

  oran::E2Indication kpm_indication(std::uint64_t tti) {
    const ran::KpmRecord k = sim_.step();
    nn::Tensor f = k.features();
    data::normalize_minmax(f, norm_);
    f.clamp(0.0f, 1.0f);
    oran::E2Indication ind;
    ind.ran_node_id = "ran-1";
    ind.tti = tti;
    ind.kind = oran::IndicationKind::kKpm;
    ind.payload = std::move(f);
    return ind;
  }

  oran::Rbac rbac_;
  oran::Operator op_;
  oran::OnboardingService svc_;
  oran::NearRtRic ric_;
  ran::UplinkSim sim_;
  RanNode node_;
  data::MinMax norm_;
  std::unique_ptr<nn::Model> victim_model_;
};

TEST_F(NearRtClosedLoop, BenignLoopTracksJammerState) {
  auto victim = std::make_shared<apps::IcXApp>(
      std::move(*victim_model_), oran::IndicationKind::kKpm, 13);
  ric_.register_xapp(victim, onboard("ic", "ic-xapp"), 10);

  // Jammer off: the xApp should mostly report clean → fixed MCS.
  sim_.jammer().deactivate();
  for (int t = 0; t < 30; ++t) ric_.deliver_indication(kpm_indication(t));
  const auto clean_detections = victim->interference_detected();
  EXPECT_LT(clean_detections, 8u);

  // Jammer on: detections must dominate and the RAN must go adaptive.
  sim_.jammer().activate();
  for (int t = 30; t < 60; ++t) ric_.deliver_indication(kpm_indication(t));
  EXPECT_GT(victim->interference_detected(), clean_detections + 20);
  EXPECT_EQ(sim_.mcs_mode(), ran::McsMode::kAdaptive);
}

TEST_F(NearRtClosedLoop, FullBlackBoxLifecycleDegradesDetection) {
  auto victim = std::make_shared<apps::IcXApp>(
      std::move(*victim_model_), oran::IndicationKind::kKpm, 13);
  auto attacker =
      std::make_shared<apps::MaliciousXApp>(oran::IndicationKind::kKpm);
  ric_.register_xapp(attacker, onboard("atk", "kpi-processor"), 1);
  ric_.register_xapp(victim, onboard("ic", "ic-xapp"), 10);

  // Phase 1 — observe: mixed jammer states build the cloning log.
  std::uint64_t tti = 0;
  for (int round = 0; round < 6; ++round) {
    if (round % 2 == 0) sim_.jammer().activate();
    else sim_.jammer().deactivate();
    for (int t = 0; t < 25; ++t) ric_.deliver_indication(kpm_indication(tti++));
  }
  ASSERT_GT(attacker->observed_inputs().size(), 100u);

  // Phase 2 — clone offline from the observation log.
  const data::Dataset d_clone = attack::clone_dataset_from_observations(
      attacker->observed_inputs(), attacker->observed_labels(), 2);
  attack::CloneConfig ccfg;
  ccfg.train.max_epochs = 25;
  ccfg.train.learning_rate = 5e-3f;
  attack::CloneReport clone = attack::clone_model(
      d_clone,
      {{"KPM-DNN",
        [](std::uint64_t s) {
          return apps::make_kpm_dnn(ran::KpmRecord::kFeatureCount, 2, s);
        }}},
      ccfg);
  EXPECT_GT(clone.cloning_accuracy, 0.8);

  // Phase 3 — precompute a UAP on the surrogate and arm. The adversary's
  // goal is to *hide the jammer*, so the general UAP is seeded with the
  // observations the victim labelled "interference": flipping those
  // predictions is exactly C(x + u) ≠ C(x) restricted to the class that
  // matters operationally.
  std::vector<int> jammed_rows;
  for (int i = 0; i < d_clone.size(); ++i)
    if (d_clone.y[static_cast<std::size_t>(i)] == ran::kLabelInterference)
      jammed_rows.push_back(i);
  const data::Dataset seed_set = d_clone.subset(jammed_rows);
  attack::UapConfig ucfg;
  ucfg.eps = 0.5f;
  ucfg.target_fooling = 0.8;
  attack::Fgsm inner(0.25f);
  const attack::UapResult uap =
      attack::generate_uap(clone.model, seed_set.x, inner, ucfg);
  attacker->arm_uap(uap.perturbation);

  // Phase 4 — jammer on, attack live: detection rate must collapse
  // relative to the benign jammed baseline.
  sim_.jammer().activate();
  const auto detections_before = victim->interference_detected();
  const auto predictions_before = victim->predictions_made();
  for (int t = 0; t < 40; ++t) ric_.deliver_indication(kpm_indication(tti++));
  const double detection_rate =
      static_cast<double>(victim->interference_detected() -
                          detections_before) /
      static_cast<double>(victim->predictions_made() - predictions_before);
  EXPECT_LT(detection_rate, 0.5)
      << "UAP should hide the jammer from the victim most of the time";
  EXPECT_GT(attacker->perturbations_applied(), 0u);
}

// --------------------------------------------------------------- Non-RT

class NonRtClosedLoop : public ::testing::Test {
 protected:
  NonRtClosedLoop()
      : op_("op", "sec"), svc_(&op_, &rbac_), ric_(&rbac_, &svc_, 12) {
    rbac_.define_role("ps-rapp",
                      {oran::Permission{"pm", true, false},
                       oran::Permission{"rapp-decisions", true, true},
                       oran::Permission{"o1/cell-control", false, true}});
    rbac_.define_role("pm-aggregator",
                      {oran::Permission{"pm", true, true},
                       oran::Permission{"rapp-decisions", true, false}});
    ric_.connect_o1(&emulator_);
  }

  std::string onboard(const std::string& name, const std::string& role) {
    oran::AppDescriptor d;
    d.name = name;
    d.version = "1";
    d.vendor = "v";
    d.payload = "p";
    d.type = oran::AppType::kRApp;
    d.requested_role = role;
    return svc_.onboard(op_.package(d)).app_id;
  }

  nn::Model trained_victim() {
    rictest::CityTraceConfig cfg;
    cfg.days = 8;
    const data::Dataset d = rictest::make_power_saving_dataset(cfg, 12, 8);
    nn::Model m = apps::make_power_saving_cnn({1, 12, 9}, 6, 21);
    test::quick_fit(m, d, 15, 5e-3f);
    return m;
  }

  oran::Rbac rbac_;
  oran::Operator op_;
  oran::OnboardingService svc_;
  oran::NonRtRic ric_;
  rictest::Emulator emulator_{rictest::EmulatorConfig{}};
};

TEST_F(NonRtClosedLoop, TargetedUapForcesPeakDeactivations) {
  auto victim = std::make_shared<apps::PowerSavingRApp>(trained_victim());
  auto attacker = std::make_shared<apps::MaliciousRApp>();
  ric_.register_rapp(attacker, onboard("atk", "pm-aggregator"), 1);
  ric_.register_rapp(victim, onboard("ps", "ps-rapp"), 10);

  // Build a targeted UAP that pushes the serving capacity columns towards
  // "both idle" — the deactivate-both decision region. (The oracle-trained
  // CNN has a thresholded boundary, so suppressing those columns is the
  // minimal-perturbation direction; a cloned surrogate finds the same
  // direction in the benchmarks.)
  nn::Tensor uap({1, 12, 9});
  for (int t = 0; t < 12; ++t) {
    uap[static_cast<std::size_t>(t) * 9 + 1] = -0.9f;
    uap[static_cast<std::size_t>(t) * 9 + 2] = -0.9f;
  }
  attacker->arm_targeted_uap(uap);

  // Run to midday peak with the attack armed.
  const int half_day = rictest::EmulatorConfig{}.periods_per_day / 2;
  for (int i = 0; i < half_day; ++i) {
    emulator_.advance();
    ric_.step();
  }
  // At peak, both of sector 0's capacity cells must have been shut down
  // (cells 4 and 7) despite real load — the Fig. 7 outcome.
  EXPECT_FALSE(emulator_.cell_active(4));
  EXPECT_FALSE(emulator_.cell_active(7));
  // And the coverage cell is saturated.
  const oran::PmReport pm = emulator_.collect_pm();
  EXPECT_GT(pm.cells.at(1).prb_util_dl, 99.0);
}

TEST_F(NonRtClosedLoop, BenignRAppKeepsCapacityAtPeak) {
  auto victim = std::make_shared<apps::PowerSavingRApp>(trained_victim());
  ric_.register_rapp(victim, onboard("ps", "ps-rapp"), 10);
  const int half_day = rictest::EmulatorConfig{}.periods_per_day / 2;
  for (int i = 0; i < half_day; ++i) {
    emulator_.advance();
    ric_.step();
  }
  // At midday the bell-profile capacity cell 4 carries real load; a sane
  // power-saving policy must keep it (or have re-activated it) by now.
  EXPECT_TRUE(emulator_.cell_active(4));
}

}  // namespace
}  // namespace orev
