// RAN simulator tests: channel physics sanity, MCS/BLER monotonicity,
// link-adaptation behaviour under jamming, spectrogram class structure,
// KPM dataset separability, traffic profiles.
#include <gtest/gtest.h>

#include "ran/channel.hpp"
#include "ran/datasets.hpp"
#include "ran/jammer.hpp"
#include "ran/link.hpp"
#include "ran/mcs.hpp"
#include "ran/spectrogram.hpp"
#include "ran/traffic.hpp"

namespace orev::ran {
namespace {

// ---------------------------------------------------------------- channel

TEST(Channel, DbmMilliwattRoundTrip) {
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(30.0), 1000.0, 1e-9);
  EXPECT_NEAR(mw_to_dbm(dbm_to_mw(-17.3)), -17.3, 1e-9);
  EXPECT_THROW(mw_to_dbm(0.0), CheckError);
}

TEST(Channel, PathLossIncreasesWithDistance) {
  Channel ch(ChannelConfig{}, Rng(1));
  EXPECT_LT(ch.path_loss_db(10.0), ch.path_loss_db(100.0));
  EXPECT_LT(ch.path_loss_db(100.0), ch.path_loss_db(1000.0));
}

TEST(Channel, PathLossFollowsExponent) {
  ChannelConfig cfg;
  cfg.pathloss_exponent = 3.0;
  Channel ch(cfg, Rng(2));
  // One decade of distance adds 10 * n dB.
  EXPECT_NEAR(ch.path_loss_db(100.0) - ch.path_loss_db(10.0), 30.0, 1e-9);
}

TEST(Channel, PathLossRejectsNonPositiveDistance) {
  Channel ch(ChannelConfig{}, Rng(3));
  EXPECT_THROW(ch.path_loss_db(0.0), CheckError);
}

TEST(Channel, NoisePowerMatchesThermalFloor) {
  ChannelConfig cfg;
  cfg.bandwidth_hz = 5e6;
  cfg.noise_figure_db = 7.0;
  Channel ch(cfg, Rng(4));
  // -174 + 10 log10(5e6) + 7 ≈ -100.01 dBm.
  EXPECT_NEAR(ch.noise_power_dbm(), -100.0, 0.1);
}

TEST(Channel, SinrNoiseLimitedWithoutInterference) {
  Channel ch(ChannelConfig{}, Rng(5));
  const double sinr = ch.sinr_db(-80.0, -200.0);
  EXPECT_NEAR(sinr, -80.0 - ch.noise_power_dbm(), 0.01);
}

TEST(Channel, StrongInterferenceDominatesNoise) {
  Channel ch(ChannelConfig{}, Rng(6));
  // Interference 30 dB above noise → SINR ≈ S - I.
  const double i_dbm = ch.noise_power_dbm() + 30.0;
  EXPECT_NEAR(ch.sinr_db(-60.0, i_dbm), -60.0 - i_dbm, 0.05);
}

TEST(Channel, ReceivedPowerCentredOnPathLoss) {
  ChannelConfig cfg;
  cfg.fast_fading = false;
  cfg.shadowing_sigma_db = 0.0;
  Channel ch(cfg, Rng(7));
  EXPECT_NEAR(ch.received_power_dbm(23.0, 50.0),
              23.0 - ch.path_loss_db(50.0), 1e-6);
}

TEST(Channel, FadingAddsVariance) {
  ChannelConfig cfg;
  cfg.fast_fading = true;
  Channel ch(cfg, Rng(8));
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 200; ++i) {
    const double p = ch.received_power_dbm(23.0, 50.0);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi - lo, 5.0);  // fading swings by many dB
}

// ----------------------------------------------------------------- jammer

TEST(Jammer, InactiveByDefault) {
  Jammer j(JammerConfig{}, Rng(9));
  EXPECT_FALSE(j.active());
  j.activate();
  EXPECT_TRUE(j.active());
  j.deactivate();
  EXPECT_FALSE(j.active());
}

TEST(Jammer, ErpWithinGainBounds) {
  JammerConfig cfg;
  cfg.tx_power_dbm = 20.0;
  cfg.gain_db_lo = 40.0;
  cfg.gain_db_hi = 45.0;
  Jammer j(cfg, Rng(10));
  for (int i = 0; i < 100; ++i) {
    const double erp = j.erp_dbm();
    EXPECT_GE(erp, 60.0);
    EXPECT_LE(erp, 65.0);
  }
}

TEST(Jammer, TonePositionMidBandByDefault) {
  Jammer j(JammerConfig{}, Rng(11));
  EXPECT_NEAR(j.tone_position(5e6), 0.5, 1e-9);
}

TEST(Jammer, InvertedGainBoundsThrow) {
  JammerConfig cfg;
  cfg.gain_db_lo = 45.0;
  cfg.gain_db_hi = 40.0;
  EXPECT_THROW(Jammer(cfg, Rng(12)), CheckError);
}

// -------------------------------------------------------------------- MCS

TEST(McsTable, LadderOrderedBySpectralEfficiency) {
  McsTable t;
  ASSERT_GE(t.size(), 8);
  for (int i = 1; i < t.size(); ++i) {
    EXPECT_GT(t.entry(i).spectral_eff, t.entry(i - 1).spectral_eff);
    EXPECT_GT(t.entry(i).sinr_threshold_db,
              t.entry(i - 1).sinr_threshold_db);
  }
}

TEST(McsTable, AdaptiveSelectionMonotone) {
  McsTable t;
  EXPECT_EQ(t.select_adaptive(-100.0), 0);
  EXPECT_EQ(t.select_adaptive(1000.0), t.max_index());
  int prev = 0;
  for (double sinr = -10.0; sinr < 30.0; sinr += 1.0) {
    const int idx = t.select_adaptive(sinr);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(McsTable, AdaptiveSelectionRespectsThreshold) {
  McsTable t;
  for (int i = 0; i < t.size(); ++i) {
    const int chosen = t.select_adaptive(t.entry(i).sinr_threshold_db);
    EXPECT_EQ(chosen, i);
  }
}

TEST(McsTable, BlerDecreasesWithSinr) {
  McsTable t;
  const int mcs = 8;
  double prev = 1.0;
  for (double sinr = -10.0; sinr <= 30.0; sinr += 2.0) {
    const double b = t.bler(mcs, sinr);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    EXPECT_LE(b, prev + 1e-12);
    prev = b;
  }
}

TEST(McsTable, BlerAtThresholdIsTenPercent) {
  McsTable t;
  for (int i = 0; i < t.size(); i += 4)
    EXPECT_NEAR(t.bler(i, t.entry(i).sinr_threshold_db), 0.1, 0.01);
}

TEST(McsTable, ThroughputScalesWithEfficiency) {
  McsTable t;
  // At very high SINR the BLER → 0, so throughput ≈ eff × BW.
  const double tp =
      t.throughput_mbps(t.max_index(), 60.0, 5e6);
  EXPECT_NEAR(tp, t.entry(t.max_index()).spectral_eff * 5.0, 0.05);
}

TEST(McsTable, IndexValidation) {
  McsTable t;
  EXPECT_THROW(t.entry(-1), CheckError);
  EXPECT_THROW(t.entry(t.size()), CheckError);
}

// ------------------------------------------------------------------- link

TEST(UplinkSim, JammingCollapsesSinr) {
  UplinkSim sim(UplinkConfig{}, 42);
  double clean = 0.0, jammed = 0.0;
  constexpr int kN = 200;
  sim.jammer().deactivate();
  for (int i = 0; i < kN; ++i) clean += sim.step().sinr_db;
  sim.jammer().activate();
  for (int i = 0; i < kN; ++i) jammed += sim.step().sinr_db;
  EXPECT_GT(clean / kN, jammed / kN + 10.0);
}

TEST(UplinkSim, AdaptiveModeKeepsBlerModerateUnderJamming) {
  UplinkSim sim(UplinkConfig{}, 43);
  sim.jammer().activate();
  sim.set_mcs_mode(McsMode::kAdaptive);
  double adaptive_bler = 0.0;
  for (int i = 0; i < 200; ++i) adaptive_bler += sim.step().bler;
  sim.set_mcs_mode(McsMode::kFixed);
  double fixed_bler = 0.0;
  for (int i = 0; i < 200; ++i) fixed_bler += sim.step().bler;
  // Fixed high MCS under jamming must hurt much more than adaptive.
  EXPECT_GT(fixed_bler / 200.0, adaptive_bler / 200.0 + 0.2);
}

TEST(UplinkSim, FixedModeUsesConfiguredMcs) {
  UplinkConfig cfg;
  cfg.fixed_mcs = 11;
  UplinkSim sim(cfg, 44);
  sim.set_mcs_mode(McsMode::kFixed);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sim.step().mcs, 11);
}

TEST(UplinkSim, KpmFeatureVectorLayout) {
  UplinkSim sim(UplinkConfig{}, 45);
  const KpmRecord k = sim.step();
  const nn::Tensor f = k.features();
  ASSERT_EQ(f.shape(), (nn::Shape{4}));
  EXPECT_FLOAT_EQ(f[0], static_cast<float>(k.sinr_db));
  EXPECT_FLOAT_EQ(f[3], static_cast<float>(k.mcs));
}

TEST(UplinkSim, InvalidFixedMcsThrows) {
  UplinkConfig cfg;
  cfg.fixed_mcs = 999;
  EXPECT_THROW(UplinkSim(cfg, 46), CheckError);
}

// ------------------------------------------------------------ spectrogram

TEST(Spectrogram, ShapeAndRange) {
  SpectrogramConfig cfg;
  Rng rng(47);
  const nn::Tensor s = make_spectrogram(cfg, false, rng);
  EXPECT_EQ(s.shape(), (nn::Shape{1, cfg.freq_bins, cfg.time_frames}));
  EXPECT_GE(s.min(), 0.0f);
  EXPECT_LE(s.max(), 1.0f);
}

TEST(Spectrogram, CwiAddsEnergy) {
  SpectrogramConfig cfg;
  Rng rng(48);
  double clean = 0.0, cwi = 0.0;
  for (int i = 0; i < 20; ++i) {
    clean += make_spectrogram(cfg, false, rng).sum();
    cwi += make_spectrogram(cfg, true, rng).sum();
  }
  EXPECT_GT(cwi, clean);
}

TEST(Spectrogram, CwiCreatesBrightRidgeRow) {
  SpectrogramConfig cfg;
  Rng rng(49);
  // The brightest row (max of per-row mean) should be noticeably brighter
  // in CWI spectrograms than in clean ones.
  auto brightest_row_mean = [&](bool with_cwi) {
    const nn::Tensor s = make_spectrogram(cfg, with_cwi, rng);
    double best = 0.0;
    for (int f = 0; f < cfg.freq_bins; ++f) {
      double row = 0.0;
      for (int t = 0; t < cfg.time_frames; ++t)
        row += s[static_cast<std::size_t>(f) * cfg.time_frames + t];
      best = std::max(best, row / cfg.time_frames);
    }
    return best;
  };
  double clean = 0.0, cwi = 0.0;
  for (int i = 0; i < 15; ++i) {
    clean += brightest_row_mean(false);
    cwi += brightest_row_mean(true);
  }
  EXPECT_GT(cwi / 15.0, clean / 15.0 + 0.1);
}

TEST(Spectrogram, RejectsDegenerateConfig) {
  SpectrogramConfig cfg;
  cfg.freq_bins = 2;
  Rng rng(50);
  EXPECT_THROW(make_spectrogram(cfg, false, rng), CheckError);
}

// --------------------------------------------------------------- datasets

TEST(SpectrogramDataset, BalancedAndLabelled) {
  SpectrogramConfig cfg;
  cfg.freq_bins = 16;
  cfg.time_frames = 16;
  const data::Dataset d = make_spectrogram_dataset(cfg, 25, 51);
  EXPECT_EQ(d.size(), 50);
  EXPECT_EQ(d.class_counts().at(kLabelClean), 25);
  EXPECT_EQ(d.class_counts().at(kLabelInterference), 25);
}

TEST(KpmDataset, NormalisedAndSeparable) {
  const KpmDatasetResult r = make_kpm_dataset(UplinkConfig{}, 100, 52);
  const data::Dataset& d = r.dataset;
  EXPECT_EQ(d.size(), 200);
  EXPECT_GE(d.x.min(), 0.0f);
  EXPECT_LE(d.x.max(), 1.0f);
  // Mean normalised SINR must differ strongly between classes.
  double clean_sinr = 0.0, jam_sinr = 0.0;
  for (int i = 0; i < d.size(); ++i) {
    const float v = d.x.at2(i, 0);
    (d.y[static_cast<std::size_t>(i)] == kLabelClean ? clean_sinr : jam_sinr) +=
        v;
  }
  EXPECT_GT(clean_sinr / 100.0, jam_sinr / 100.0 + 0.2);
}

// ---------------------------------------------------------------- traffic

TEST(Traffic, ConstantSourceNearRate) {
  TrafficSource src(TrafficSource::Kind::kConstant, 10.0, 53);
  for (int i = 0; i < 50; ++i) {
    const double v = src.next();
    EXPECT_GT(v, 9.0);
    EXPECT_LT(v, 11.0);
  }
}

TEST(Traffic, BurstySourceHasHighVariance) {
  TrafficSource cst(TrafficSource::Kind::kConstant, 10.0, 54);
  TrafficSource bst(TrafficSource::Kind::kBursty, 10.0, 54);
  auto variance = [](TrafficSource& s) {
    double sum = 0.0, sq = 0.0;
    constexpr int kN = 500;
    for (int i = 0; i < kN; ++i) {
      const double v = s.next();
      sum += v;
      sq += v * v;
    }
    const double mean = sum / kN;
    return sq / kN - mean * mean;
  };
  EXPECT_GT(variance(bst), 10.0 * variance(cst));
}

TEST(Traffic, BellProfilePeaksMidday) {
  EXPECT_NEAR(bell_profile(0.5), 1.0, 1e-9);
  EXPECT_LT(bell_profile(0.1), 0.2);
  EXPECT_LT(bell_profile(0.9), 0.2);
  EXPECT_GT(bell_profile(0.4), bell_profile(0.2));
}

TEST(Traffic, SteadyProfileRampsAndHolds) {
  EXPECT_NEAR(steady_profile(0.05), 0.5, 1e-9);
  EXPECT_NEAR(steady_profile(0.5), 1.0, 1e-9);
  EXPECT_NEAR(steady_profile(0.95), 0.5, 1e-9);
  EXPECT_NEAR(steady_profile(0.0), 0.0, 1e-9);
}

TEST(Traffic, RejectsNonPositiveRate) {
  EXPECT_THROW(TrafficSource(TrafficSource::Kind::kConstant, 0.0, 55),
               CheckError);
}

}  // namespace
}  // namespace orev::ran
