// Layer unit tests: output shapes, known-value checks, and — most
// importantly — numerical gradient verification of every backward pass
// (central differences against the analytic input and parameter
// gradients). A broken backward would silently corrupt every attack in
// the library, so these are the load-bearing tests of src/nn.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/blocks.hpp"
#include "nn/layers.hpp"

namespace orev::nn {
namespace {

/// Scalar objective L = Σ out ⊙ cot for a fixed random cotangent; its
/// input gradient is layer.backward(cot).
double objective(Layer& layer, const Tensor& x, const Tensor& cot) {
  const Tensor out = layer.forward(x, /*training=*/true);
  double acc = 0.0;
  for (std::size_t i = 0; i < out.numel(); ++i)
    acc += double(out[i]) * cot[i];
  return acc;
}

/// Verify dL/dInput at `checks` random coordinates.
void check_input_gradient(Layer& layer, Tensor x, double tol = 5e-2,
                          int checks = 12, float h = 1e-2f) {
  Rng rng(1234);
  const Tensor out = layer.forward(x, /*training=*/true);
  const Tensor cot = Tensor::randn(out.shape(), rng);
  for (Param* p : layer.params()) p->zero_grad();
  const Tensor analytic = layer.backward(cot);
  ASSERT_EQ(analytic.shape(), x.shape());

  for (int c = 0; c < checks; ++c) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(x.numel()) - 1));
    Tensor xp = x;
    xp[i] += h;
    Tensor xm = x;
    xm[i] -= h;
    const double numeric =
        (objective(layer, xp, cot) - objective(layer, xm, cot)) / (2.0 * h);
    EXPECT_NEAR(analytic[i], numeric,
                tol * std::max(1.0, std::abs(numeric)))
        << "input coordinate " << i;
  }
  // Restore forward cache for any follow-up backward call.
  layer.forward(x, /*training=*/true);
}

/// Verify dL/dParam at `checks` random coordinates of every parameter.
void check_param_gradients(Layer& layer, const Tensor& x, double tol = 5e-2,
                           int checks = 8, float h = 1e-2f) {
  Rng rng(4321);
  const Tensor out = layer.forward(x, /*training=*/true);
  const Tensor cot = Tensor::randn(out.shape(), rng);
  for (Param* p : layer.params()) p->zero_grad();
  layer.backward(cot);

  for (Param* p : layer.params()) {
    for (int c = 0; c < checks; ++c) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(p->value.numel()) - 1));
      const float saved = p->value[i];
      p->value[i] = saved + h;
      const double fp = objective(layer, x, cot);
      p->value[i] = saved - h;
      const double fm = objective(layer, x, cot);
      p->value[i] = saved;
      const double numeric = (fp - fm) / (2.0 * h);
      EXPECT_NEAR(p->grad[i], numeric,
                  tol * std::max(1.0, std::abs(numeric)))
          << "param coordinate " << i;
    }
  }
}

Tensor random_input(Shape s, std::uint64_t seed = 77) {
  Rng rng(seed);
  return Tensor::randn(std::move(s), rng, 0.7f);
}

// ------------------------------------------------------------------ Dense

TEST(Dense, OutputShapeAndBias) {
  Dense d(3, 2);
  Rng rng(1);
  d.init(rng);
  const Tensor y = d.forward(random_input({4, 3}), false);
  EXPECT_EQ(y.shape(), (Shape{4, 2}));
}

TEST(Dense, RejectsWrongInputWidth) {
  Dense d(3, 2);
  EXPECT_THROW(d.forward(Tensor({4, 5}), false), CheckError);
}

TEST(Dense, KnownLinearMap) {
  Dense d(2, 1);
  // y = 2 x0 - x1 + 0.5
  auto params = d.params();
  params[0]->value = Tensor({1, 2}, {2.0f, -1.0f});
  params[1]->value = Tensor({1}, {0.5f});
  const Tensor y = d.forward(Tensor({1, 2}, {3.0f, 4.0f}), false);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(Dense, GradientCheck) {
  Dense d(4, 3);
  Rng rng(2);
  d.init(rng);
  check_input_gradient(d, random_input({5, 4}));
  check_param_gradients(d, random_input({5, 4}));
}

TEST(Dense, NoBiasVariantHasOneParam) {
  Dense d(4, 3, /*bias=*/false);
  EXPECT_EQ(d.params().size(), 1u);
}

// ----------------------------------------------------------------- Conv2D

TEST(Conv2D, OutputShape) {
  Conv2D c(2, 5, 3, 1, 1);
  Rng rng(3);
  c.init(rng);
  const Tensor y = c.forward(random_input({2, 2, 8, 8}), false);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8, 8}));
}

TEST(Conv2D, StrideAndPaddingShapes) {
  Conv2D c(1, 1, 3, 2, 1);
  Rng rng(4);
  c.init(rng);
  EXPECT_EQ(c.forward(random_input({1, 1, 9, 9}), false).shape(),
            (Shape{1, 1, 5, 5}));
}

TEST(Conv2D, IdentityKernelReproducesInput) {
  Conv2D c(1, 1, 3, 1, 1);
  auto params = c.params();
  Tensor w({1, 9});
  w[4] = 1.0f;  // centre tap
  params[0]->value = w;
  params[1]->value.fill(0.0f);
  const Tensor x = random_input({1, 1, 6, 6});
  const Tensor y = c.forward(x, false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(y[i], x[i], 1e-6f);
}

TEST(Conv2D, ChannelMismatchThrows) {
  Conv2D c(3, 4, 3);
  EXPECT_THROW(c.forward(Tensor({1, 2, 8, 8}), false), CheckError);
}

TEST(Conv2D, GradientCheck) {
  Conv2D c(2, 3, 3, 1, 1);
  Rng rng(5);
  c.init(rng);
  check_input_gradient(c, random_input({2, 2, 5, 5}));
  check_param_gradients(c, random_input({2, 2, 5, 5}));
}

TEST(Conv2D, StridedGradientCheck) {
  Conv2D c(1, 2, 3, 2, 1);
  Rng rng(6);
  c.init(rng);
  check_input_gradient(c, random_input({1, 1, 7, 7}));
  check_param_gradients(c, random_input({1, 1, 7, 7}));
}

// -------------------------------------------------------- DepthwiseConv2D

TEST(DepthwiseConv2D, PreservesChannelCount) {
  DepthwiseConv2D c(3, 3, 1, 1);
  Rng rng(7);
  c.init(rng);
  EXPECT_EQ(c.forward(random_input({2, 3, 6, 6}), false).shape(),
            (Shape{2, 3, 6, 6}));
}

TEST(DepthwiseConv2D, GradientCheck) {
  DepthwiseConv2D c(2, 3, 1, 1);
  Rng rng(8);
  c.init(rng);
  check_input_gradient(c, random_input({2, 2, 5, 5}));
  check_param_gradients(c, random_input({2, 2, 5, 5}));
}

TEST(DepthwiseConv2D, StridedGradientCheck) {
  DepthwiseConv2D c(2, 3, 2, 1);
  Rng rng(9);
  c.init(rng);
  check_input_gradient(c, random_input({1, 2, 7, 7}));
}

// -------------------------------------------------------------- MaxPool2D

TEST(MaxPool2D, SelectsMaxima) {
  MaxPool2D p(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  const Tensor y = p.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_EQ(y[0], 5.0f);
}

TEST(MaxPool2D, BackwardRoutesToArgmax) {
  MaxPool2D p(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  p.forward(x, false);
  const Tensor dx = p.backward(Tensor({1, 1, 1, 1}, 2.0f));
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 2.0f);
  EXPECT_EQ(dx[2], 0.0f);
}

TEST(MaxPool2D, GradientCheck) {
  MaxPool2D p(2);
  check_input_gradient(p, random_input({2, 2, 6, 6}));
}

// ----------------------------------------------------- Avg / Global pools

TEST(AvgPool2D, Averages) {
  AvgPool2D p(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 6});
  EXPECT_FLOAT_EQ(p.forward(x, false)[0], 3.0f);
}

TEST(AvgPool2D, RequiresDivisibleExtent) {
  AvgPool2D p(2);
  EXPECT_THROW(p.forward(Tensor({1, 1, 3, 4}), false), CheckError);
}

TEST(AvgPool2D, GradientCheck) {
  AvgPool2D p(2);
  check_input_gradient(p, random_input({1, 2, 4, 4}));
}

TEST(GlobalAvgPool, ReducesSpatialDims) {
  GlobalAvgPool p;
  Tensor x({1, 2, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) x[i] = 2.0f;        // channel 0
  for (std::size_t i = 4; i < 8; ++i) x[i] = 6.0f;        // channel 1
  const Tensor y = p.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
}

TEST(GlobalAvgPool, GradientCheck) {
  GlobalAvgPool p;
  check_input_gradient(p, random_input({2, 3, 4, 4}));
}

// ------------------------------------------------------------ Activations

TEST(ReLU, ClampsNegatives) {
  ReLU r;
  const Tensor y = r.forward(Tensor({1, 3}, std::vector<float>{-1, 0, 2}),
                             false);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
}

TEST(ReLU, GradientCheck) {
  ReLU r;
  // Shift inputs away from the kink at zero.
  Tensor x = random_input({3, 4});
  for (std::size_t i = 0; i < x.numel(); ++i)
    if (std::abs(x[i]) < 0.1f) x[i] += 0.2f;
  check_input_gradient(r, x);
}

TEST(LeakyReLU, NegativeSlope) {
  LeakyReLU r(0.1f);
  const Tensor y = r.forward(Tensor({1, 2}, std::vector<float>{-10, 10}),
                             false);
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[1], 10.0f);
}

TEST(Sigmoid, KnownValuesAndRange) {
  Sigmoid s;
  const Tensor y =
      s.forward(Tensor({1, 3}, std::vector<float>{0.0f, 100.0f, -100.0f}),
                false);
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  EXPECT_NEAR(y[1], 1.0f, 1e-6f);
  EXPECT_NEAR(y[2], 0.0f, 1e-6f);
}

TEST(Sigmoid, GradientCheck) {
  Sigmoid s;
  check_input_gradient(s, random_input({3, 4}));
}

// ---------------------------------------------------------------- Flatten

TEST(Flatten, RoundTrip) {
  Flatten f;
  const Tensor y = f.forward(random_input({2, 3, 4, 5}), false);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  const Tensor dx = f.backward(y);
  EXPECT_EQ(dx.shape(), (Shape{2, 3, 4, 5}));
}

// ---------------------------------------------------------------- Dropout

TEST(Dropout, IdentityAtInference) {
  Dropout d(0.5f);
  const Tensor x = random_input({2, 8});
  const Tensor y = d.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, ZerosRoughlyRateFraction) {
  Dropout d(0.5f);
  const Tensor x = Tensor({1, 4000}, 1.0f);
  const Tensor y = d.forward(x, /*training=*/true);
  int zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i)
    if (y[i] == 0.0f) ++zeros;
  EXPECT_NEAR(zeros / 4000.0, 0.5, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout d(0.5f);
  const Tensor x = Tensor({1, 100}, 1.0f);
  const Tensor y = d.forward(x, true);
  const Tensor dx = d.backward(Tensor({1, 100}, 1.0f));
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_EQ(dx[i], y[i]);
}

TEST(Dropout, InvalidRateThrows) {
  EXPECT_THROW(Dropout(1.0f), CheckError);
  EXPECT_THROW(Dropout(-0.1f), CheckError);
}

// -------------------------------------------------------------- BatchNorm

TEST(BatchNorm, NormalisesTrainingBatch) {
  BatchNorm bn(2);
  Rng rng(10);
  Tensor x = Tensor::randn({8, 2, 3, 3}, rng, 3.0f);
  const Tensor y = bn.forward(x, /*training=*/true);
  // Per-channel mean ≈ 0, variance ≈ 1.
  for (int c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    int count = 0;
    for (int n = 0; n < 8; ++n)
      for (int h = 0; h < 3; ++h)
        for (int w = 0; w < 3; ++w) {
          const float v = y.at4(n, c, h, w);
          sum += v;
          sq += double(v) * v;
          ++count;
        }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNorm, GradientCheck4D) {
  BatchNorm bn(2);
  check_input_gradient(bn, random_input({4, 2, 3, 3}), /*tol=*/8e-2);
  check_param_gradients(bn, random_input({4, 2, 3, 3}), /*tol=*/8e-2);
}

TEST(BatchNorm, GradientCheck2D) {
  BatchNorm bn(5);
  check_input_gradient(bn, random_input({6, 5}), /*tol=*/8e-2);
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  BatchNorm bn(1);
  Rng rng(11);
  // Train on many batches with mean 4.
  for (int i = 0; i < 50; ++i) {
    Tensor x = Tensor::randn({16, 1}, rng);
    for (std::size_t j = 0; j < x.numel(); ++j) x[j] += 4.0f;
    bn.forward(x, /*training=*/true);
  }
  // At inference an input of exactly 4 should normalise near 0.
  const Tensor y = bn.forward(Tensor({1, 1}, 4.0f), /*training=*/false);
  EXPECT_NEAR(y[0], 0.0f, 0.3f);
}

// ------------------------------------------------------------------ blocks

TEST(Sequential, ChainsLayers) {
  Sequential s;
  s.emplace<Dense>(3, 4).emplace<ReLU>().emplace<Dense>(4, 2);
  Rng rng(12);
  s.init(rng);
  EXPECT_EQ(s.forward(random_input({5, 3}), false).shape(), (Shape{5, 2}));
  EXPECT_EQ(s.params().size(), 4u);
}

TEST(Sequential, GradientCheck) {
  Sequential s;
  s.emplace<Dense>(3, 4).emplace<Sigmoid>().emplace<Dense>(4, 2);
  Rng rng(13);
  s.init(rng);
  check_input_gradient(s, random_input({4, 3}));
  check_param_gradients(s, random_input({4, 3}));
}

TEST(Residual, IdentityShortcutAddsInput) {
  // Inner path with zero weights → output equals input.
  auto inner = std::make_unique<Dense>(3, 3);
  inner->params()[0]->value.fill(0.0f);
  inner->params()[1]->value.fill(0.0f);
  Residual r(std::move(inner));
  const Tensor x = random_input({2, 3});
  const Tensor y = r.forward(x, false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Residual, GradientCheckWithProjection) {
  auto inner = std::make_unique<Dense>(3, 4);
  auto proj = std::make_unique<Dense>(3, 4);
  Rng rng(14);
  inner->init(rng);
  proj->init(rng);
  Residual r(std::move(inner), std::move(proj));
  check_input_gradient(r, random_input({3, 3}));
  check_param_gradients(r, random_input({3, 3}));
}

TEST(Residual, MismatchedPathsThrow) {
  auto inner = std::make_unique<Dense>(3, 4);
  Rng rng(15);
  inner->init(rng);
  Residual r(std::move(inner));  // identity shortcut keeps width 3
  EXPECT_THROW(r.forward(random_input({2, 3}), false), CheckError);
}

TEST(DenseConcat, GrowsChannels) {
  auto inner = std::make_unique<Conv2D>(2, 3, 3, 1, 1);
  Rng rng(16);
  inner->init(rng);
  DenseConcat d(std::move(inner));
  const Tensor y = d.forward(random_input({1, 2, 5, 5}), false);
  EXPECT_EQ(y.shape(), (Shape{1, 5, 5, 5}));
}

TEST(DenseConcat, PassthroughChannelsAreVerbatim) {
  auto inner = std::make_unique<Conv2D>(1, 1, 3, 1, 1);
  Rng rng(17);
  inner->init(rng);
  DenseConcat d(std::move(inner));
  const Tensor x = random_input({1, 1, 4, 4});
  const Tensor y = d.forward(x, false);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(y[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)]);
}

TEST(DenseConcat, GradientCheck) {
  auto inner = std::make_unique<Conv2D>(2, 2, 3, 1, 1);
  Rng rng(18);
  inner->init(rng);
  DenseConcat d(std::move(inner));
  check_input_gradient(d, random_input({2, 2, 4, 4}));
  check_param_gradients(d, random_input({2, 2, 4, 4}));
}

}  // namespace
}  // namespace orev::nn
