// Tests for the §3.2 external-adversary surface (Y1 analytics + the
// analytics-driven jammer) and the §7/§8 runtime defenses (SDL write
// attestation, telemetry drift detection).
#include <gtest/gtest.h>

#include "apps/y1_jammer.hpp"
#include "defense/runtime_monitor.hpp"
#include "oran/y1.hpp"
#include "ran/link.hpp"

namespace orev {
namespace {

// --------------------------------------------------------------------- Y1

class RecordingConsumer : public oran::Y1Consumer {
 public:
  void on_rai(const oran::RaiReport& report) override {
    reports.push_back(report);
  }
  std::vector<oran::RaiReport> reports;
};

TEST(Y1, ValidCertificateSubscribes) {
  oran::Operator op("op", "sec");
  oran::Y1Service y1(&op);
  auto consumer = std::make_shared<RecordingConsumer>();
  EXPECT_TRUE(y1.subscribe(op.issue_certificate("consumer-1"), consumer));
  EXPECT_EQ(y1.consumer_count(), 1);
}

TEST(Y1, ForgedCertificateRejected) {
  oran::Operator op("op", "sec");
  oran::Operator rogue("rogue", "other");
  oran::Y1Service y1(&op);
  auto consumer = std::make_shared<RecordingConsumer>();
  EXPECT_FALSE(y1.subscribe(rogue.issue_certificate("evil"), consumer));
  EXPECT_EQ(y1.consumer_count(), 0);
  // Unauthenticated consumers receive nothing.
  y1.publish(oran::RaiReport{});
  EXPECT_TRUE(consumer->reports.empty());
}

TEST(Y1, PublishFansOutToAllConsumers) {
  oran::Operator op("op", "sec");
  oran::Y1Service y1(&op);
  auto a = std::make_shared<RecordingConsumer>();
  auto b = std::make_shared<RecordingConsumer>();
  y1.subscribe(op.issue_certificate("a"), a);
  y1.subscribe(op.issue_certificate("b"), b);
  oran::RaiReport r;
  r.dl_throughput_mbps = 42.0;
  y1.publish(r);
  ASSERT_EQ(a->reports.size(), 1u);
  ASSERT_EQ(b->reports.size(), 1u);
  EXPECT_EQ(a->reports[0].dl_throughput_mbps, 42.0);
}

TEST(Y1, UnsubscribeStopsDelivery) {
  oran::Operator op("op", "sec");
  oran::Y1Service y1(&op);
  auto a = std::make_shared<RecordingConsumer>();
  y1.subscribe(op.issue_certificate("a"), a);
  EXPECT_TRUE(y1.unsubscribe("a"));
  EXPECT_FALSE(y1.unsubscribe("a"));
  y1.publish(oran::RaiReport{});
  EXPECT_TRUE(a->reports.empty());
}

// ------------------------------------------------- analytics-driven jammer

TEST(AnalyticsJammer, AlwaysOnHasFullDutyCycle) {
  ran::Jammer jammer(ran::JammerConfig{}, Rng(1));
  apps::AnalyticsDrivenJammer ctl(&jammer, apps::JammingStrategy::kAlwaysOn,
                                  0.0);
  for (int i = 0; i < 10; ++i) ctl.on_rai(oran::RaiReport{});
  EXPECT_DOUBLE_EQ(ctl.duty_cycle(), 1.0);
  EXPECT_TRUE(jammer.active());
}

TEST(AnalyticsJammer, ThresholdTracksTraffic) {
  ran::Jammer jammer(ran::JammerConfig{}, Rng(2));
  apps::AnalyticsDrivenJammer ctl(&jammer,
                                  apps::JammingStrategy::kThreshold, 10.0);
  oran::RaiReport busy;
  busy.dl_throughput_mbps = 20.0;
  oran::RaiReport idle;
  idle.dl_throughput_mbps = 1.0;
  ctl.on_rai(busy);
  EXPECT_TRUE(jammer.active());
  ctl.on_rai(idle);
  EXPECT_FALSE(jammer.active());
  EXPECT_DOUBLE_EQ(ctl.duty_cycle(), 0.5);
}

TEST(AnalyticsJammer, EfficientJammingMatchesAlwaysOnDamage) {
  // The §3.2 scenario end-to-end: the authenticated Y1 consumer jams only
  // the busy intervals, cutting duty cycle while matching the always-on
  // jammer's damage to the traffic that matters.
  auto run = [](apps::JammingStrategy strategy, double* duty) {
    ran::UplinkConfig cfg;
    ran::UplinkSim sim(cfg, 99);
    oran::Operator op("op", "sec");
    oran::Y1Service y1(&op);
    auto ctl = std::make_shared<apps::AnalyticsDrivenJammer>(
        &sim.jammer(), strategy, 5.0);
    y1.subscribe(op.issue_certificate("partner"), ctl);

    // Busy/idle day: traffic alternates; analytics mirror the demand.
    double busy_tput = 0.0;
    int busy_intervals = 0;
    for (int t = 0; t < 200; ++t) {
      const bool busy_period = (t / 20) % 2 == 0;
      oran::RaiReport rai;
      rai.interval = static_cast<std::uint64_t>(t);
      rai.dl_throughput_mbps = busy_period ? 20.0 : 0.5;
      y1.publish(rai);  // controller reacts, then the TTI runs
      const ran::KpmRecord k = sim.step();
      if (busy_period) {
        busy_tput += k.throughput_mbps;
        ++busy_intervals;
      }
    }
    *duty = ctl->duty_cycle();
    return busy_tput / busy_intervals;
  };

  double duty_always = 0.0, duty_smart = 0.0;
  const double tput_always =
      run(apps::JammingStrategy::kAlwaysOn, &duty_always);
  const double tput_smart =
      run(apps::JammingStrategy::kThreshold, &duty_smart);

  EXPECT_DOUBLE_EQ(duty_always, 1.0);
  EXPECT_NEAR(duty_smart, 0.5, 0.05);  // only the busy half is jammed
  // Damage to the busy traffic is equivalent (within noise).
  EXPECT_NEAR(tput_smart, tput_always, 0.35 * tput_always + 0.5);
}

// --------------------------------------------------------- write monitor

TEST(SdlWriteMonitor, FlagsUnexpectedWriter) {
  oran::Rbac rbac;
  rbac.define_role("rw", {oran::Permission{"telemetry/*", true, true}});
  rbac.assign_role("platform", "rw");
  rbac.assign_role("rogue", "rw");  // over-permissive policy
  oran::Sdl sdl(&rbac);

  defense::SdlWriteMonitor monitor;
  monitor.expect_writers("telemetry/kpm", {"platform"});

  sdl.write_tensor("platform", "telemetry/kpm", "k", nn::Tensor({1}));
  EXPECT_TRUE(monitor.scan(sdl).empty());

  sdl.write_tensor("rogue", "telemetry/kpm", "k", nn::Tensor({1}));
  const auto alerts = monitor.scan(sdl);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].writer, "rogue");
  EXPECT_EQ(alerts[0].ns, "telemetry/kpm");
  EXPECT_EQ(monitor.alerts_raised(), 1u);
}

TEST(SdlWriteMonitor, IgnoresDeniedWritesAndReads) {
  oran::Rbac rbac;
  rbac.define_role("ro", {oran::Permission{"telemetry/*", true, false}});
  rbac.assign_role("reader", "ro");
  oran::Sdl sdl(&rbac);
  defense::SdlWriteMonitor monitor;
  monitor.expect_writers("telemetry/kpm", {"platform"});

  // A denied write and a read must not alert (the policy already held).
  sdl.write_tensor("reader", "telemetry/kpm", "k", nn::Tensor({1}));
  nn::Tensor out;
  sdl.read_tensor("reader", "telemetry/kpm", "k", out);
  EXPECT_TRUE(monitor.scan(sdl).empty());
}

TEST(SdlWriteMonitor, UnprotectedNamespacesIgnored) {
  oran::Rbac rbac;
  rbac.define_role("rw", {oran::Permission{"*", true, true}});
  rbac.assign_role("anyone", "rw");
  oran::Sdl sdl(&rbac);
  defense::SdlWriteMonitor monitor;
  monitor.expect_writers("telemetry/kpm", {"platform"});
  sdl.write_text("anyone", "scratch", "k", "v");
  EXPECT_TRUE(monitor.scan(sdl).empty());
}

TEST(SdlWriteMonitor, ScanIsIncremental) {
  oran::Rbac rbac;
  rbac.define_role("rw", {oran::Permission{"*", true, true}});
  rbac.assign_role("rogue", "rw");
  oran::Sdl sdl(&rbac);
  defense::SdlWriteMonitor monitor;
  monitor.expect_writers("pm", {"platform"});
  sdl.write_text("rogue", "pm", "k", "v");
  EXPECT_EQ(monitor.scan(sdl).size(), 1u);
  EXPECT_TRUE(monitor.scan(sdl).empty());  // already consumed
  sdl.write_text("rogue", "pm", "k", "v2");
  EXPECT_EQ(monitor.scan(sdl).size(), 1u);
}

// --------------------------------------------------------- drift detector

TEST(DriftDetector, CalmOnStationaryStream) {
  defense::TelemetryDriftDetector det(4.0, 30);
  Rng rng(5);
  for (int i = 0; i < 100; ++i)
    det.observe(nn::Tensor::randn({8}, rng, 0.1f));
  ASSERT_TRUE(det.warmed_up());
  int false_alarms = 0;
  for (int i = 0; i < 100; ++i)
    if (det.is_anomalous(nn::Tensor::randn({8}, rng, 0.1f))) ++false_alarms;
  EXPECT_LT(false_alarms, 10);
}

TEST(DriftDetector, FlagsBoundedPerturbations) {
  defense::TelemetryDriftDetector det(4.0, 30);
  Rng rng(6);
  for (int i = 0; i < 100; ++i)
    det.observe(nn::Tensor::randn({8}, rng, 0.05f));
  // A UAP-like constant offset on one feature.
  nn::Tensor perturbed = nn::Tensor::randn({8}, rng, 0.05f);
  perturbed[3] += 0.5f;
  EXPECT_TRUE(det.is_anomalous(perturbed));
  EXPECT_GT(det.score(perturbed), det.score(nn::Tensor::randn({8}, rng, 0.05f)));
}

TEST(DriftDetector, SilentDuringWarmup) {
  defense::TelemetryDriftDetector det(4.0, 30);
  Rng rng(7);
  det.observe(nn::Tensor::randn({4}, rng));
  EXPECT_EQ(det.score(nn::Tensor({4}, 100.0f)), 0.0);
  EXPECT_FALSE(det.is_anomalous(nn::Tensor({4}, 100.0f)));
}

TEST(DriftDetector, RejectsShapeChange) {
  defense::TelemetryDriftDetector det;
  Rng rng(8);
  det.observe(nn::Tensor::randn({4}, rng));
  EXPECT_THROW(det.observe(nn::Tensor::randn({5}, rng)), CheckError);
}

TEST(DriftDetector, ValidatesConfig) {
  EXPECT_THROW(defense::TelemetryDriftDetector(0.0, 30), CheckError);
  EXPECT_THROW(defense::TelemetryDriftDetector(4.0, 1), CheckError);
}

TEST(DriftDetector, DetectsUapOnKpmStream) {
  // End-to-end flavour: learn the clean KPM distribution, then score
  // UAP-shifted samples — the §8 "runtime anomaly detection on SDL data
  // streams" concept.
  ran::UplinkConfig cfg;
  ran::UplinkSim sim(cfg, 31);
  sim.jammer().activate();  // learn the *jammed* distribution
  // Raw SINR under Rayleigh fading is noisy (σ ≈ 6–8 dB), so the z
  // threshold is set accordingly and the injected shift is the ~30 dB an
  // attacker needs to move a jammed reading into the clean regime.
  defense::TelemetryDriftDetector det(3.0, 40);
  for (int i = 0; i < 120; ++i) det.observe(sim.step().features());

  nn::Tensor uap({ran::KpmRecord::kFeatureCount});
  uap[0] = 30.0f;  // the attacker inflates the (unnormalised) SINR feature
  int detected = 0;
  constexpr int kProbes = 40;
  for (int i = 0; i < kProbes; ++i) {
    nn::Tensor s = sim.step().features();
    s += uap;
    if (det.is_anomalous(s)) ++detected;
  }
  EXPECT_GT(detected, kProbes / 2);
}

}  // namespace
}  // namespace orev
