// Defense tests (§7): adversarial-training augmentation semantics and
// robustness gain, defensive-distillation student fidelity and boundary
// smoothing, plus edge cases of the runtime monitors (drift detector,
// SDL write monitor) that the inline defense plane builds on.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/clone.hpp"
#include "attack/metrics.hpp"
#include "attack/uap.hpp"
#include "defense/defenses.hpp"
#include "defense/runtime_monitor.hpp"
#include "oran/rbac.hpp"
#include "oran/sdl.hpp"
#include "test_helpers.hpp"

namespace orev::defense {
namespace {

using test::blob_dataset;

nn::Model fresh_blob_model(std::uint64_t seed) {
  return apps::make_kpm_dnn(2, 2, seed);
}

TEST(AdvTrain, AugmentationSizeAndLabels) {
  const data::Dataset benign = blob_dataset(20, 1);
  nn::Model surrogate = test::known_linear_model();
  const data::Dataset aug = make_adversarial_augmentation(
      benign, surrogate, {0.1f, 0.2f, 0.3f});
  EXPECT_EQ(aug.size(), 120);  // 3 ε values × (20 per class × 2 classes)
  // Ground-truth labels are preserved verbatim, per ε block.
  for (int e = 0; e < 3; ++e)
    for (int i = 0; i < benign.size(); ++i)
      EXPECT_EQ(aug.y[static_cast<std::size_t>(e * benign.size() + i)],
                benign.y[static_cast<std::size_t>(i)]);
}

TEST(AdvTrain, AugmentedSamplesDifferFromBenign) {
  const data::Dataset benign = blob_dataset(10, 2);
  nn::Model surrogate = test::known_linear_model();
  const data::Dataset aug =
      make_adversarial_augmentation(benign, surrogate, {0.2f});
  double moved = 0.0;
  for (int i = 0; i < benign.size(); ++i)
    moved += nn::l2_distance(benign.sample(i), aug.sample(i));
  EXPECT_GT(moved / benign.size(), 0.05);
}

TEST(AdvTrain, RequiresAtLeastOneEpsilon) {
  const data::Dataset benign = blob_dataset(5, 3);
  nn::Model surrogate = test::known_linear_model();
  EXPECT_THROW(make_adversarial_augmentation(benign, surrogate, {}),
               CheckError);
}

TEST(AdvTrain, ImprovesRobustAccuracyAgainstSameAttack) {
  // Train two victims on the same data; harden one with AT; attack both
  // with FGSM generated on the same surrogate the defense used.
  const data::Dataset train = blob_dataset(80, 4);
  const data::Dataset test_set = blob_dataset(40, 5);
  nn::Model surrogate = test::known_linear_model();

  nn::Model base = fresh_blob_model(6);
  test::quick_fit(base, train);

  nn::Model hardened = fresh_blob_model(6);
  test::quick_fit(hardened, train);
  AdvTrainConfig cfg;
  cfg.eps_values = {0.1f, 0.2f, 0.3f};
  cfg.train.max_epochs = 30;
  cfg.train.learning_rate = 1e-2f;
  adversarial_training(hardened, train, test_set, surrogate, cfg);

  // FGSM at ε = 0.3 from the surrogate against both victims.
  attack::Fgsm fgsm(0.3f);
  nn::Tensor x_adv(test_set.x.shape());
  for (int i = 0; i < test_set.size(); ++i) {
    const nn::Tensor s = test_set.sample(i);
    x_adv.set_batch(i, fgsm.perturb(surrogate, s, surrogate.predict_one(s)));
  }
  const attack::AttackMetrics mb =
      attack::evaluate_attack(base, test_set.x, x_adv, test_set.y);
  const attack::AttackMetrics mh =
      attack::evaluate_attack(hardened, test_set.x, x_adv, test_set.y);
  EXPECT_GE(mh.accuracy, mb.accuracy)
      << "adversarial training must not be weaker than no defense";
  // And the hardened model keeps clean accuracy.
  EXPECT_GT(nn::accuracy(hardened.forward(test_set.x), test_set.y), 0.9);
}

TEST(Distill, StudentMatchesTeacherAccuracy) {
  const data::Dataset train = blob_dataset(80, 7);
  const data::Dataset val = blob_dataset(30, 8);
  nn::Model teacher = fresh_blob_model(9);
  test::quick_fit(teacher, train);
  const double teacher_acc = nn::accuracy(teacher.forward(val.x), val.y);

  DistillConfig cfg;
  cfg.temperature = 8.0f;
  cfg.train.max_epochs = 40;
  cfg.train.learning_rate = 2e-2f;
  nn::Model student =
      distill(teacher, [](std::uint64_t s) { return fresh_blob_model(s); },
              train, val, cfg);
  const double student_acc = nn::accuracy(student.forward(val.x), val.y);
  EXPECT_GE(student_acc, teacher_acc - 0.1);
}

TEST(Distill, TemperatureMustBeAtLeastOne) {
  const data::Dataset train = blob_dataset(10, 10);
  nn::Model teacher = fresh_blob_model(11);
  DistillConfig cfg;
  cfg.temperature = 0.5f;
  EXPECT_THROW(distill(teacher,
                       [](std::uint64_t s) { return fresh_blob_model(s); },
                       train, train, cfg),
               CheckError);
}

TEST(Distill, StudentAgreesWithTeacherOnFreshData) {
  // Fidelity: the student must replicate the teacher's decision function,
  // not merely the training labels, on data it never saw.
  const data::Dataset train = blob_dataset(80, 12);
  nn::Model teacher = fresh_blob_model(13);
  test::quick_fit(teacher, train);

  DistillConfig cfg;
  cfg.temperature = 10.0f;
  cfg.train.max_epochs = 40;
  cfg.train.learning_rate = 2e-2f;
  nn::Model student =
      distill(teacher, [](std::uint64_t s) { return fresh_blob_model(s); },
              train, train, cfg);

  const data::Dataset fresh = blob_dataset(60, 99);
  const std::vector<int> pt = teacher.predict(fresh.x);
  const std::vector<int> ps = student.predict(fresh.x);
  int agree = 0;
  for (std::size_t i = 0; i < pt.size(); ++i)
    if (pt[i] == ps[i]) ++agree;
  EXPECT_GE(static_cast<double>(agree) / pt.size(), 0.9);
}

TEST(Defense, BlackBoxAttackStillBeatsDistillationAtHighEps) {
  // The §7 headline: model cloning nullifies distillation — a UAP from a
  // surrogate cloned off the *distilled* victim still degrades it.
  const data::Dataset train = blob_dataset(80, 14);
  nn::Model teacher = fresh_blob_model(15);
  test::quick_fit(teacher, train);
  DistillConfig dcfg;
  dcfg.temperature = 10.0f;
  dcfg.train.max_epochs = 30;
  dcfg.train.learning_rate = 1e-2f;
  nn::Model distilled =
      distill(teacher, [](std::uint64_t s) { return fresh_blob_model(s); },
              train, train, dcfg);

  // Clone the distilled victim black-box, then UAP it.
  const data::Dataset fresh = blob_dataset(60, 16);
  const data::Dataset d_clone =
      attack::collect_clone_dataset(distilled, fresh.x);
  attack::CloneConfig ccfg;
  ccfg.train.max_epochs = 40;
  ccfg.train.learning_rate = 2e-2f;
  attack::CloneReport clone = attack::clone_model(
      d_clone,
      {{"1L",
        [](std::uint64_t s) { return apps::make_one_layer({2}, 2, s); }}},
      ccfg);

  attack::UapConfig ucfg;
  ucfg.eps = 0.5f;
  ucfg.target_fooling = 0.6;
  attack::Fgsm inner(0.25f);
  const attack::UapResult uap =
      attack::generate_uap(clone.model, fresh.x, inner, ucfg);
  const nn::Tensor x_adv = attack::apply_uap(fresh.x, uap.perturbation);
  const attack::AttackMetrics m =
      attack::evaluate_attack(distilled, fresh.x, x_adv, fresh.y);
  const double clean = nn::accuracy(distilled.forward(fresh.x), fresh.y);
  EXPECT_LT(m.accuracy, clean - 0.2)
      << "distillation should not stop the cloned black-box UAP";
}

// ----------------------------------------------- runtime-monitor edges --

TEST(DriftDetector, EmptyWindowScoresZero) {
  // No observations at all (distinct from mid-warmup): the detector has
  // no feature layout yet and must stay silent on any probe shape.
  TelemetryDriftDetector det(4.0, 2);
  EXPECT_EQ(det.samples_observed(), 0);
  EXPECT_FALSE(det.warmed_up());
  EXPECT_EQ(det.score(nn::Tensor({4}, 100.0f)), 0.0);
  EXPECT_FALSE(det.is_anomalous(nn::Tensor({7}, 100.0f)));
}

TEST(DriftDetector, ConstantStreamHitsTheVarianceFloorNotInfinity) {
  TelemetryDriftDetector det(4.0, 2);
  const nn::Tensor same({4}, 0.25f);
  for (int i = 0; i < 40; ++i) det.observe(same);
  ASSERT_TRUE(det.warmed_up());
  // Zero deviation from a zero-variance stream scores exactly 0...
  EXPECT_EQ(det.score(same), 0.0);
  // ...and any deviation divides by the variance floor, not by zero: the
  // score is huge but finite, so downstream thresholds stay meaningful.
  nn::Tensor shifted = same;
  shifted[2] += 0.001f;
  const double z = det.score(shifted);
  EXPECT_TRUE(std::isfinite(z));
  EXPECT_GT(z, 4.0);
  EXPECT_TRUE(det.is_anomalous(shifted));
}

TEST(DriftDetector, MinimalWarmupUsesTheTwoSampleVariance) {
  // warmup = 2 is the smallest the constructor admits; after exactly two
  // samples the Welford divisor is count − 1 = 1, giving the textbook
  // two-sample variance — no degenerate count − 1 = 0 division.
  TelemetryDriftDetector det(4.0, 2);
  det.observe(nn::Tensor({1}, 0.0f));
  EXPECT_EQ(det.score(nn::Tensor({1}, 100.0f)), 0.0);  // still warming up
  det.observe(nn::Tensor({1}, 1.0f));
  ASSERT_TRUE(det.warmed_up());
  // mean = 0.5, m2 = 0.5 → var = 0.5: z(1.5) = 1.0 / sqrt(0.5).
  EXPECT_NEAR(det.score(nn::Tensor({1}, 1.5f)), 1.0 / std::sqrt(0.5), 1e-9);
}

TEST(SdlWriteMonitor, EmptyExpectedWriterSetFlagsEveryWriter) {
  // Declaring a namespace with no expected writers means "nobody may
  // write this" — every successful write alerts, including the most
  // privileged identity.
  oran::Rbac rbac;
  rbac.define_role("rw", {oran::Permission{"*", true, true}});
  rbac.assign_role("platform", "rw");
  oran::Sdl sdl(&rbac);
  SdlWriteMonitor monitor;
  monitor.expect_writers("frozen", {});
  EXPECT_THROW(monitor.expect_writers("", {"platform"}), CheckError);

  sdl.write_text("platform", "frozen", "k", "v");
  const auto alerts = monitor.scan(sdl);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].writer, "platform");
}

TEST(SdlWriteMonitor, CursorSurvivesAuditRingEviction) {
  oran::Rbac rbac;
  rbac.define_role("rw", {oran::Permission{"*", true, true}});
  rbac.assign_role("rogue", "rw");
  oran::Sdl sdl(&rbac);
  sdl.set_audit_capacity(4);
  SdlWriteMonitor monitor;
  monitor.expect_writers("pm", {"platform"});

  sdl.write_text("rogue", "pm", "k", "v0");
  sdl.write_text("rogue", "pm", "k", "v1");
  EXPECT_EQ(monitor.scan(sdl).size(), 2u);

  // Ten more writes overflow the 4-record ring: the six evicted before
  // this scan are gone (not re-reported, not double-counted), the four
  // surviving records alert once each, and the cursor lands at the tail.
  for (int i = 0; i < 10; ++i)
    sdl.write_text("rogue", "pm", "k", "v" + std::to_string(2 + i));
  EXPECT_GT(sdl.audit_dropped_records(), 0u);
  EXPECT_EQ(monitor.scan(sdl).size(), 4u);
  EXPECT_TRUE(monitor.scan(sdl).empty());
  EXPECT_EQ(monitor.alerts_raised(), 6u);
}

}  // namespace
}  // namespace orev::defense
