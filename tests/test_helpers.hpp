// Shared fixtures for the test suite: tiny datasets and models that train
// in milliseconds, plus a hand-weighted linear model whose decision
// boundary is known exactly (for attack-conformance tests).
#pragma once

#include <memory>

#include "apps/model_zoo.hpp"
#include "data/dataset.hpp"
#include "nn/layers.hpp"
#include "nn/trainer.hpp"
#include "ran/datasets.hpp"

namespace orev::test {

/// Small spectrogram config (16×16) for fast conv-model tests.
inline ran::SpectrogramConfig tiny_spectrogram_config() {
  ran::SpectrogramConfig cfg;
  cfg.freq_bins = 16;
  cfg.time_frames = 16;
  return cfg;
}

inline data::Dataset tiny_spectrogram_dataset(int per_class = 40,
                                              std::uint64_t seed = 99) {
  return ran::make_spectrogram_dataset(tiny_spectrogram_config(), per_class,
                                       seed);
}

/// A 2-feature, 2-class linearly separable blob dataset. Class 0 is
/// centred at (0.3, 0.3), class 1 at (0.7, 0.7); margin >> noise.
inline data::Dataset blob_dataset(int per_class = 50,
                                  std::uint64_t seed = 7) {
  Rng rng(seed);
  data::Dataset d;
  d.num_classes = 2;
  d.x = nn::Tensor({2 * per_class, 2});
  for (int i = 0; i < 2 * per_class; ++i) {
    const bool hi = i >= per_class;
    const float cx = hi ? 0.7f : 0.3f;
    d.x.at2(i, 0) = cx + rng.normal(0.0f, 0.05f);
    d.x.at2(i, 1) = cx + rng.normal(0.0f, 0.05f);
    d.y.push_back(hi ? 1 : 0);
  }
  d.x.clamp(0.0f, 1.0f);
  return d;
}

/// A linear 2→2 model with hand-set weights whose decision rule is
/// exactly "class 1 iff x0 + x1 > 1": logits = W x with
/// W = [[-s, -s], [s, s]] and biases [s, -s].
inline nn::Model known_linear_model(float scale = 8.0f) {
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Dense>(2, 2);
  nn::Model m("KnownLinear", std::move(seq), {2}, 2);
  std::vector<nn::Tensor> w;
  w.push_back(nn::Tensor({2, 2}, {-scale, -scale, scale, scale}));
  w.push_back(nn::Tensor({2}, {scale, -scale}));
  m.set_weights(w);
  return m;
}

/// Train a model briefly on a dataset; returns final validation accuracy.
inline double quick_fit(nn::Model& m, const data::Dataset& d,
                        int epochs = 40, float lr = 2e-2f) {
  Rng rng(3);
  const data::Split s = data::stratified_split(d, 0.75, rng);
  nn::TrainConfig cfg;
  cfg.max_epochs = epochs;
  cfg.learning_rate = lr;
  nn::Trainer t(cfg);
  const nn::TrainReport r = t.fit(m, s.train.x, s.train.y, s.test.x, s.test.y);
  return r.best_val_accuracy;
}

}  // namespace orev::test
