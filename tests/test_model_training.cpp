// Model / optimizer / trainer tests: learning on separable data, early
// stopping, LR scheduling, best-weight restoration, input gradients,
// serialisation round-trips.
#include <gtest/gtest.h>

#include <cstdio>

#include "nn/layers.hpp"
#include "nn/trainer.hpp"
#include "test_helpers.hpp"

namespace orev::nn {
namespace {

Model tiny_mlp(std::uint64_t seed = 1) {
  auto s = std::make_unique<Sequential>();
  s->emplace<Dense>(2, 8).emplace<ReLU>().emplace<Dense>(8, 2);
  Model m("TinyMlp", std::move(s), {2}, 2);
  Rng rng(seed);
  m.init(rng);
  return m;
}

TEST(Model, ForwardAutoBatchesSingleSample) {
  Model m = tiny_mlp();
  const Tensor logits = m.forward(Tensor::from({0.1f, 0.2f}));
  EXPECT_EQ(logits.shape(), (Shape{1, 2}));
}

TEST(Model, RejectsWrongSampleShape) {
  Model m = tiny_mlp();
  EXPECT_THROW(m.forward(Tensor({3})), CheckError);
  EXPECT_THROW(m.forward(Tensor({2, 3})), CheckError);
}

TEST(Model, PredictMatchesArgmaxOfLogits) {
  Model m = tiny_mlp();
  Rng rng(2);
  const Tensor x = Tensor::uniform({6, 2}, rng, 0.0f, 1.0f);
  const Tensor logits = m.forward(x);
  const std::vector<int> preds = m.predict(x);
  for (int i = 0; i < 6; ++i) {
    const int expect = logits.at2(i, 0) >= logits.at2(i, 1) ? 0 : 1;
    EXPECT_EQ(preds[static_cast<std::size_t>(i)], expect);
  }
}

TEST(Model, PredictProbaRowsSumToOne) {
  Model m = tiny_mlp();
  Rng rng(3);
  const Tensor p = m.predict_proba(Tensor::uniform({4, 2}, rng, 0.0f, 1.0f));
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(p.at2(i, 0) + p.at2(i, 1), 1.0f, 1e-5f);
}

TEST(Model, NumParametersCountsAll) {
  Model m = tiny_mlp();
  // Dense(2,8): 16+8; Dense(8,2): 16+2 → 42.
  EXPECT_EQ(m.num_parameters(), 42u);
}

TEST(Model, WeightsRoundTrip) {
  Model a = tiny_mlp(1);
  Model b = tiny_mlp(2);
  b.set_weights(a.weights());
  Rng rng(4);
  const Tensor x = Tensor::uniform({3, 2}, rng, 0.0f, 1.0f);
  const Tensor la = a.forward(x);
  const Tensor lb = b.forward(x);
  for (std::size_t i = 0; i < la.numel(); ++i) EXPECT_EQ(la[i], lb[i]);
}

TEST(Model, SaveLoadRoundTrip) {
  Model a = tiny_mlp(5);
  const std::string path = "/tmp/orev_model_test.bin";
  ASSERT_TRUE(a.save(path));
  Model b = tiny_mlp(6);
  ASSERT_TRUE(b.load(path));
  Rng rng(7);
  const Tensor x = Tensor::uniform({3, 2}, rng, 0.0f, 1.0f);
  const Tensor la = a.forward(x);
  const Tensor lb = b.forward(x);
  for (std::size_t i = 0; i < la.numel(); ++i) EXPECT_EQ(la[i], lb[i]);
  std::remove(path.c_str());
}

TEST(Model, LoadRejectsWrongArchitecture) {
  Model a = tiny_mlp(8);
  const std::string path = "/tmp/orev_model_mismatch.bin";
  ASSERT_TRUE(a.save(path));
  auto s = std::make_unique<Sequential>();
  s->emplace<Dense>(2, 4).emplace<Dense>(4, 2);
  Model other("Other", std::move(s), {2}, 2);
  EXPECT_FALSE(other.load(path));
  std::remove(path.c_str());
}

TEST(Model, InputGradientMatchesNumeric) {
  Model m = tiny_mlp(9);
  Rng rng(10);
  Tensor x = Tensor::uniform({2, 2}, rng, 0.1f, 0.9f);
  const std::vector<int> y = {0, 1};
  const Tensor g = m.input_gradient(x, y);
  ASSERT_EQ(g.shape(), x.shape());
  const float h = 1e-3f;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x;
    xp[i] += h;
    Tensor xm = x;
    xm[i] -= h;
    const float fp = cross_entropy_with_logits(m.forward(xp), y).loss;
    const float fm = cross_entropy_with_logits(m.forward(xm), y).loss;
    EXPECT_NEAR(g[i], (fp - fm) / (2.0f * h), 5e-3f);
  }
}

// ------------------------------------------------------------- optimizers

TEST(Sgd, DescendsQuadratic) {
  // Minimise f(w) = (w - 3)^2 by hand-feeding gradients.
  Param w({1});
  w.value[0] = 0.0f;
  Sgd opt({&w}, 0.1f, /*momentum=*/0.0f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-3f);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  auto run = [](float momentum) {
    Param w({1});
    w.value[0] = 10.0f;
    Sgd opt({&w}, 0.01f, momentum);
    for (int i = 0; i < 50; ++i) {
      opt.zero_grad();
      w.grad[0] = 2.0f * w.value[0];
      opt.step();
    }
    return std::abs(w.value[0]);
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(Adam, DescendsQuadratic) {
  Param w({1});
  w.value[0] = -5.0f;
  Adam opt({&w}, 0.2f);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    w.grad[0] = 2.0f * (w.value[0] - 1.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 1.0f, 1e-2f);
}

TEST(Optimizer, RejectsNonPositiveLearningRate) {
  Param w({1});
  EXPECT_THROW(Sgd({&w}, 0.0f), CheckError);
  Sgd opt({&w}, 0.1f);
  EXPECT_THROW(opt.set_learning_rate(-1.0f), CheckError);
}

// ----------------------------------------------------------------- trainer

TEST(Trainer, LearnsSeparableBlobs) {
  Model m = tiny_mlp(11);
  const double acc = test::quick_fit(m, test::blob_dataset(60, 12));
  EXPECT_GT(acc, 0.95);
}

TEST(Trainer, EarlyStoppingTriggersOnPlateau) {
  Model m = tiny_mlp(13);
  const data::Dataset d = test::blob_dataset(40, 14);
  Rng rng(15);
  const data::Split s = data::stratified_split(d, 0.75, rng);
  TrainConfig cfg;
  cfg.max_epochs = 200;  // far more than needed on trivially separable data
  cfg.early_stop_patience = 3;
  cfg.learning_rate = 5e-2f;
  cfg.min_delta = 1e-3f;  // demand a real improvement each epoch
  Trainer t(cfg);
  const TrainReport r = t.fit(m, s.train.x, s.train.y, s.test.x, s.test.y);
  EXPECT_TRUE(r.early_stopped);
  EXPECT_LT(r.epochs_run, 200);
}

TEST(Trainer, LearningRateDropsOnPlateau) {
  Model m = tiny_mlp(16);
  const data::Dataset d = test::blob_dataset(40, 17);
  Rng rng(18);
  const data::Split s = data::stratified_split(d, 0.75, rng);
  TrainConfig cfg;
  cfg.max_epochs = 60;
  cfg.lr_patience = 2;
  cfg.lr_gamma = 0.5f;
  cfg.min_delta = 0.05f;  // large delta → plateau detected quickly
  cfg.early_stop_patience = 50;  // keep training through the plateau
  Trainer t(cfg);
  const TrainReport r = t.fit(m, s.train.x, s.train.y, s.test.x, s.test.y);
  ASSERT_FALSE(r.history.empty());
  EXPECT_LT(r.history.back().learning_rate,
            r.history.front().learning_rate);
}

TEST(Trainer, HistoryRecordsEveryEpoch) {
  Model m = tiny_mlp(19);
  const data::Dataset d = test::blob_dataset(30, 20);
  Rng rng(21);
  const data::Split s = data::stratified_split(d, 0.7, rng);
  TrainConfig cfg;
  cfg.max_epochs = 5;
  cfg.early_stop_patience = 100;
  Trainer t(cfg);
  const TrainReport r = t.fit(m, s.train.x, s.train.y, s.test.x, s.test.y);
  EXPECT_EQ(r.epochs_run, 5);
  EXPECT_EQ(r.history.size(), 5u);
  for (int e = 0; e < 5; ++e)
    EXPECT_EQ(r.history[static_cast<std::size_t>(e)].epoch, e);
}

TEST(Trainer, CallbackCanAbort) {
  Model m = tiny_mlp(22);
  const data::Dataset d = test::blob_dataset(30, 23);
  Rng rng(24);
  const data::Split s = data::stratified_split(d, 0.7, rng);
  TrainConfig cfg;
  cfg.max_epochs = 50;
  Trainer t(cfg);
  const TrainReport r =
      t.fit(m, s.train.x, s.train.y, s.test.x, s.test.y,
            [](const EpochRecord& rec) { return rec.epoch < 2; });
  EXPECT_EQ(r.epochs_run, 3);
}

TEST(Trainer, SoftLabelTrainingLearns) {
  // Teacher targets = near-onehot soft labels of the blob classes.
  const data::Dataset d = test::blob_dataset(60, 25);
  Tensor soft({d.size(), 2});
  for (int i = 0; i < d.size(); ++i) {
    const int y = d.y[static_cast<std::size_t>(i)];
    soft.at2(i, y) = 0.9f;
    soft.at2(i, 1 - y) = 0.1f;
  }
  Model m = tiny_mlp(26);
  TrainConfig cfg;
  cfg.max_epochs = 25;
  cfg.learning_rate = 1e-2f;
  Trainer t(cfg);
  const TrainReport r = t.fit_soft(m, d.x, soft, 1.0f, d.x, d.y);
  EXPECT_GT(r.best_val_accuracy, 0.9);
}

TEST(Trainer, EvaluateMatchesManualAccuracy) {
  Model m = tiny_mlp(27);
  const data::Dataset d = test::blob_dataset(20, 28);
  const EvalResult ev = evaluate(m, d.x, d.y);
  const std::vector<int> preds = m.predict(d.x);
  int correct = 0;
  for (int i = 0; i < d.size(); ++i)
    if (preds[static_cast<std::size_t>(i)] == d.y[static_cast<std::size_t>(i)])
      ++correct;
  EXPECT_NEAR(ev.accuracy, static_cast<double>(correct) / d.size(), 1e-9);
}

TEST(Trainer, RejectsEmptyTrainingSet) {
  Model m = tiny_mlp(29);
  Trainer t;
  EXPECT_THROW(t.fit(m, Tensor({0, 2}), {}, Tensor({1, 2}), {0}),
               CheckError);
}

}  // namespace
}  // namespace orev::nn
