// Golden-regression lockdown: a small, fully deterministic Table-1-style
// pipeline (victim accuracy + FGSM / UAP attack rows) rendered to CSV and
// compared byte-for-byte against checked-in golden files. Because every
// parallel hot path is bit-deterministic, the goldens are identical at any
// thread count and under ASan/UBSan builds — any byte of drift is a real
// numerics regression, not noise.
//
// Regenerate after an intentional numerics change with:
//   OREV_UPDATE_GOLDEN=1 ./orev_tests --gtest_filter='Golden.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "attack/metrics.hpp"
#include "attack/pgm.hpp"
#include "attack/runner.hpp"
#include "attack/uap.hpp"
#include "test_helpers.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

#ifndef OREV_GOLDEN_DIR
#error "OREV_GOLDEN_DIR must be defined by the build"
#endif

namespace orev {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(OREV_GOLDEN_DIR) + "/" + name;
}

/// Compare generated CSV text against the golden file, or rewrite the
/// golden when OREV_UPDATE_GOLDEN is set.
void check_against_golden(const CsvWriter& csv, const std::string& name) {
  const std::string path = golden_path(name);
  if (std::getenv("OREV_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(csv.save(path)) << "failed to write " << path;
    SUCCEED() << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with OREV_UPDATE_GOLDEN=1 to create)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), csv.str())
      << "golden mismatch for " << name
      << "; if the numerics change is intentional, regenerate with "
         "OREV_UPDATE_GOLDEN=1";
}

/// Shared fixture: one tiny victim trained once for both golden tables.
/// Thread count is pinned (to a parallel setting, deliberately) so the
/// goldens also certify schedule-independence.
class Golden : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::set_num_threads(2);
    data_ = new Data();
    data_->corpus = test::tiny_spectrogram_dataset(/*per_class=*/14);
    Rng rng(3);
    data_->split = data::stratified_split(data_->corpus, 0.75, rng);
    data_->victim = new nn::Model(
        apps::make_base_cnn(data_->corpus.sample_shape(),
                            data_->corpus.num_classes, 5));
    nn::TrainConfig cfg;
    cfg.max_epochs = 3;
    cfg.learning_rate = 2e-3f;
    nn::Trainer trainer(cfg);
    trainer.fit(*data_->victim, data_->split.train.x, data_->split.train.y,
                data_->split.test.x, data_->split.test.y);
  }

  static void TearDownTestSuite() {
    delete data_->victim;
    delete data_;
    data_ = nullptr;
    util::set_num_threads(1);
  }

  struct Data {
    data::Dataset corpus;
    data::Split split;
    nn::Model* victim = nullptr;
  };
  static Data* data_;
};

Golden::Data* Golden::data_ = nullptr;

TEST_F(Golden, VictimAccuracyTable) {
  CsvWriter csv;
  csv.header({"split", "loss", "accuracy"});
  const nn::EvalResult train_eval = nn::evaluate(
      *data_->victim, data_->split.train.x, data_->split.train.y);
  const nn::EvalResult test_eval = nn::evaluate(
      *data_->victim, data_->split.test.x, data_->split.test.y);
  csv.row("train", train_eval.loss, train_eval.accuracy);
  csv.row("test", test_eval.loss, test_eval.accuracy);
  check_against_golden(csv, "victim_accuracy.csv");
}

TEST_F(Golden, AttackSuccessTable) {
  const nn::Tensor& x = data_->split.test.x;
  const std::vector<int>& y = data_->split.test.y;

  CsvWriter csv;
  csv.header({"attack", "eps", "accuracy", "apd", "ntasr"});
  for (const float eps : {0.1f, 0.3f}) {
    attack::Fgsm fgsm(eps);
    const attack::BatchAttackResult batch =
        attack::attack_batch(fgsm, *data_->victim, x, /*target_class=*/-1);
    const attack::AttackMetrics m =
        attack::evaluate_attack(*data_->victim, x, batch.adversarial, y);
    csv.row("FGSM", eps, m.accuracy, m.apd, m.ntasr);
  }

  {
    attack::Fgsm inner(0.1f);
    attack::UapConfig cfg;
    cfg.eps = 0.3f;
    cfg.max_passes = 2;
    cfg.robust_draws = 2;
    cfg.robust_noise = 0.05f;
    cfg.seed = 123;
    const attack::UapResult uap =
        attack::generate_uap(*data_->victim, x, inner, cfg);
    const nn::Tensor x_uap = attack::apply_uap(x, uap.perturbation);
    const attack::AttackMetrics m =
        attack::evaluate_attack(*data_->victim, x, x_uap, y);
    csv.row("UAP(FGSM)", cfg.eps, m.accuracy, m.apd, m.ntasr);
  }
  check_against_golden(csv, "attack_success.csv");
}

TEST_F(Golden, PgdAttackTable) {
  const nn::Tensor& x = data_->split.test.x;
  const std::vector<int>& y = data_->split.test.y;

  CsvWriter csv;
  csv.header({"attack", "eps", "accuracy", "apd", "ntasr"});
  attack::Pgd pgd(/*eps=*/0.2f, /*steps=*/3, /*alpha=*/0.0f, /*seed=*/77);
  const attack::BatchAttackResult batch =
      attack::attack_batch(pgd, *data_->victim, x, /*target_class=*/-1);
  const attack::AttackMetrics m =
      attack::evaluate_attack(*data_->victim, x, batch.adversarial, y);
  csv.row("PGD", 0.2f, m.accuracy, m.apd, m.ntasr);
  check_against_golden(csv, "pgd_attack.csv");
}

}  // namespace
}  // namespace orev
