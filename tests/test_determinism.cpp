// Determinism lockdown for the parallel hot paths: training, per-sample
// attack fan-out, and UAP fitting must be bit-identical at any thread
// count (the pool's chunk decomposition never depends on scheduling), and
// repeatable run-to-run under the same seed.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "attack/pgm.hpp"
#include "attack/runner.hpp"
#include "attack/uap.hpp"
#include "test_helpers.hpp"
#include "util/csv.hpp"
#include "util/obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace orev {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(util::num_threads()) {}
  ~ThreadGuard() { util::set_num_threads(saved_); }

 private:
  int saved_;
};

/// Bit-exact tensor comparison (memcmp on the float payload, not an
/// epsilon check — the whole point is zero drift).
::testing::AssertionResult bits_equal(const nn::Tensor& a,
                                      const nn::Tensor& b) {
  if (a.shape() != b.shape())
    return ::testing::AssertionFailure() << "shape mismatch";
  if (a.numel() != 0 &&
      std::memcmp(a.raw(), b.raw(), a.numel() * sizeof(float)) != 0) {
    for (std::size_t i = 0; i < a.numel(); ++i)
      if (a[i] != b[i])
        return ::testing::AssertionFailure()
               << "first differing element " << i << ": " << a[i]
               << " vs " << b[i];
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult weights_equal(const std::vector<nn::Tensor>& a,
                                         const std::vector<nn::Tensor>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "weight count mismatch";
  for (std::size_t i = 0; i < a.size(); ++i) {
    const ::testing::AssertionResult r = bits_equal(a[i], b[i]);
    if (!r) return ::testing::AssertionFailure()
                   << "weight tensor " << i << ": " << r.message();
  }
  return ::testing::AssertionSuccess();
}

struct TrainOutcome {
  std::vector<nn::Tensor> weights;
  std::vector<float> train_losses;
  float best_val_loss = 0.0f;
};

/// Train the small IC-xApp CNN end-to-end at the current thread count.
TrainOutcome train_small_cnn() {
  const data::Dataset d = test::tiny_spectrogram_dataset(/*per_class=*/14);
  Rng rng(3);
  const data::Split s = data::stratified_split(d, 0.75, rng);
  nn::Model m = apps::make_base_cnn(d.sample_shape(), d.num_classes, 5);
  nn::TrainConfig cfg;
  cfg.max_epochs = 3;
  cfg.learning_rate = 2e-3f;
  nn::Trainer t(cfg);
  const nn::TrainReport r =
      t.fit(m, s.train.x, s.train.y, s.test.x, s.test.y);
  TrainOutcome out;
  out.weights = m.weights();
  for (const nn::EpochRecord& e : r.history)
    out.train_losses.push_back(e.train_loss);
  out.best_val_loss = r.best_val_loss;
  return out;
}

TEST(Determinism, TrainingIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  util::set_num_threads(1);
  const TrainOutcome serial = train_small_cnn();
  util::set_num_threads(4);
  const TrainOutcome parallel = train_small_cnn();

  ASSERT_EQ(serial.train_losses.size(), parallel.train_losses.size());
  for (std::size_t e = 0; e < serial.train_losses.size(); ++e)
    EXPECT_EQ(serial.train_losses[e], parallel.train_losses[e])
        << "epoch " << e;
  EXPECT_EQ(serial.best_val_loss, parallel.best_val_loss);
  EXPECT_TRUE(weights_equal(serial.weights, parallel.weights));
}

TEST(Determinism, TrainingIsRepeatableSameSeedSingleThread) {
  ThreadGuard guard;
  util::set_num_threads(1);
  const TrainOutcome a = train_small_cnn();
  const TrainOutcome b = train_small_cnn();
  EXPECT_EQ(a.train_losses, b.train_losses);
  EXPECT_TRUE(weights_equal(a.weights, b.weights));
}

/// One PGD batch attack (the stochastic PGM: random start per sample,
/// drawn from counter-split streams) at the current thread count.
nn::Tensor pgd_attack_batch(nn::Model& model, const nn::Tensor& x) {
  attack::Pgd pgd(/*eps=*/0.1f, /*steps=*/4, /*alpha=*/0.0f, /*seed=*/77);
  return attack::attack_batch(pgd, model, x, /*target_class=*/-1)
      .adversarial;
}

TEST(Determinism, PgdBatchAttackIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const data::Dataset d = test::blob_dataset(/*per_class=*/10);
  nn::Model model = test::known_linear_model();

  util::set_num_threads(1);
  const nn::Tensor serial = pgd_attack_batch(model, d.x);
  const nn::Tensor serial_again = pgd_attack_batch(model, d.x);
  util::set_num_threads(4);
  const nn::Tensor parallel = pgd_attack_batch(model, d.x);

  EXPECT_TRUE(bits_equal(serial, serial_again));  // same-seed repeatability
  EXPECT_TRUE(bits_equal(serial, parallel));
}

/// One UAP fit with robustness jitter enabled (exercises the per-sample
/// split() noise streams) at the current thread count.
attack::UapResult fit_small_uap(nn::Model& model, const nn::Tensor& x) {
  attack::Fgsm inner(0.05f);
  attack::UapConfig cfg;
  cfg.eps = 0.1f;
  cfg.max_passes = 2;
  cfg.target_fooling = 2.0;  // never early-stop: exercise both passes
  cfg.robust_draws = 3;
  cfg.robust_noise = 0.05f;
  cfg.seed = 123;
  return attack::generate_uap(model, x, inner, cfg);
}

TEST(Determinism, UapFitIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const data::Dataset d = test::blob_dataset(/*per_class=*/8);
  nn::Model model = test::known_linear_model();

  util::set_num_threads(1);
  const attack::UapResult serial = fit_small_uap(model, d.x);
  const attack::UapResult serial_again = fit_small_uap(model, d.x);
  util::set_num_threads(4);
  const attack::UapResult parallel = fit_small_uap(model, d.x);

  EXPECT_TRUE(bits_equal(serial.perturbation, serial_again.perturbation));
  EXPECT_EQ(serial.achieved_fooling, serial_again.achieved_fooling);
  EXPECT_TRUE(bits_equal(serial.perturbation, parallel.perturbation));
  EXPECT_EQ(serial.achieved_fooling, parallel.achieved_fooling);
  EXPECT_EQ(serial.passes, parallel.passes);
}

TEST(Determinism, EvaluateIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const data::Dataset d = test::tiny_spectrogram_dataset(/*per_class=*/10);
  nn::Model m = apps::make_base_cnn(d.sample_shape(), d.num_classes, 9);

  util::set_num_threads(1);
  const nn::EvalResult serial = nn::evaluate(m, d.x, d.y, /*batch_size=*/8);
  util::set_num_threads(4);
  const nn::EvalResult parallel =
      nn::evaluate(m, d.x, d.y, /*batch_size=*/8);

  EXPECT_EQ(serial.loss, parallel.loss);
  EXPECT_EQ(serial.accuracy, parallel.accuracy);
}

/// Render an adversarial batch to the CSV form the golden suite uses, so
/// byte-identity below is checked on the exported artifact, not just the
/// in-memory tensor.
std::string batch_to_csv(const nn::Tensor& adv) {
  CsvWriter csv;
  csv.header({"sample", "first", "last"});
  for (int i = 0; i < adv.dim(0); ++i) {
    const nn::Tensor row = adv.slice_batch(i);
    csv.row(i, row[0], row[row.numel() - 1]);
  }
  return csv.str();
}

TEST(Determinism, ObservabilityIsPurelyObservational) {
  ThreadGuard guard;
  util::set_num_threads(2);
  const data::Dataset d = test::blob_dataset(/*per_class=*/10);
  nn::Model model = test::known_linear_model();

  // Baseline: tracing off, registry left alone.
  obs::set_trace_enabled(false);
  const nn::Tensor base = pgd_attack_batch(model, d.x);
  const std::string base_csv = batch_to_csv(base);

  // Same pipeline with tracing on and the registry reset + exported
  // mid-stream: metrics and spans must be strictly observational, so the
  // adversarial tensor and its CSV rendering stay byte-identical.
  obs::set_trace_enabled(true);
  obs::trace_clear();
  obs::Registry::instance().reset_values();
  const nn::Tensor traced = pgd_attack_batch(model, d.x);
  const std::string report = obs::Registry::instance().to_json();
  obs::set_trace_enabled(false);

  EXPECT_TRUE(bits_equal(base, traced));
  EXPECT_EQ(base_csv, batch_to_csv(traced));
  // The run really was observed: counters moved and spans were recorded.
  EXPECT_GT(obs::counter("attack.batch.samples").value(), 0u);
  EXPECT_FALSE(obs::trace_snapshot().empty());
  EXPECT_NE(report.find("attack.pgm.grad_queries"), std::string::npos);
}

TEST(Determinism, RngSplitStreamsAreStableAndOrderIndependent) {
  const Rng base(42);
  // Stream derivation depends only on (seed, stream_id) — not on draws.
  Rng drained(42);
  for (int i = 0; i < 100; ++i) drained.uniform(0.0f, 1.0f);
  Rng a = base.split(7);
  Rng b = drained.split(7);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(a.uniform(0.0f, 1.0f), b.uniform(0.0f, 1.0f));

  // Distinct streams decorrelate.
  Rng c = base.split(7);
  Rng d = base.split(8);
  int same = 0;
  for (int i = 0; i < 16; ++i)
    if (c.uniform(0.0f, 1.0f) == d.uniform(0.0f, 1.0f)) ++same;
  EXPECT_LT(same, 16);
}

}  // namespace
}  // namespace orev
