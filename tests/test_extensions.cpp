// Tests for the extension surfaces: A1-EI enrichment ingestion (§3.2's
// compromised-data-provider path), the CSV trace import, and the L2 fast
// gradient method.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "attack/pgm.hpp"
#include "attack/uap.hpp"
#include "data/csv_loader.hpp"
#include "defense/runtime_monitor.hpp"
#include "oran/a1_ei.hpp"
#include "oran/near_rt_ric.hpp"
#include "rictest/dataset.hpp"
#include "test_helpers.hpp"

namespace orev {
namespace {

// ------------------------------------------------------------------ A1-EI

class A1EiTest : public ::testing::Test {
 protected:
  A1EiTest() : op_("op", "sec"), sdl_(&rbac_), ei_(&op_, &sdl_) {
    rbac_.define_role("platform", {oran::Permission{"*", true, true}});
    rbac_.assign_role(oran::kRicPlatformId, "platform");
    rbac_.define_role("rapp-ei-reader",
                      {oran::Permission{"ei", true, false}});
    rbac_.assign_role("consumer-rapp", "rapp-ei-reader");
  }
  oran::Rbac rbac_;
  oran::Operator op_;
  oran::Sdl sdl_;
  oran::A1EiService ei_;
};

TEST_F(A1EiTest, RegisteredProducerDelivers) {
  ASSERT_TRUE(ei_.register_producer(op_.issue_certificate("provider-1"),
                                    "load-forecast"));
  oran::EiDelivery d;
  d.job_id = "load-forecast";
  d.features = nn::Tensor({3}, std::vector<float>{1, 2, 3});
  EXPECT_TRUE(ei_.deliver("provider-1", d));
  nn::Tensor out;
  EXPECT_EQ(ei_.read("consumer-rapp", "load-forecast", out),
            oran::SdlStatus::kOk);
  EXPECT_EQ(out[2], 3.0f);
  EXPECT_EQ(ei_.deliveries_accepted(), 1u);
}

TEST_F(A1EiTest, InvalidCertificateCannotRegister) {
  oran::Operator rogue("rogue", "other");
  EXPECT_FALSE(ei_.register_producer(rogue.issue_certificate("evil"),
                                     "load-forecast"));
}

TEST_F(A1EiTest, UnregisteredProducerRejected) {
  ei_.register_producer(op_.issue_certificate("provider-1"),
                        "load-forecast");
  oran::EiDelivery d;
  d.job_id = "load-forecast";
  d.features = nn::Tensor({1});
  EXPECT_FALSE(ei_.deliver("someone-else", d));
  EXPECT_EQ(ei_.deliveries_rejected(), 1u);
}

TEST_F(A1EiTest, WrongJobRejected) {
  ei_.register_producer(op_.issue_certificate("provider-1"),
                        "load-forecast");
  oran::EiDelivery d;
  d.job_id = "other-job";
  d.features = nn::Tensor({1});
  EXPECT_FALSE(ei_.deliver("provider-1", d));
}

TEST_F(A1EiTest, CompromisedProviderInjectsAdversarialFeatures) {
  // The §3.2 scenario: a *registered, authenticated* provider turns
  // malicious. Its adversarial features land in the SDL under the
  // platform identity — indistinguishable to consumers. Write
  // attestation cannot flag it (platform wrote it); only content-level
  // drift detection can.
  ei_.register_producer(op_.issue_certificate("provider-1"), "forecast");

  defense::TelemetryDriftDetector drift(3.5, 20);
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    oran::EiDelivery d;
    d.job_id = "forecast";
    d.features = nn::Tensor::randn({6}, rng, 0.1f);
    ASSERT_TRUE(ei_.deliver("provider-1", d));
    nn::Tensor seen;
    ei_.read("consumer-rapp", "forecast", seen);
    drift.observe(seen);
  }
  // The provider turns adversarial: a large feature injection.
  oran::EiDelivery evil;
  evil.job_id = "forecast";
  evil.features = nn::Tensor::randn({6}, rng, 0.1f);
  evil.features[0] += 3.0f;
  ASSERT_TRUE(ei_.deliver("provider-1", evil));
  nn::Tensor seen;
  ei_.read("consumer-rapp", "forecast", seen);
  EXPECT_EQ(sdl_.last_writer(oran::kNsEnrichment, "forecast"),
            oran::kRicPlatformId);  // attestation-blind
  EXPECT_TRUE(drift.is_anomalous(seen));  // content-level detection works
}

// ------------------------------------------------------------- CSV loader

TEST(CsvParse, SimpleCells) {
  EXPECT_EQ(data::parse_csv_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParse, QuotedCommaAndEscapedQuote) {
  EXPECT_EQ(data::parse_csv_line("\"x,y\",\"he said \"\"hi\"\"\""),
            (std::vector<std::string>{"x,y", "he said \"hi\""}));
}

TEST(CsvParse, EmptyCells) {
  EXPECT_EQ(data::parse_csv_line("a,,b,"),
            (std::vector<std::string>{"a", "", "b", ""}));
}

class CsvFileTest : public ::testing::Test {
 protected:
  void write_file(const std::string& content) {
    std::ofstream f(path_);
    f << content;
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "/tmp/orev_csv_test.csv";
};

TEST_F(CsvFileTest, LoadsNumericTableWithHeader) {
  write_file("c1,c2,c3\n1,2,3\n4.5,5.5,6.5\n");
  const auto t = data::load_csv(path_, /*has_header=*/true);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->header, (std::vector<std::string>{"c1", "c2", "c3"}));
  ASSERT_EQ(t->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(t->rows[1][0], 4.5);
}

TEST_F(CsvFileTest, MissingFileIsNullopt) {
  EXPECT_FALSE(data::load_csv("/nonexistent/file.csv", false).has_value());
}

TEST_F(CsvFileTest, RaggedRowsThrow) {
  write_file("1,2,3\n4,5\n");
  EXPECT_THROW(data::load_csv(path_, false), CheckError);
}

TEST_F(CsvFileTest, NonNumericCellThrows) {
  write_file("1,2,banana\n");
  EXPECT_THROW(data::load_csv(path_, false), CheckError);
}

TEST_F(CsvFileTest, ImportedTraceDrivesPowerSavingPipeline) {
  // Full adoption path: CSV → trace → window features → oracle label.
  std::string content;
  for (int t = 0; t < 20; ++t) {
    for (int c = 0; c < 9; ++c)
      content += (c ? "," : "") + std::to_string(10 + 5 * c);
    content += "\n";
  }
  write_file(content);
  const auto table = data::load_csv(path_, false);
  ASSERT_TRUE(table.has_value());
  const auto trace = data::table_to_trace<9>(*table);
  ASSERT_EQ(trace.size(), 20u);
  const nn::Tensor w = rictest::window_features(trace, 19, 12, 0);
  EXPECT_EQ(w.shape(), (nn::Shape{1, 12, 9}));
  // Constant values → a deterministic oracle decision.
  EXPECT_NO_THROW(rictest::oracle_action(w, 55.0, 30.0));
}

TEST_F(CsvFileTest, TraceClampsToPrbRange) {
  write_file("-5,200,3,4,5,6,7,8,9\n");
  const auto table = data::load_csv(path_, false);
  const auto trace = data::table_to_trace<9>(*table);
  EXPECT_DOUBLE_EQ(trace[0][0], 0.0);
  EXPECT_DOUBLE_EQ(trace[0][1], 100.0);
}

// -------------------------------------------------------------------- FGM

TEST(Fgm, PerturbationHasL2NormAtMostEps) {
  nn::Model m = test::known_linear_model();
  attack::Fgm fgm(0.25f);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const nn::Tensor x = nn::Tensor::uniform({2}, rng, 0.2f, 0.8f);
    const nn::Tensor adv = fgm.perturb(m, x, m.predict_one(x));
    EXPECT_LE(nn::l2_distance(x, adv), 0.25f + 1e-5f);
  }
}

TEST(Fgm, CrossesNearbyBoundary) {
  nn::Model m = test::known_linear_model();
  attack::Fgm fgm(0.3f);
  const nn::Tensor x = nn::Tensor::from({0.45f, 0.45f});
  ASSERT_EQ(m.predict_one(x), 0);
  EXPECT_EQ(m.predict_one(fgm.perturb(m, x, 0)), 1);
}

TEST(Fgm, TargetedReachesTarget) {
  nn::Model m = test::known_linear_model();
  attack::Fgm fgm(0.4f);
  const nn::Tensor adv =
      fgm.perturb_targeted(m, nn::Tensor::from({0.4f, 0.4f}), 1);
  EXPECT_EQ(m.predict_one(adv), 1);
}

TEST(Fgm, SmallerL2FootprintThanFgsmAtSameEps) {
  // FGSM moves every coordinate by ±ε (L2 = ε√d); FGM moves by exactly ε.
  nn::Model m = test::known_linear_model();
  attack::Fgm fgm(0.3f);
  attack::Fgsm fgsm(0.3f);
  const nn::Tensor x = nn::Tensor::from({0.4f, 0.4f});
  const float d_fgm = nn::l2_distance(x, fgm.perturb(m, x, 0));
  const float d_fgsm = nn::l2_distance(x, fgsm.perturb(m, x, 0));
  EXPECT_LT(d_fgm, d_fgsm);
}

TEST(Fgm, RejectsNonPositiveEps) {
  EXPECT_THROW(attack::Fgm(0.0f), CheckError);
}

// ------------------------------------------------------------ L2-ball UAP

TEST(UapL2, GenerationRespectsL2Radius) {
  nn::Model m = apps::make_kpm_dnn(2, 2, 31);
  test::quick_fit(m, test::blob_dataset(80, 31));
  const data::Dataset d = test::blob_dataset(40, 32);
  attack::UapConfig cfg;
  cfg.eps = 0.3f;
  cfg.norm = attack::NormKind::kL2;
  cfg.max_passes = 4;
  attack::Fgm inner(0.15f);
  const attack::UapResult r = attack::generate_uap(m, d.x, inner, cfg);
  EXPECT_LE(r.perturbation.norm2(), 0.3f + 1e-5f);
}

TEST(UapL2, L2BallStillFoolsSurrogate) {
  nn::Model m = apps::make_kpm_dnn(2, 2, 33);
  test::quick_fit(m, test::blob_dataset(80, 33));
  const data::Dataset d = test::blob_dataset(40, 34);
  attack::UapConfig cfg;
  cfg.eps = 0.6f;
  cfg.norm = attack::NormKind::kL2;
  cfg.target_fooling = 0.4;
  cfg.max_passes = 6;
  attack::Fgm inner(0.3f);
  const attack::UapResult r = attack::generate_uap(m, d.x, inner, cfg);
  EXPECT_GE(attack::fooling_rate(m, d.x, r.perturbation), 0.35);
}

TEST(UapConfig, RejectsInvalidRobustness) {
  nn::Model m = test::known_linear_model();
  const data::Dataset d = test::blob_dataset(10, 35);
  attack::UapConfig cfg;
  cfg.robust_draws = 0;
  attack::Fgsm inner(0.1f);
  EXPECT_THROW(attack::generate_uap(m, d.x, inner, cfg), CheckError);
}

}  // namespace
}  // namespace orev
