// Attack-library tests: PGM conformance (parameterized across all four
// methods), norm-bound guarantees, UAP projection/generation properties,
// targeted variants, the Model Cloning Algorithm, and metric accounting.
#include <gtest/gtest.h>

#include <set>

#include "attack/clone.hpp"
#include "attack/metrics.hpp"
#include "attack/pgm.hpp"
#include "attack/runner.hpp"
#include "attack/uap.hpp"
#include "test_helpers.hpp"

namespace orev::attack {
namespace {

using test::blob_dataset;
using test::known_linear_model;

// ------------------------------------------------- PGM conformance (all 4)

enum class PgmKind { kFgsm, kFgm, kPgd, kCw, kDeepFool };

PgmPtr make_pgm(PgmKind kind, float eps) {
  switch (kind) {
    case PgmKind::kFgsm: return std::make_unique<Fgsm>(eps);
    case PgmKind::kFgm: return std::make_unique<Fgm>(eps);
    case PgmKind::kPgd: return std::make_unique<Pgd>(eps, 10);
    case PgmKind::kCw: return std::make_unique<CarliniWagner>(2.0f, 0.05f, 60);
    case PgmKind::kDeepFool: return std::make_unique<DeepFool>(40, 0.05f);
  }
  return nullptr;
}

std::string pgm_kind_name(const ::testing::TestParamInfo<PgmKind>& info) {
  switch (info.param) {
    case PgmKind::kFgsm: return "FGSM";
    case PgmKind::kFgm: return "FGM";
    case PgmKind::kPgd: return "PGD";
    case PgmKind::kCw: return "CW";
    case PgmKind::kDeepFool: return "DeepFool";
  }
  return "?";
}

class PgmConformance : public ::testing::TestWithParam<PgmKind> {};

TEST_P(PgmConformance, OutputStaysInValidRangeAndShape) {
  nn::Model m = known_linear_model();
  PgmPtr pgm = make_pgm(GetParam(), 0.3f);
  const nn::Tensor x = nn::Tensor::from({0.2f, 0.2f});
  const nn::Tensor adv = pgm->perturb(m, x, m.predict_one(x));
  EXPECT_EQ(adv.shape(), x.shape());
  EXPECT_GE(adv.min(), 0.0f);
  EXPECT_LE(adv.max(), 1.0f);
}

TEST_P(PgmConformance, DoesNotMutateInput) {
  nn::Model m = known_linear_model();
  PgmPtr pgm = make_pgm(GetParam(), 0.3f);
  const nn::Tensor x = nn::Tensor::from({0.3f, 0.3f});
  const nn::Tensor copy = x;
  pgm->perturb(m, x, m.predict_one(x));
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(x[i], copy[i]);
}

TEST_P(PgmConformance, FlipsDecisionNearBoundary) {
  // Point (0.45, 0.45): class 0 with margin 0.1·scale — every method must
  // push it across x0 + x1 = 1 within its budget.
  nn::Model m = known_linear_model();
  PgmPtr pgm = make_pgm(GetParam(), 0.3f);
  const nn::Tensor x = nn::Tensor::from({0.45f, 0.45f});
  ASSERT_EQ(m.predict_one(x), 0);
  const nn::Tensor adv = pgm->perturb(m, x, 0);
  EXPECT_EQ(m.predict_one(adv), 1) << "method failed to cross the boundary";
}

TEST_P(PgmConformance, TargetedVariantReachesTarget) {
  nn::Model m = known_linear_model();
  PgmPtr pgm = make_pgm(GetParam(), 0.4f);
  const nn::Tensor x = nn::Tensor::from({0.4f, 0.4f});
  const nn::Tensor adv = pgm->perturb_targeted(m, x, 1);
  EXPECT_EQ(m.predict_one(adv), 1);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, PgmConformance,
                         ::testing::Values(PgmKind::kFgsm, PgmKind::kFgm,
                                           PgmKind::kPgd, PgmKind::kCw,
                                           PgmKind::kDeepFool),
                         pgm_kind_name);

// ------------------------------------------------------- norm-bound sweeps

class FgsmEps : public ::testing::TestWithParam<float> {};

TEST_P(FgsmEps, PerturbationBoundedByEps) {
  const float eps = GetParam();
  nn::Model m = known_linear_model();
  Fgsm fgsm(eps);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const nn::Tensor x = nn::Tensor::uniform({2}, rng, 0.2f, 0.8f);
    const nn::Tensor adv = fgsm.perturb(m, x, m.predict_one(x));
    for (std::size_t j = 0; j < x.numel(); ++j)
      EXPECT_LE(std::abs(adv[j] - x[j]), eps + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, FgsmEps,
                         ::testing::Values(0.05f, 0.1f, 0.2f, 0.3f, 0.5f));

class PgdEps : public ::testing::TestWithParam<float> {};

TEST_P(PgdEps, StaysInsideLInfBall) {
  const float eps = GetParam();
  nn::Model m = known_linear_model();
  Pgd pgd(eps, 10);
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const nn::Tensor x = nn::Tensor::uniform({2}, rng, 0.2f, 0.8f);
    const nn::Tensor adv = pgd.perturb(m, x, m.predict_one(x));
    for (std::size_t j = 0; j < x.numel(); ++j)
      EXPECT_LE(std::abs(adv[j] - x[j]), eps + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, PgdEps,
                         ::testing::Values(0.05f, 0.1f, 0.2f, 0.3f, 0.5f));

TEST(Fgsm, LargerEpsNeverWeakensAttackOnLinearModel) {
  // On a linear model the signed-gradient direction is constant, so the
  // logit margin moved is monotone in ε.
  nn::Model m = known_linear_model();
  const nn::Tensor x = nn::Tensor::from({0.3f, 0.3f});
  float prev_margin = 1e9f;
  for (const float eps : {0.05f, 0.1f, 0.2f, 0.3f}) {
    Fgsm fgsm(eps);
    const nn::Tensor adv = fgsm.perturb(m, x, 0);
    const nn::Tensor logits = m.logits_one(adv);
    const float margin = logits[0] - logits[1];  // class-0 confidence
    EXPECT_LT(margin, prev_margin);
    prev_margin = margin;
  }
}

TEST(Fgsm, RejectsNonPositiveEps) {
  EXPECT_THROW(Fgsm(0.0f), CheckError);
}

// --------------------------------------------------- norm-unbounded extras

TEST(CarliniWagner, FindsSmallerPerturbationThanFgsmNeeds) {
  // C&W minimises ||r||₂; near the boundary its perturbation should be far
  // smaller than a fixed ε = 0.3 FGSM step.
  nn::Model m = known_linear_model();
  const nn::Tensor x = nn::Tensor::from({0.48f, 0.48f});
  CarliniWagner cw(2.0f, 0.02f, 100);
  const nn::Tensor adv_cw = cw.perturb(m, x, 0);
  ASSERT_EQ(m.predict_one(adv_cw), 1);
  Fgsm fgsm(0.3f);
  const nn::Tensor adv_fgsm = fgsm.perturb(m, x, 0);
  EXPECT_LT(nn::l2_distance(x, adv_cw), nn::l2_distance(x, adv_fgsm));
}

TEST(DeepFool, MinimalPerturbationScalesWithMargin) {
  nn::Model m = known_linear_model();
  DeepFool df(50, 0.02f);
  const nn::Tensor near = df.perturb(m, nn::Tensor::from({0.48f, 0.48f}), 0);
  const nn::Tensor far = df.perturb(m, nn::Tensor::from({0.30f, 0.30f}), 0);
  const float d_near =
      nn::l2_distance(nn::Tensor::from({0.48f, 0.48f}), near);
  const float d_far = nn::l2_distance(nn::Tensor::from({0.30f, 0.30f}), far);
  EXPECT_LT(d_near, d_far);
}

TEST(DeepFool, AlreadyMisclassifiedInputReturnsUnchanged) {
  nn::Model m = known_linear_model();
  DeepFool df;
  const nn::Tensor x = nn::Tensor::from({0.9f, 0.9f});  // class 1
  const nn::Tensor adv = df.perturb(m, x, /*label=*/0);  // claims label 0
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(adv[i], x[i]);
}

// ------------------------------------------------------------- projection

TEST(Projection, LInfClampsCoordinates) {
  nn::Tensor u = nn::Tensor::from({0.5f, -0.7f, 0.1f});
  project_ball(u, 0.2f, NormKind::kLInf);
  EXPECT_FLOAT_EQ(u[0], 0.2f);
  EXPECT_FLOAT_EQ(u[1], -0.2f);
  EXPECT_FLOAT_EQ(u[2], 0.1f);
}

TEST(Projection, L2RescalesOnlyWhenOutside) {
  nn::Tensor u = nn::Tensor::from({3.0f, 4.0f});  // norm 5
  project_ball(u, 1.0f, NormKind::kL2);
  EXPECT_NEAR(u.norm2(), 1.0f, 1e-5f);
  nn::Tensor v = nn::Tensor::from({0.1f, 0.1f});
  project_ball(v, 1.0f, NormKind::kL2);
  EXPECT_FLOAT_EQ(v[0], 0.1f);
}

// -------------------------------------------------------------------- UAP

/// A quickly-trained model on the blob data (non-trivial boundary).
nn::Model trained_blob_model(std::uint64_t seed = 31) {
  nn::Model m = apps::make_one_layer({2}, 2, seed);
  test::quick_fit(m, blob_dataset(80, seed));
  return m;
}

TEST(Uap, GeneratedPerturbationRespectsNorm) {
  nn::Model m = trained_blob_model();
  const data::Dataset d = blob_dataset(40, 32);
  UapConfig cfg;
  cfg.eps = 0.25f;
  Fgsm inner(0.1f);
  const UapResult r = generate_uap(m, d.x, inner, cfg);
  EXPECT_LE(r.perturbation.norm_inf(), 0.25f + 1e-6f);
  EXPECT_EQ(r.perturbation.shape(), (nn::Shape{2}));
}

TEST(Uap, AchievesHighFoolingOnSurrogate) {
  nn::Model m = trained_blob_model();
  const data::Dataset d = blob_dataset(40, 33);
  UapConfig cfg;
  cfg.eps = 0.5f;
  cfg.target_fooling = 0.6;
  Fgsm inner(0.2f);
  const UapResult r = generate_uap(m, d.x, inner, cfg);
  EXPECT_GE(r.achieved_fooling, 0.5);
}

TEST(Uap, FoolingRateMatchesManualCount) {
  nn::Model m = trained_blob_model();
  const data::Dataset d = blob_dataset(20, 34);
  const nn::Tensor u = nn::Tensor::from({0.3f, 0.3f});
  const double rate = fooling_rate(m, d.x, u);
  int fooled = 0;
  for (int i = 0; i < d.size(); ++i) {
    nn::Tensor p = d.sample(i);
    p += u;
    p.clamp(0.0f, 1.0f);
    if (m.predict_one(p) != m.predict_one(d.sample(i))) ++fooled;
  }
  EXPECT_DOUBLE_EQ(rate, static_cast<double>(fooled) / d.size());
}

TEST(Uap, StopsEarlyWhenTargetReached) {
  nn::Model m = trained_blob_model();
  const data::Dataset d = blob_dataset(30, 35);
  UapConfig cfg;
  cfg.eps = 0.5f;
  cfg.target_fooling = 0.01;  // trivially reachable
  cfg.max_passes = 10;
  Fgsm inner(0.25f);
  const UapResult r = generate_uap(m, d.x, inner, cfg);
  EXPECT_LE(r.passes, 2);
}

TEST(TargetedUap, PushesTowardsTarget) {
  nn::Model m = trained_blob_model();
  const data::Dataset d = blob_dataset(40, 36);
  UapConfig cfg;
  cfg.eps = 0.5f;
  cfg.target_fooling = 0.9;
  Fgsm inner(0.2f);
  const UapResult r = generate_targeted_uap(m, d.x, inner, /*target=*/1, cfg);
  const double hit = targeted_rate(m, d.x, r.perturbation, 1);
  EXPECT_GE(hit, 0.8);
}

TEST(TargetedUap, RejectsInvalidTarget) {
  nn::Model m = trained_blob_model();
  const data::Dataset d = blob_dataset(10, 37);
  UapConfig cfg;
  Fgsm inner(0.1f);
  EXPECT_THROW(generate_targeted_uap(m, d.x, inner, 5, cfg), CheckError);
}

TEST(Uap, TransfersBetweenIndependentlyTrainedModels) {
  // Black-box core property: a UAP computed on one model degrades another
  // model trained on the same task (Papernot transferability).
  nn::Model surrogate = trained_blob_model(41);
  nn::Model victim = trained_blob_model(42);
  const data::Dataset d = blob_dataset(60, 43);
  UapConfig cfg;
  cfg.eps = 0.5f;
  cfg.target_fooling = 0.6;
  Fgsm inner(0.25f);
  const UapResult r = generate_uap(surrogate, d.x, inner, cfg);
  const nn::Tensor x_adv = apply_uap(d.x, r.perturbation);
  const AttackMetrics m = evaluate_attack(victim, d.x, x_adv, d.y);
  const double clean_acc = nn::accuracy(victim.forward(d.x), d.y);
  EXPECT_LT(m.accuracy, clean_acc - 0.2);
}

// -------------------------------------------------------------------- MCA

TEST(CloneDataset, LabelsAreVictimPredictionsNotGroundTruth) {
  nn::Model victim = known_linear_model();
  const data::Dataset d = blob_dataset(20, 51);
  const data::Dataset d_clone = collect_clone_dataset(victim, d.x);
  const std::vector<int> preds = victim.predict(d.x);
  EXPECT_EQ(d_clone.y, preds);
}

TEST(CloneDataset, FromObservationLogs) {
  std::vector<nn::Tensor> inputs = {nn::Tensor::from({0.1f, 0.2f}),
                                    nn::Tensor::from({0.8f, 0.9f})};
  const data::Dataset d = clone_dataset_from_observations(inputs, {0, 1}, 2);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.x.at2(1, 1), 0.9f);
  EXPECT_THROW(clone_dataset_from_observations({}, {}, 2), CheckError);
}

TEST(Mca, SelectsBestOfCandidates) {
  nn::Model victim = known_linear_model();
  const data::Dataset d = blob_dataset(100, 52);
  const data::Dataset d_clone = collect_clone_dataset(victim, d.x);

  CloneConfig cfg;
  cfg.train.max_epochs = 40;
  cfg.train.learning_rate = 2e-2f;
  const std::vector<Candidate> candidates = {
      {"capable", [](std::uint64_t s) {
         return apps::make_one_layer({2}, 2, s);
       }},
      {"kpm-dnn", [](std::uint64_t s) { return apps::make_kpm_dnn(2, 2, s); }},
  };
  const CloneReport r = clone_model(d_clone, candidates, cfg);
  EXPECT_GE(r.cloning_accuracy, 0.9);
  EXPECT_EQ(r.scores.size(), 2u);
  // The reported best must actually be the max of the scores.
  double max_score = 0.0;
  for (const ArchScore& s : r.scores)
    max_score = std::max(max_score, s.cloning_accuracy);
  EXPECT_DOUBLE_EQ(r.cloning_accuracy, max_score);
}

TEST(Mca, SurrogateAgreesWithVictim) {
  nn::Model victim = known_linear_model();
  const data::Dataset d = blob_dataset(100, 53);
  const data::Dataset d_clone = collect_clone_dataset(victim, d.x);
  CloneConfig cfg;
  cfg.train.max_epochs = 40;
  cfg.train.learning_rate = 2e-2f;
  CloneReport r = clone_model(
      d_clone,
      {{"1L",
        [](std::uint64_t s) { return apps::make_one_layer({2}, 2, s); }}},
      cfg);
  // Agreement rate between surrogate and victim on fresh samples.
  const data::Dataset fresh = blob_dataset(50, 54);
  const std::vector<int> pv = victim.predict(fresh.x);
  const std::vector<int> ps = r.model.predict(fresh.x);
  int agree = 0;
  for (std::size_t i = 0; i < pv.size(); ++i)
    if (pv[i] == ps[i]) ++agree;
  EXPECT_GE(static_cast<double>(agree) / pv.size(), 0.9);
}

TEST(Mca, RequiresCandidates) {
  const data::Dataset d = blob_dataset(20, 55);
  EXPECT_THROW(clone_model(d, {}, CloneConfig{}), CheckError);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, ApdZeroForIdenticalSets) {
  const data::Dataset d = blob_dataset(10, 61);
  EXPECT_DOUBLE_EQ(average_perturbation_distance(d.x, d.x), 0.0);
}

TEST(Metrics, ApdMatchesHandComputation) {
  nn::Tensor a({2, 2}, std::vector<float>{0, 0, 0, 0});
  nn::Tensor b({2, 2}, std::vector<float>{3, 4, 0, 0});
  // Row distances: 5 and 0 → APD 2.5.
  EXPECT_NEAR(average_perturbation_distance(a, b), 2.5, 1e-6);
}

TEST(Metrics, TasrAndNtasrAccounting) {
  nn::Model victim = known_linear_model();
  // Three samples with known predictions: (0.2,0.2)→0, (0.9,0.9)→1,
  // (0.1,0.1)→0. Ground truth all class 0. Target class 1.
  nn::Tensor x_clean({3, 2},
                     std::vector<float>{0.2f, 0.2f, 0.2f, 0.2f, 0.1f, 0.1f});
  nn::Tensor x_adv({3, 2},
                   std::vector<float>{0.2f, 0.2f, 0.9f, 0.9f, 0.1f, 0.1f});
  const AttackMetrics m =
      evaluate_attack(victim, x_clean, x_adv, {0, 0, 0}, /*target=*/1);
  EXPECT_NEAR(m.accuracy, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.ntasr, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.tasr, 1.0 / 3.0, 1e-9);
}

TEST(Metrics, ApplyUapClampsToValidRange) {
  nn::Tensor x({1, 2}, std::vector<float>{0.9f, 0.1f});
  const nn::Tensor u = nn::Tensor::from({0.5f, -0.5f});
  const nn::Tensor out = apply_uap(x, u);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
}

// ------------------------------------------------------------------ runner

TEST(Runner, AttackBatchShapesAndTiming) {
  nn::Model m = known_linear_model();
  const data::Dataset d = blob_dataset(10, 71);
  Fgsm fgsm(0.2f);
  const BatchAttackResult r = attack_batch(fgsm, m, d.x);
  EXPECT_EQ(r.adversarial.shape(), d.x.shape());
  EXPECT_GE(r.mean_ms_per_sample, 0.0);
  EXPECT_GE(r.max_ms_per_sample, r.mean_ms_per_sample);
}

TEST(Runner, EpsilonSweepMonotoneDamageOnLinearVictim) {
  nn::Model victim = known_linear_model();
  nn::Model surrogate = known_linear_model(6.0f);  // imperfect copy
  const data::Dataset d = blob_dataset(60, 72);
  UapConfig base;
  base.target_fooling = 0.9;
  const auto sweep = epsilon_sweep(victim, surrogate, d.x, d.y,
                                   {0.05f, 0.2f, 0.5f}, base);
  ASSERT_EQ(sweep.size(), 3u);
  // Accuracy under input-specific attack must not increase with ε, and APD
  // must grow.
  EXPECT_GE(sweep[0].input_specific.accuracy,
            sweep[2].input_specific.accuracy);
  EXPECT_LT(sweep[0].input_specific.apd, sweep[2].input_specific.apd);
  EXPECT_LT(sweep[0].uap.apd, sweep[2].uap.apd + 1e-9);
}

}  // namespace
}  // namespace orev::attack
