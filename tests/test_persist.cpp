// Persistence-layer tests (DESIGN.md §10): atomic commits, the byte
// codec, fuzz-style corruption of the framed checkpoint container, strict
// model-file validation, byte-exact checkpoint/resume for the trainer /
// MCA / UAP pipelines under seeded kill-points, SDL snapshot+journal
// recovery (torn tails included), and the `after=` kill-point scheduling
// in the fault plan language.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/model_zoo.hpp"
#include "attack/clone.hpp"
#include "attack/uap.hpp"
#include "nn/blocks.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"
#include "oran/sdl.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/fault/fault.hpp"
#include "util/persist/bytes.hpp"
#include "util/persist/frame.hpp"
#include "util/persist/journal.hpp"
#include "util/persist/persist.hpp"
#include "util/thread_pool.hpp"

namespace orev {
namespace {

using persist::ByteReader;
using persist::ByteWriter;
using persist::FrameReader;
using persist::FrameWriter;
using persist::Status;
using persist::StatusCode;

/// Fresh empty scratch directory under the test tmp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "orev_persist/" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir;
}

::testing::AssertionResult bits_equal(const nn::Tensor& a,
                                      const nn::Tensor& b) {
  if (a.shape() != b.shape())
    return ::testing::AssertionFailure() << "shape mismatch";
  if (a.numel() != 0 &&
      std::memcmp(a.raw(), b.raw(), a.numel() * sizeof(float)) != 0)
    return ::testing::AssertionFailure() << "payload bits differ";
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult weights_equal(const std::vector<nn::Tensor>& a,
                                         const std::vector<nn::Tensor>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "weight count mismatch";
  for (std::size_t i = 0; i < a.size(); ++i) {
    const ::testing::AssertionResult r = bits_equal(a[i], b[i]);
    if (!r)
      return ::testing::AssertionFailure()
             << "weight tensor " << i << ": " << r.message();
  }
  return ::testing::AssertionSuccess();
}

class ThreadGuard {
 public:
  ThreadGuard() : saved_(util::num_threads()) {}
  ~ThreadGuard() { util::set_num_threads(saved_); }

 private:
  int saved_;
};

/// Installs a single-kill-point global injector for the scope.
class KillPointGuard {
 public:
  KillPointGuard(const std::string& site, std::uint64_t after) {
    fault::FaultPlan plan;
    plan.seed = 1;
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kCrash;
    spec.probability = 1.0;
    spec.max_injections = 1;
    spec.after = after;
    plan.sites[site].push_back(spec);
    injector_ = std::make_unique<fault::FaultInjector>(std::move(plan));
    fault::set_global_injector(injector_.get());
  }
  ~KillPointGuard() { fault::set_global_injector(nullptr); }

 private:
  std::unique_ptr<fault::FaultInjector> injector_;
};

// ----------------------------------------------------- atomic file commits

TEST(Persist, AtomicWriteCreatesAndReplaces) {
  const std::string dir = scratch_dir("atomic");
  const std::string path = dir + "/f.bin";
  ASSERT_TRUE(persist::atomic_write_file(path, "first", /*sync=*/false).ok());
  std::string got;
  ASSERT_TRUE(persist::read_file(path, got).ok());
  EXPECT_EQ(got, "first");
  ASSERT_TRUE(persist::atomic_write_file(path, "second", /*sync=*/true).ok());
  ASSERT_TRUE(persist::read_file(path, got).ok());
  EXPECT_EQ(got, "second");
  // The staging file never survives a successful commit.
  EXPECT_FALSE(persist::file_exists(path + ".tmp"));
}

TEST(Persist, ReadMissingFileIsNotFound) {
  std::string got;
  const Status st = persist::read_file(scratch_dir("miss") + "/nope", got);
  EXPECT_EQ(st.code, StatusCode::kNotFound);
}

TEST(Persist, RemoveIsIdempotentAndTruncateShrinks) {
  const std::string dir = scratch_dir("rm");
  const std::string path = dir + "/f.bin";
  EXPECT_TRUE(persist::remove_file(path).ok());  // already absent: fine
  ASSERT_TRUE(persist::atomic_write_file(path, "0123456789", false).ok());
  ASSERT_TRUE(persist::truncate_file(path, 4).ok());
  std::string got;
  ASSERT_TRUE(persist::read_file(path, got).ok());
  EXPECT_EQ(got, "0123");
  EXPECT_TRUE(persist::remove_file(path).ok());
  EXPECT_FALSE(persist::file_exists(path));
}

TEST(Persist, Crc32MatchesReferenceAndChains) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(persist::crc32("123456789"), 0xCBF43926u);
  const std::string a = "hello ", b = "world";
  EXPECT_EQ(persist::crc32(b, persist::crc32(a)), persist::crc32(a + b));
}

// --------------------------------------------------------------- byte codec

TEST(Persist, ByteCodecRoundTripsAllPrimitives) {
  ByteWriter w;
  w.u8(7);
  w.u32(0xdeadbeefu);
  w.u64(1ull << 60);
  w.i32(-42);
  w.i64(-(1ll << 50));
  w.f32(1.5f);
  w.f64(-2.25);
  w.str(std::string_view("payload\0with nul", 16));
  ByteReader r(w.buffer());
  std::uint8_t u8v = 0;
  std::uint32_t u32v = 0;
  std::uint64_t u64v = 0;
  std::int32_t i32v = 0;
  std::int64_t i64v = 0;
  float f32v = 0;
  double f64v = 0;
  std::string s;
  ASSERT_TRUE(r.u8(u8v) && r.u32(u32v) && r.u64(u64v) && r.i32(i32v) &&
              r.i64(i64v) && r.f32(f32v) && r.f64(f64v) && r.str(s));
  EXPECT_EQ(u8v, 7);
  EXPECT_EQ(u32v, 0xdeadbeefu);
  EXPECT_EQ(u64v, 1ull << 60);
  EXPECT_EQ(i32v, -42);
  EXPECT_EQ(i64v, -(1ll << 50));
  EXPECT_EQ(f32v, 1.5f);
  EXPECT_EQ(f64v, -2.25);
  EXPECT_EQ(s, std::string("payload\0with nul", 16));
  EXPECT_TRUE(r.finish("blob").ok());
}

TEST(Persist, ByteReaderFlagsTruncationAndTrailingBytes) {
  ByteWriter w;
  w.u32(5);
  {
    ByteReader r(w.buffer());
    std::uint64_t v = 0;
    EXPECT_FALSE(r.u64(v));  // 4 bytes can't fill 8
    EXPECT_TRUE(r.failed());
    EXPECT_EQ(r.finish("blob").code, StatusCode::kTruncated);
  }
  {
    ByteReader r(w.buffer());
    std::uint8_t v = 0;
    ASSERT_TRUE(r.u8(v));
    EXPECT_EQ(r.finish("blob").code, StatusCode::kTrailingBytes);
  }
}

TEST(Persist, ByteReaderValidatesStringLengthBeforeAllocating) {
  ByteWriter w;
  w.u64(1ull << 40);  // absurd length, no payload behind it
  ByteReader r(w.buffer());
  std::string s;
  EXPECT_FALSE(r.str(s));
  EXPECT_TRUE(r.failed());
  EXPECT_TRUE(s.empty());
}

// ------------------------------------------------------- framed container

std::string sample_frame() {
  FrameWriter fw("orev.test");
  fw.section("alpha", "first payload");
  fw.section("beta", std::string("\x00\x01\x02", 3));
  return fw.serialize();
}

TEST(Persist, FrameRoundTripsSections) {
  FrameReader fr;
  ASSERT_TRUE(FrameReader::parse(sample_frame(), "orev.test", fr).ok());
  EXPECT_TRUE(fr.has("alpha"));
  EXPECT_TRUE(fr.has("beta"));
  EXPECT_FALSE(fr.has("gamma"));
  std::string_view payload;
  ASSERT_TRUE(fr.section("alpha", payload).ok());
  EXPECT_EQ(payload, "first payload");
  ASSERT_TRUE(fr.section("beta", payload).ok());
  EXPECT_EQ(payload, std::string_view("\x00\x01\x02", 3));
  EXPECT_EQ(fr.section("gamma", payload).code, StatusCode::kBadSection);
}

TEST(Persist, FrameRejectsWrongAppTag) {
  FrameReader fr;
  const Status st = FrameReader::parse(sample_frame(), "orev.other", fr);
  EXPECT_FALSE(st.ok());
}

TEST(Persist, FrameRejectsEverySingleByteFlip) {
  const std::string good = sample_frame();
  FrameReader fr;
  ASSERT_TRUE(FrameReader::parse(good, "orev.test", fr).ok());
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    FrameReader out;
    EXPECT_FALSE(FrameReader::parse(std::move(bad), "orev.test", out).ok())
        << "flip at byte " << i << " was accepted";
  }
}

TEST(Persist, FrameRejectsEveryTruncation) {
  const std::string good = sample_frame();
  for (std::size_t len = 0; len < good.size(); ++len) {
    FrameReader out;
    EXPECT_FALSE(
        FrameReader::parse(good.substr(0, len), "orev.test", out).ok())
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(Persist, FrameRejectsTrailingGarbage) {
  FrameReader out;
  const Status st = FrameReader::parse(sample_frame() + "x", "orev.test", out);
  EXPECT_EQ(st.code, StatusCode::kTrailingBytes);
}

TEST(Persist, FrameLoadMissingFileIsNotFound) {
  FrameReader out;
  const Status st =
      FrameReader::load(scratch_dir("frame") + "/absent.ckpt", "t", out);
  EXPECT_EQ(st.code, StatusCode::kNotFound);
}

// ------------------------------------------------------------ record journal

TEST(Persist, JournalRoundTripsRecords) {
  const std::string path = scratch_dir("journal") + "/j.log";
  {
    persist::JournalWriter jw;
    ASSERT_TRUE(jw.open(path).ok());
    ASSERT_TRUE(jw.append("one").ok());
    ASSERT_TRUE(jw.append(std::string("\x00\xff", 2)).ok());
    ASSERT_TRUE(jw.append("three").ok());
  }
  persist::JournalScan scan;
  ASSERT_TRUE(persist::scan_journal(path, scan).ok());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0], "one");
  EXPECT_EQ(scan.records[1], std::string("\x00\xff", 2));
  EXPECT_EQ(scan.records[2], "three");
  EXPECT_FALSE(scan.torn_tail);
}

TEST(Persist, JournalScanStopsAtTornTail) {
  const std::string path = scratch_dir("journal_torn") + "/j.log";
  {
    persist::JournalWriter jw;
    ASSERT_TRUE(jw.open(path).ok());
    ASSERT_TRUE(jw.append("kept").ok());
    ASSERT_TRUE(jw.append("lost").ok());
  }
  std::string bytes;
  ASSERT_TRUE(persist::read_file(path, bytes).ok());
  // Chop one byte off the final record: a crash mid-append.
  ASSERT_TRUE(persist::truncate_file(path, bytes.size() - 1).ok());
  persist::JournalScan scan;
  ASSERT_TRUE(persist::scan_journal(path, scan).ok());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "kept");
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_LT(scan.valid_bytes, bytes.size());
}

// -------------------------------------------------------- tensor (de)coding

TEST(Persist, TensorCodecRejectsHostileShapes) {
  nn::Tensor out({1}, 0.0f);
  {
    ByteWriter w;  // negative dim
    w.u32(1);
    w.i32(-3);
    ByteReader r(w.buffer());
    EXPECT_EQ(nn::read_tensor(r, out).code, StatusCode::kBadValue);
  }
  {
    ByteWriter w;  // absurd dims: would imply a multi-GB allocation
    w.u32(2);
    w.i32(1 << 20);
    w.i32(1 << 20);
    ByteReader r(w.buffer());
    EXPECT_EQ(nn::read_tensor(r, out).code, StatusCode::kBadValue);
  }
  {
    ByteWriter w;  // plausible shape, payload shorter than numel implies
    w.u32(1);
    w.i32(100);
    w.f32(1.0f);
    ByteReader r(w.buffer());
    EXPECT_EQ(nn::read_tensor(r, out).code, StatusCode::kTruncated);
  }
  // A rejected decode never touches the output tensor.
  ASSERT_EQ(out.numel(), 1u);
  EXPECT_EQ(out[0], 0.0f);
}

// ------------------------------------------------------------- model files

TEST(Persist, ModelFileRoundTripsByteExact) {
  const data::Dataset d = test::tiny_spectrogram_dataset(/*per_class=*/6);
  nn::Model a = apps::make_base_cnn(d.sample_shape(), d.num_classes, 5);
  const std::string path = scratch_dir("model") + "/m.ckpt";
  ASSERT_TRUE(a.save_status(path).ok());
  nn::Model b = apps::make_base_cnn(d.sample_shape(), d.num_classes, 99);
  ASSERT_TRUE(b.load_status(path).ok());
  EXPECT_TRUE(weights_equal(a.weights(), b.weights()));
  // The full serialised state (params + layer state) matches too.
  ByteWriter wa, wb;
  a.write_state(wa);
  b.write_state(wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());
  // Thin bool wrappers still work.
  EXPECT_TRUE(a.save(path));
  EXPECT_TRUE(b.load(path));
}

TEST(Persist, ModelFileRejectsTrailingAndCorruptBytesWithoutMutating) {
  const data::Dataset d = test::tiny_spectrogram_dataset(/*per_class=*/6);
  nn::Model a = apps::make_one_layer(d.sample_shape(), d.num_classes, 5);
  const std::string dir = scratch_dir("model_bad");
  const std::string path = dir + "/m.ckpt";
  ASSERT_TRUE(a.save_status(path).ok());
  std::string bytes;
  ASSERT_TRUE(persist::read_file(path, bytes).ok());

  nn::Model b = apps::make_one_layer(d.sample_shape(), d.num_classes, 99);
  const std::vector<nn::Tensor> before = b.weights();

  const std::string trailing = dir + "/trailing.ckpt";
  ASSERT_TRUE(persist::atomic_write_file(trailing, bytes + "x", false).ok());
  EXPECT_EQ(b.load_status(trailing).code, StatusCode::kTrailingBytes);

  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x10;
  const std::string corrupted = dir + "/corrupt.ckpt";
  ASSERT_TRUE(persist::atomic_write_file(corrupted, corrupt, false).ok());
  EXPECT_FALSE(b.load_status(corrupted).ok());

  // Every rejected load left the target model untouched.
  EXPECT_TRUE(weights_equal(b.weights(), before));
}

TEST(Persist, ModelFileRejectsArchitectureMismatch) {
  const data::Dataset d = test::tiny_spectrogram_dataset(/*per_class=*/6);
  nn::Model a = apps::make_one_layer(d.sample_shape(), d.num_classes, 5);
  const std::string path = scratch_dir("model_arch") + "/m.ckpt";
  ASSERT_TRUE(a.save_status(path).ok());
  nn::Model other =
      apps::make_one_layer(d.sample_shape(), d.num_classes + 1, 5);
  EXPECT_EQ(other.load_status(path).code, StatusCode::kMismatch);
}

// ----------------------------------------------- trainer checkpoint/resume

/// Small model exercising the tricky layer state: BatchNorm running stats
/// and the Dropout RNG, neither of which lives in params().
nn::Model make_stateful_model(std::uint64_t seed) {
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Dense>(2, 16);
  seq->emplace<nn::BatchNorm>(16);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::Dropout>(0.25f, seed ^ 0xd0d0);
  seq->emplace<nn::Dense>(16, 2);
  nn::Model m("StatefulNet", std::move(seq), {2}, 2);
  Rng rng(seed);
  m.init(rng);
  return m;
}

nn::TrainConfig stateful_train_config() {
  nn::TrainConfig cfg;
  cfg.max_epochs = 6;
  cfg.learning_rate = 1e-2f;
  cfg.checkpoint_every = 2;
  return cfg;
}

struct FitOutcome {
  std::string state_bytes;
  nn::TrainReport report;
};

FitOutcome fit_stateful(const data::Dataset& d, const std::string& ckpt) {
  Rng rng(3);
  const data::Split s = data::stratified_split(d, 0.75, rng);
  nn::Model m = make_stateful_model(17);
  nn::TrainConfig cfg = stateful_train_config();
  cfg.checkpoint_path = ckpt;
  nn::Trainer t(cfg);
  FitOutcome out;
  out.report = t.fit(m, s.train.x, s.train.y, s.test.x, s.test.y);
  ByteWriter w;
  m.write_state(w);
  out.state_bytes = w.take();
  return out;
}

/// Deterministic history fields only (timing excluded).
void expect_history_equal(const nn::TrainReport& a, const nn::TrainReport& b) {
  EXPECT_EQ(a.epochs_run, b.epochs_run);
  EXPECT_EQ(a.early_stopped, b.early_stopped);
  EXPECT_EQ(a.best_val_loss, b.best_val_loss);
  EXPECT_EQ(a.best_val_accuracy, b.best_val_accuracy);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].train_loss, b.history[i].train_loss) << i;
    EXPECT_EQ(a.history[i].val_loss, b.history[i].val_loss) << i;
    EXPECT_EQ(a.history[i].val_accuracy, b.history[i].val_accuracy) << i;
    EXPECT_EQ(a.history[i].learning_rate, b.history[i].learning_rate) << i;
  }
}

void run_trainer_kill_resume(int threads) {
  ThreadGuard guard;
  util::set_num_threads(threads);
  const data::Dataset d = test::blob_dataset(/*per_class=*/24);
  const FitOutcome baseline = fit_stateful(d, /*ckpt=*/"");

  const std::string ckpt =
      scratch_dir("trainer_t" + std::to_string(threads)) + "/train.ckpt";
  {
    // Die at the second checkpoint commit (after epoch 4 of 6).
    KillPointGuard kill(fault::sites::kCkptTrainer, /*after=*/1);
    EXPECT_THROW(fit_stateful(d, ckpt), fault::FaultInjectedError);
  }
  ASSERT_TRUE(persist::file_exists(ckpt));
  const FitOutcome resumed = fit_stateful(d, ckpt);

  EXPECT_EQ(resumed.state_bytes, baseline.state_bytes);
  expect_history_equal(resumed.report, baseline.report);
}

TEST(Persist, TrainerKillPointResumeIsByteExactSingleThread) {
  run_trainer_kill_resume(1);
}

TEST(Persist, TrainerKillPointResumeIsByteExactMultiThread) {
  run_trainer_kill_resume(4);
}

TEST(Persist, TrainerFinalCheckpointReplaysFinishedRun) {
  const data::Dataset d = test::blob_dataset(/*per_class=*/24);
  const std::string ckpt = scratch_dir("trainer_fin") + "/train.ckpt";
  const FitOutcome first = fit_stateful(d, ckpt);
  // The run finished; a rerun restores the terminal checkpoint instead of
  // retraining, and reproduces the outcome bit for bit.
  const FitOutcome replay = fit_stateful(d, ckpt);
  EXPECT_EQ(replay.state_bytes, first.state_bytes);
  expect_history_equal(replay.report, first.report);
}

TEST(Persist, TrainerRejectsCheckpointFromDifferentConfig) {
  const data::Dataset d = test::blob_dataset(/*per_class=*/24);
  const std::string ckpt = scratch_dir("trainer_cfg") + "/train.ckpt";
  {
    KillPointGuard kill(fault::sites::kCkptTrainer, /*after=*/0);
    EXPECT_THROW(fit_stateful(d, ckpt), fault::FaultInjectedError);
  }
  Rng rng(3);
  const data::Split s = data::stratified_split(d, 0.75, rng);
  nn::Model m = make_stateful_model(17);
  nn::TrainConfig cfg = stateful_train_config();
  cfg.learning_rate = 5e-3f;  // fingerprint no longer matches
  cfg.checkpoint_path = ckpt;
  nn::Trainer t(cfg);
  EXPECT_THROW(t.fit(m, s.train.x, s.train.y, s.test.x, s.test.y),
               CheckError);
}

// ------------------------------------------------- clone + UAP kill-points

std::vector<attack::Candidate> tiny_candidates(const nn::Shape& shape,
                                               int classes) {
  std::vector<attack::Candidate> out;
  for (const apps::Arch arch : {apps::Arch::kOneLayer, apps::Arch::kBase}) {
    out.push_back(attack::Candidate{
        apps::arch_name(arch), [arch, shape, classes](std::uint64_t seed) {
          return apps::make_arch(arch, shape, classes, seed);
        }});
  }
  return out;
}

attack::CloneConfig tiny_clone_config(const std::string& ckpt_dir) {
  attack::CloneConfig cfg;
  cfg.train.max_epochs = 3;
  cfg.train.learning_rate = 2e-3f;
  cfg.train.early_stop_patience = 3;
  cfg.checkpoint_dir = ckpt_dir;
  return cfg;
}

std::string clone_state_bytes(const data::Dataset& d,
                              const std::string& ckpt_dir) {
  attack::CloneReport rep = attack::clone_model(
      d, tiny_candidates(d.sample_shape(), d.num_classes),
      tiny_clone_config(ckpt_dir));
  ByteWriter w;
  rep.model.write_state(w);
  w.str(rep.best_arch);
  w.f64(rep.cloning_accuracy);
  for (const attack::ArchScore& s : rep.scores) {
    w.str(s.name);
    w.f64(s.cloning_accuracy);
    w.i32(s.epochs_run);
    w.u8(s.early_stopped ? 1 : 0);
  }
  return w.take();
}

TEST(Persist, CloneKillPointResumeIsByteExact) {
  const data::Dataset d = test::tiny_spectrogram_dataset(/*per_class=*/8);
  const std::string baseline = clone_state_bytes(d, /*ckpt_dir=*/"");

  // Kill once mid-candidate (2nd trainer commit lands inside a candidate's
  // training) and once at a candidate boundary.
  for (const auto& [site, after] :
       {std::pair<const char*, std::uint64_t>{fault::sites::kCkptTrainer, 1},
        std::pair<const char*, std::uint64_t>{fault::sites::kCkptClone, 0}}) {
    const std::string dir =
        scratch_dir(std::string("clone_") + (after == 0 ? "bound" : "mid"));
    {
      KillPointGuard kill(site, after);
      EXPECT_THROW(clone_state_bytes(d, dir), fault::FaultInjectedError);
    }
    EXPECT_EQ(clone_state_bytes(d, dir), baseline)
        << "resume after kill at " << site << " after=" << after;
  }
}

std::string uap_bytes(nn::Model& surrogate, const nn::Tensor& samples,
                      const std::string& ckpt) {
  attack::UapConfig cfg;
  cfg.eps = 0.1f;
  cfg.max_passes = 3;
  cfg.target_fooling = 2.0;  // unreachable: run all passes
  cfg.checkpoint_path = ckpt;
  attack::Fgsm inner(0.05f);
  const attack::UapResult r =
      attack::generate_uap(surrogate, samples, inner, cfg);
  ByteWriter w;
  nn::write_tensor(w, r.perturbation);
  w.i32(r.passes);
  w.f64(r.achieved_fooling);
  return w.take();
}

TEST(Persist, UapKillPointResumeIsByteExact) {
  const data::Dataset d = test::tiny_spectrogram_dataset(/*per_class=*/8);
  nn::Model surrogate =
      apps::make_one_layer(d.sample_shape(), d.num_classes, 5);
  test::quick_fit(surrogate, d, /*epochs=*/3);

  const std::string baseline = uap_bytes(surrogate, d.x, /*ckpt=*/"");
  const std::string ckpt = scratch_dir("uap") + "/uap.ckpt";
  {
    KillPointGuard kill(fault::sites::kCkptUap, /*after=*/1);
    EXPECT_THROW(uap_bytes(surrogate, d.x, ckpt),
                 fault::FaultInjectedError);
  }
  EXPECT_EQ(uap_bytes(surrogate, d.x, ckpt), baseline);
}

// ------------------------------------------------- SDL snapshot + journal

class SdlPersistTest : public ::testing::Test {
 protected:
  SdlPersistTest() {
    rbac_.define_role("rw", {oran::Permission{"ns/*", true, true}});
    rbac_.assign_role("app", "rw");
  }

  void write_some(oran::Sdl& sdl, int from, int to) {
    for (int i = from; i < to; ++i) {
      std::string key = "k";
      key += std::to_string(i % 3);
      if (i % 2 == 0) {
        ASSERT_EQ(sdl.write_tensor("app", "ns/t", key,
                                   nn::Tensor({2}, {float(i), -float(i)})),
                  oran::SdlStatus::kOk);
      } else {
        std::string value = "v";
        value += std::to_string(i);
        ASSERT_EQ(sdl.write_text("app", "ns/t", key, std::move(value)),
                  oran::SdlStatus::kOk);
      }
    }
  }

  std::string fingerprint(oran::Sdl& sdl) {
    ByteWriter w;
    for (const std::string& key : sdl.keys("ns/t")) {
      w.str(key);
      w.u64(sdl.version("ns/t", key).value_or(0));
      w.str(sdl.last_writer("ns/t", key).value_or(""));
      nn::Tensor t;
      if (sdl.read_tensor("app", "ns/t", key, t) == oran::SdlStatus::kOk) {
        w.u8(1);
        nn::write_tensor(w, t);
      } else {
        std::string text;
        EXPECT_EQ(sdl.read_text("app", "ns/t", key, text),
                  oran::SdlStatus::kOk);
        w.u8(0);
        w.str(text);
      }
    }
    return w.take();
  }

  oran::Rbac rbac_;
};

TEST_F(SdlPersistTest, StateSurvivesReattach) {
  const std::string dir = scratch_dir("sdl_basic");
  std::string want;
  {
    oran::Sdl sdl(&rbac_);
    ASSERT_TRUE(sdl.attach_storage(dir).ok());
    EXPECT_TRUE(sdl.storage_attached());
    write_some(sdl, 0, 7);
    want = fingerprint(sdl);
  }
  oran::Sdl sdl(&rbac_);
  ASSERT_TRUE(sdl.attach_storage(dir).ok());
  EXPECT_EQ(sdl.journal_replayed(), 7u);
  EXPECT_FALSE(sdl.journal_tail_torn());
  EXPECT_EQ(fingerprint(sdl), want);
}

TEST_F(SdlPersistTest, TornJournalTailIsDroppedAndTruncated) {
  const std::string dir = scratch_dir("sdl_torn");
  std::string want_prefix;
  {
    oran::Sdl sdl(&rbac_);
    ASSERT_TRUE(sdl.attach_storage(dir).ok());
    write_some(sdl, 0, 3);
    want_prefix = fingerprint(sdl);
    write_some(sdl, 3, 4);  // this record will be torn away
  }
  const std::string jpath = dir + "/sdl_journal.log";
  std::string bytes;
  ASSERT_TRUE(persist::read_file(jpath, bytes).ok());
  ASSERT_TRUE(persist::truncate_file(jpath, bytes.size() - 2).ok());
  {
    oran::Sdl sdl(&rbac_);
    ASSERT_TRUE(sdl.attach_storage(dir).ok());
    EXPECT_TRUE(sdl.journal_tail_torn());
    EXPECT_EQ(sdl.journal_replayed(), 3u);
    EXPECT_EQ(fingerprint(sdl), want_prefix);
  }
  // The torn bytes were physically truncated: a further attach is clean.
  oran::Sdl sdl(&rbac_);
  ASSERT_TRUE(sdl.attach_storage(dir).ok());
  EXPECT_FALSE(sdl.journal_tail_torn());
  EXPECT_EQ(fingerprint(sdl), want_prefix);
}

TEST_F(SdlPersistTest, SnapshotCompactsJournalAndPreservesState) {
  const std::string dir = scratch_dir("sdl_snap");
  std::string want;
  {
    oran::Sdl sdl(&rbac_);
    ASSERT_TRUE(sdl.attach_storage(dir).ok());
    write_some(sdl, 0, 6);
    ASSERT_TRUE(sdl.snapshot().ok());
    write_some(sdl, 6, 8);  // journaled on top of the snapshot
    want = fingerprint(sdl);
  }
  oran::Sdl sdl(&rbac_);
  ASSERT_TRUE(sdl.attach_storage(dir).ok());
  EXPECT_EQ(sdl.journal_replayed(), 2u);  // only the post-snapshot writes
  EXPECT_EQ(fingerprint(sdl), want);
}

TEST_F(SdlPersistTest, DetachedSdlWritesNothing) {
  oran::Sdl sdl(&rbac_);
  EXPECT_FALSE(sdl.storage_attached());
  write_some(sdl, 0, 4);  // in-memory only; must not touch the filesystem
  EXPECT_THROW((void)sdl.snapshot(), CheckError);
}

// ------------------------------------------------ kill-point plan language

TEST(Persist, FaultPlanAfterFieldRoundTrips) {
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed 7\nsite ckpt.trainer crash p=1 max=1 after=3\n");
  const fault::FaultSpec& spec = plan.sites.at("ckpt.trainer")[0];
  EXPECT_EQ(spec.after, 3u);
  EXPECT_EQ(fault::FaultPlan::parse(plan.to_string()).to_string(),
            plan.to_string());
  // The committed recovery plan is expressible in its own language too.
  const fault::FaultPlan recovery = fault::default_recovery_plan();
  EXPECT_EQ(fault::FaultPlan::parse(recovery.to_string()).to_string(),
            recovery.to_string());
}

TEST(Persist, MaybeCrashHonoursAfterAndBudget) {
  fault::FaultPlan plan;
  plan.seed = 1;
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kCrash;
  spec.probability = 1.0;
  spec.max_injections = 1;
  spec.after = 2;
  plan.sites["ckpt.trainer"].push_back(spec);
  fault::FaultInjector injector(plan);
  // Ops 0 and 1 pass, op 2 crashes, the budget is then exhausted.
  EXPECT_NO_THROW(fault::maybe_crash("ckpt.trainer", &injector));
  EXPECT_NO_THROW(fault::maybe_crash("ckpt.trainer", &injector));
  EXPECT_THROW(fault::maybe_crash("ckpt.trainer", &injector),
               fault::FaultInjectedError);
  EXPECT_NO_THROW(fault::maybe_crash("ckpt.trainer", &injector));
  EXPECT_NO_THROW(fault::maybe_crash("other.site", &injector));
}

}  // namespace
}  // namespace orev
