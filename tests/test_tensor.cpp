#include <gtest/gtest.h>

#include "nn/tensor.hpp"

namespace orev::nn {
namespace {

TEST(Shape, NumelProducts) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({5}), 5u);
  EXPECT_EQ(shape_numel({}), 0u);
  EXPECT_EQ(shape_numel({3, 0, 2}), 0u);
}

TEST(Shape, NegativeExtentThrows) {
  EXPECT_THROW(shape_numel({2, -1}), CheckError);
}

TEST(Shape, Render) { EXPECT_EQ(shape_str({1, 2, 3}), "[1, 2, 3]"); }

TEST(Tensor, ZeroInitialised) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({2, 2}, 3.5f);
  EXPECT_EQ(t.sum(), 14.0f);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f}), CheckError);
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>(4, 1.0f)));
}

TEST(Tensor, FromInitializerList) {
  const Tensor t = Tensor::from({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.shape(), (Shape{3}));
  EXPECT_EQ(t[1], 2.0f);
}

TEST(Tensor, At2Access) {
  Tensor t({2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_THROW(t.at2(2, 0), CheckError);
  EXPECT_THROW(t.at2(0, 3), CheckError);
}

TEST(Tensor, At4Access) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
  EXPECT_THROW(t.at4(2, 0, 0, 0), CheckError);
}

TEST(Tensor, At4OnWrongRankThrows) {
  Tensor t({4});
  EXPECT_THROW(t.at4(0, 0, 0, 0), CheckError);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_EQ(r.at2(2, 1), 6.0f);
}

TEST(Tensor, ReshapeNumelMismatchThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshape({4, 2}), CheckError);
}

TEST(Tensor, SliceAndSetBatch) {
  Tensor t({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor row = t.slice_batch(1);
  EXPECT_EQ(row.shape(), (Shape{2}));
  EXPECT_EQ(row[0], 3.0f);
  t.set_batch(0, Tensor::from({9.0f, 8.0f}));
  EXPECT_EQ(t.at2(0, 0), 9.0f);
  EXPECT_THROW(t.slice_batch(3), CheckError);
  EXPECT_THROW(t.set_batch(0, Tensor::from({1.0f})), CheckError);
}

TEST(Tensor, ElementwiseAddSub) {
  const Tensor a = Tensor::from({1, 2, 3});
  const Tensor b = Tensor::from({4, 5, 6});
  const Tensor sum = a + b;
  const Tensor diff = b - a;
  EXPECT_EQ(sum[2], 9.0f);
  EXPECT_EQ(diff[0], 3.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a += b, CheckError);
}

TEST(Tensor, ScalarMultiply) {
  Tensor a = Tensor::from({1, -2});
  a *= -2.0f;
  EXPECT_EQ(a[0], -2.0f);
  EXPECT_EQ(a[1], 4.0f);
}

TEST(Tensor, AddScaled) {
  Tensor a = Tensor::from({1, 1});
  a.add_scaled(Tensor::from({2, 4}), 0.5f);
  EXPECT_EQ(a[0], 2.0f);
  EXPECT_EQ(a[1], 3.0f);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from({-3, 1, 2});
  EXPECT_EQ(t.sum(), 0.0f);
  EXPECT_EQ(t.max(), 2.0f);
  EXPECT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.norm2(), std::sqrt(14.0f));
  EXPECT_EQ(t.norm_inf(), 3.0f);
}

TEST(Tensor, ArgmaxFirstOfTies) {
  EXPECT_EQ(Tensor::from({1, 3, 3, 2}).argmax(), 1u);
}

TEST(Tensor, Clamp) {
  Tensor t = Tensor::from({-1, 0.5f, 2});
  t.clamp(0.0f, 1.0f);
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_EQ(t[1], 0.5f);
  EXPECT_EQ(t[2], 1.0f);
  EXPECT_THROW(t.clamp(1.0f, 0.0f), CheckError);
}

TEST(Tensor, RandnStats) {
  Rng rng(11);
  const Tensor t = Tensor::randn({10000}, rng, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sq += double(t[i]) * t[i];
  }
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.1);
  EXPECT_NEAR(sq / 10000.0, 4.0, 0.3);
}

// ----------------------------------------------------------------- matmul

TEST(Matmul, KnownProduct) {
  const Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Matmul, DimensionMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({2, 3})), CheckError);
}

TEST(Matmul, TransposedVariantsAgree) {
  Rng rng(13);
  const Tensor a = Tensor::randn({4, 5}, rng);
  const Tensor b = Tensor::randn({5, 6}, rng);
  const Tensor ref = matmul(a, b);

  // matmul_bt(a, b^T) == a b.
  Tensor bt({6, 5});
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 6; ++j) bt.at2(j, i) = b.at2(i, j);
  const Tensor viabt = matmul_bt(a, bt);

  // matmul_at(a^T, b) == a b.
  Tensor at({5, 4});
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 5; ++j) at.at2(j, i) = a.at2(i, j);
  const Tensor viaat = matmul_at(at, b);

  for (std::size_t i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(viabt[i], ref[i], 1e-4f);
    EXPECT_NEAR(viaat[i], ref[i], 1e-4f);
  }
}

TEST(Matmul, IdentityIsNoop) {
  Rng rng(14);
  const Tensor a = Tensor::randn({3, 3}, rng);
  Tensor eye({3, 3});
  for (int i = 0; i < 3; ++i) eye.at2(i, i) = 1.0f;
  const Tensor c = matmul(a, eye);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(c[i], a[i], 1e-6f);
}

TEST(Distance, L2Distance) {
  const Tensor a = Tensor::from({0, 0});
  const Tensor b = Tensor::from({3, 4});
  EXPECT_FLOAT_EQ(l2_distance(a, b), 5.0f);
  EXPECT_THROW(l2_distance(a, Tensor({3})), CheckError);
}

}  // namespace
}  // namespace orev::nn
