// Observability-layer lockdown: metric correctness (counters, gauges,
// histogram statistics and percentile estimation), registry get-or-create
// stability, exactness of lock-striped counters under the thread pool,
// well-formedness of both JSON exports (metrics report and Chrome trace),
// and the disabled-mode no-op contract for tracing.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace orev {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(util::num_threads()) {}
  ~ThreadGuard() { util::set_num_threads(saved_); }

 private:
  int saved_;
};

/// Restore the tracing switch (tests flip it on and off).
class TraceGuard {
 public:
  TraceGuard() : saved_(obs::trace_enabled()) {}
  ~TraceGuard() { obs::set_trace_enabled(saved_); }

 private:
  bool saved_;
};

// ------------------------------------------------- mini JSON validator
//
// Strict-enough recursive-descent JSON checker: objects, arrays, strings
// with escapes, numbers, true/false/null. Returns true iff the whole
// input is exactly one valid JSON value. No external dependency needed.

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!peek(':')) return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(',')) { ++pos_; continue; }
      if (peek('}')) { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(',')) { ++pos_; continue; }
      if (peek(']')) { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (!peek('"')) return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0)
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek('-')) ++pos_;
    if (!digits()) return false;
    if (peek('.')) {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek('e') || peek('E')) {
      ++pos_;
      if (peek('+') || peek('-')) ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }

  bool peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonValidatorSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonValidator(R"({"a": [1, -2.5e3, "x\n"], "b": null})").valid());
  EXPECT_FALSE(JsonValidator(R"({"a": })").valid());
  EXPECT_FALSE(JsonValidator(R"({"a": 1,})").valid());
  EXPECT_FALSE(JsonValidator(R"([1, 2)").valid());
  EXPECT_FALSE(JsonValidator("{} extra").valid());
  EXPECT_FALSE(JsonValidator(R"("unterminated)").valid());
}

// ------------------------------------------------------------- counters

TEST(ObsCounter, IncrementAndReset) {
  obs::Counter& c = obs::counter("test.counter.basic");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, ExactUnderConcurrentIncrements) {
  ThreadGuard guard;
  util::set_num_threads(4);
  obs::Counter& c = obs::counter("test.counter.concurrent");
  c.reset();
  constexpr std::int64_t kN = 20000;
  util::parallel_for(0, kN, 64, [&](std::int64_t) { c.inc(); });
  // Lock striping must lose nothing: the sum over stripes is exact at
  // quiescence regardless of which worker incremented which stripe.
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kN));
}

TEST(ObsGauge, SetAddValue) {
  obs::Gauge& g = obs::gauge("test.gauge.basic");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(2.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
  g.add(-3.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ----------------------------------------------------------- histograms

TEST(ObsHistogram, SnapshotStatisticsExact) {
  obs::Histogram& h = obs::histogram("test.hist.stats");
  h.reset();
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // Percentiles are bucket estimates, not exact order statistics: require
  // ordering and range, not equality.
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
  EXPECT_NEAR(s.p50, 50.0, 25.0);
}

TEST(ObsHistogram, CustomBoundsBucketing) {
  obs::Histogram& h =
      obs::histogram("test.hist.custom", {1.0, 10.0, 100.0});
  h.reset();
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(5.0);    // bucket 1 (<= 10)
  h.observe(50.0);   // bucket 2 (<= 100)
  h.observe(500.0);  // overflow bucket
  const obs::Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
}

TEST(ObsHistogram, PercentileClampedToObservedRange) {
  obs::Histogram& h = obs::histogram("test.hist.clamp");
  h.reset();
  // All mass in one default bucket: interpolation inside the bucket must
  // still never escape [min, max].
  for (int i = 0; i < 50; ++i) h.observe(3.3);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 3.3);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 3.3);
}

TEST(ObsHistogram, CountExactUnderConcurrentObserves) {
  ThreadGuard guard;
  util::set_num_threads(4);
  obs::Histogram& h = obs::histogram("test.hist.concurrent");
  h.reset();
  constexpr std::int64_t kN = 10000;
  util::parallel_for(0, kN, 64, [&](std::int64_t i) {
    h.observe(static_cast<double>(i % 7));
  });
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kN));
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
}

// ------------------------------------------------------------- registry

TEST(ObsRegistry, GetOrCreateReturnsStableAddresses) {
  obs::Counter& a = obs::counter("test.registry.stable");
  obs::Counter& b = obs::counter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  a.inc(7);
  obs::Registry::instance().reset_values();
  // reset_values zeroes in place: cached references stay valid and read 0.
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(&obs::counter("test.registry.stable"), &a);
}

TEST(ObsRegistry, JsonExportIsWellFormed) {
  obs::counter("test.export.counter").inc(3);
  obs::gauge("test.export.gauge").set(-1.25);
  obs::histogram("test.export.hist").observe(2.0);
  const std::string json = obs::Registry::instance().to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("orev-metrics-v1"), std::string::npos);
  EXPECT_NE(json.find("test.export.counter"), std::string::npos);
  EXPECT_NE(json.find("test.export.hist"), std::string::npos);
}

TEST(ObsRegistry, PrometheusExportSanitizesNames) {
  obs::counter("test.export.counter").inc();
  const std::string text = obs::Registry::instance().to_prometheus();
  // Dots become underscores, the orev_ prefix is applied, and each metric
  // carries a TYPE line.
  EXPECT_NE(text.find("orev_test_export_counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_EQ(text.find("test.export.counter"), std::string::npos);
}

// -------------------------------------------------------------- tracing

TEST(ObsTrace, DisabledModeRecordsNothing) {
  TraceGuard guard;
  obs::set_trace_enabled(false);
  obs::trace_clear();
  {
    OREV_TRACE_SPAN("should.not.record");
    OREV_TRACE_SPAN_CAT("nor.this", "test");
  }
  EXPECT_TRUE(obs::trace_snapshot().empty());
  EXPECT_EQ(obs::trace_dropped(), 0u);
}

TEST(ObsTrace, RecordsNestedSpansWithNames) {
  TraceGuard guard;
  obs::set_trace_enabled(true);
  obs::trace_clear();
  {
    OREV_TRACE_SPAN_CAT("outer", "test");
    { OREV_TRACE_SPAN_CAT("inner", "test"); }
  }
  const std::vector<obs::TraceEvent> events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at destruction: inner completes first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  // The inner interval nests within the outer one.
  EXPECT_GE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[0].ts_ns + events[0].dur_ns,
            events[1].ts_ns + events[1].dur_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(ObsTrace, SpanToggleIsCapturedAtConstruction) {
  TraceGuard guard;
  obs::set_trace_enabled(false);
  obs::trace_clear();
  obs::set_trace_enabled(true);
  {
    OREV_TRACE_SPAN("flipped");
    // Disabling mid-span must not lose the already-active span...
    obs::set_trace_enabled(false);
  }
  // ...and spans constructed while disabled stay silent.
  { OREV_TRACE_SPAN("silent"); }
  const std::vector<obs::TraceEvent> events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "flipped");
}

TEST(ObsTrace, ChromeJsonIsWellFormed) {
  TraceGuard guard;
  obs::set_trace_enabled(true);
  obs::trace_clear();
  {
    OREV_TRACE_SPAN_CAT("alpha", "test");
    { OREV_TRACE_SPAN_CAT("beta \"quoted\"\\slash", "test"); }
  }
  const std::string json = obs::trace_to_chrome_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("alpha"), std::string::npos);
}

TEST(ObsTrace, ConcurrentSpansAllRecorded) {
  ThreadGuard tguard;
  TraceGuard guard;
  util::set_num_threads(4);
  obs::set_trace_enabled(true);
  obs::trace_clear();
  constexpr std::int64_t kN = 500;
  util::parallel_for(0, kN, 8,
                     [&](std::int64_t) { OREV_TRACE_SPAN("worker.span"); });
  const std::vector<obs::TraceEvent> events = obs::trace_snapshot();
  // The pool's own instrumentation may add pool.* spans on top of ours.
  std::int64_t ours = 0;
  std::set<std::uint32_t> tids;
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "worker.span") ++ours;
    tids.insert(e.tid);
  }
  EXPECT_EQ(ours, kN);
  EXPECT_GE(tids.size(), 1u);
}

// --------------------------------------------------------------- timers

TEST(ObsTimer, MonotoneAndLaps) {
  obs::WallTimer t;
  const std::uint64_t a = t.elapsed_ns();
  const std::uint64_t lap1 = t.lap_ns();
  const std::uint64_t b = t.elapsed_ns();
  EXPECT_GE(b, a);
  EXPECT_GE(lap1, a);
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LE(t.elapsed_ns(), b + 1000000000ull);  // sanity: reset re-anchors
}

TEST(ObsTimer, ScopedTimerObservesIntoHistogram) {
  obs::Histogram& h = obs::histogram("test.scoped.timer");
  h.reset();
  { const obs::ScopedTimerMs t(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.snapshot().min, 0.0);
}

}  // namespace
}  // namespace orev
