// Serving-engine tests (DESIGN.md §11): bounded-queue backpressure with
// exact seeded reject counts, micro-batcher flush triggers, byte-identical
// predictions across thread counts and against the unbatched path, the
// fault-plan integration (injected deadline-miss → synchronous fallback,
// injected admission shed), checkpoint/restore of the SLO counters, and
// the nn::Model inference-only guard that makes batched == per-sample
// bit-exact even for BatchNorm/Dropout networks.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <system_error>
#include <string>
#include <utility>
#include <vector>

#include "apps/ic_xapp.hpp"
#include "apps/model_zoo.hpp"
#include "attack/clone.hpp"
#include "nn/blocks.hpp"
#include "nn/layers.hpp"
#include "oran/near_rt_ric.hpp"
#include "serve/serve.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/fault/circuit_breaker.hpp"
#include "util/fault/fault.hpp"
#include "util/obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace orev {
namespace {

using serve::ServeConfig;
using serve::ServeEngine;
using serve::ServeResult;
using serve::ServeStatus;

class ThreadGuard {
 public:
  ThreadGuard() : saved_(util::num_threads()) {}
  ~ThreadGuard() { util::set_num_threads(saved_); }

 private:
  int saved_;
};

/// KPM-style victim: dense [64, 32, 16] DNN over 4 features.
nn::Model kpm_model(std::uint64_t seed = 17) {
  return apps::make_kpm_dnn(/*num_features=*/4, /*num_classes=*/4, seed);
}

/// Deterministic stream of single-sample [4] feature vectors.
std::vector<nn::Tensor> kpm_inputs(int n, std::uint64_t seed = 0xfeed) {
  Rng rng(seed);
  std::vector<nn::Tensor> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    nn::Tensor t({4});
    for (std::size_t j = 0; j < 4; ++j) t[j] = rng.uniform(-1.0f, 1.0f);
    out.push_back(std::move(t));
  }
  return out;
}

nn::Tensor single_request(float v = 0.25f) {
  return nn::Tensor({4}, {v, -v, v * 2.0f, 0.5f});
}

/// Submit every input, drain, and return the results in submit order.
std::vector<ServeResult> run_workload(ServeEngine& eng,
                                      const std::vector<nn::Tensor>& inputs) {
  std::vector<ServeResult> results(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    eng.submit(nn::Tensor(inputs[i]),
               [&results, i](const ServeResult& r) { results[i] = r; });
  }
  eng.drain();
  return results;
}

// ---------------------------------------------------------------- queue --

TEST(ServeQueue, RejectsBeyondCapacityWithoutConsumingTheRequest) {
  serve::BoundedQueue q(2);
  serve::ServeRequest a;
  a.id = 1;
  a.input = single_request();
  EXPECT_TRUE(q.push(std::move(a)));
  serve::ServeRequest b;
  b.id = 2;
  EXPECT_TRUE(q.push(std::move(b)));

  serve::ServeRequest c;
  c.id = 3;
  c.input = single_request(0.5f);
  EXPECT_FALSE(q.push(std::move(c)));
  // The rejected request must still be usable by the degraded path.
  EXPECT_EQ(c.id, 3u);
  EXPECT_EQ(c.input.numel(), 4u);

  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_EQ(q.pop().id, 2u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.max_depth(), 2u);
}

// -------------------------------------------------------------- batcher --

TEST(ServeBatcher, FlushesOnSizeOrDeadlineOnlyWhileIdle) {
  serve::MicroBatcher b(serve::BatcherConfig{/*batch_max=*/2,
                                             /*flush_wait_us=*/100});
  serve::BoundedQueue q(8);
  EXPECT_FALSE(b.should_flush(q, 0, true));  // empty

  serve::ServeRequest r;
  r.arrival_us = 10;
  q.push(std::move(r));
  EXPECT_FALSE(b.should_flush(q, 50, true));    // 1 < batch_max, window open
  EXPECT_TRUE(b.should_flush(q, 110, true));    // window expired
  EXPECT_FALSE(b.should_flush(q, 110, false));  // busy engine never flushes

  serve::ServeRequest r2;
  r2.arrival_us = 20;
  q.push(std::move(r2));
  EXPECT_TRUE(b.should_flush(q, 21, true));  // size trigger

  const std::vector<serve::ServeRequest> batch = b.take_batch(q);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].arrival_us, 10u);  // arrival order preserved
  EXPECT_EQ(batch[1].arrival_us, 20u);
}

// --------------------------------------------------------- determinism --

TEST(ServeEngineDeterminism, ByteIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::vector<nn::Tensor> inputs = kpm_inputs(96);
  ServeConfig cfg;
  cfg.batch_max = 16;
  cfg.replicas = 4;

  util::set_num_threads(1);
  ServeEngine e1(kpm_model(), cfg);
  const std::vector<ServeResult> r1 = run_workload(e1, inputs);

  util::set_num_threads(4);
  ServeEngine e4(kpm_model(), cfg);
  const std::vector<ServeResult> r4 = run_workload(e4, inputs);

  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].prediction, r4[i].prediction) << "request " << i;
    EXPECT_EQ(r1[i].latency_us, r4[i].latency_us) << "request " << i;
    EXPECT_EQ(r1[i].batch_id, r4[i].batch_id) << "request " << i;
    EXPECT_EQ(r1[i].batch_size, r4[i].batch_size) << "request " << i;
  }
  const serve::SloSnapshot s1 = e1.slo(), s4 = e4.slo();
  EXPECT_EQ(s1.completed, s4.completed);
  EXPECT_EQ(s1.batches, s4.batches);
  EXPECT_EQ(s1.rejected, s4.rejected);
  EXPECT_EQ(s1.deadline_misses, s4.deadline_misses);
  EXPECT_EQ(s1.p99_latency_us, s4.p99_latency_us);
  EXPECT_DOUBLE_EQ(s1.mean_occupancy, s4.mean_occupancy);
}

TEST(ServeEngineDeterminism, BatchedMatchesUnbatchedReferencePath) {
  ThreadGuard guard;
  util::set_num_threads(2);
  const std::vector<nn::Tensor> inputs = kpm_inputs(64, 0xabc);
  ServeConfig cfg;
  cfg.batch_max = 32;
  cfg.replicas = 2;
  ServeEngine eng(kpm_model(), cfg);

  std::vector<int> reference;
  reference.reserve(inputs.size());
  for (const nn::Tensor& in : inputs) reference.push_back(eng.predict_sync(in));

  const std::vector<ServeResult> served = run_workload(eng, inputs);
  ASSERT_EQ(served.size(), reference.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].status, ServeStatus::kOk) << "request " << i;
    EXPECT_EQ(served[i].prediction, reference[i]) << "request " << i;
  }
}

TEST(ServeEngineDeterminism, ReplicaRngStreamsAreScheduleIndependent) {
  ServeConfig cfg;
  cfg.replicas = 3;
  cfg.seed = 0xbeef;
  ServeEngine eng(kpm_model(), cfg);
  const Rng base(0xbeef);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(eng.replica_rng(i).seed(), base.split(i).seed());
}

// -------------------------------------------------------- backpressure --

TEST(ServeEngineBackpressure, ExactRejectCountUnderSeededOverload) {
  // Virtual-time arithmetic (tick=1 µs per submit, queue=4, batch_max=4,
  // flush_wait=10, overhead=100 + 10/sample, 1 replica):
  //   * requests 1-4 arrive at t=1..4; the 4th fills the batch and the
  //     engine flushes at t=4, busy until 4 + 100 + 4*10 = 144;
  //   * requests 5-8 queue up (engine busy, queue capacity 4);
  //   * requests 9-60 (t=9..60 < 144) all find the queue full → 52 sheds;
  //   * drain() then serves the 4 queued requests in one final batch.
  ServeConfig cfg;
  cfg.queue_capacity = 4;
  cfg.batch_max = 4;
  cfg.tick_us = 1;
  cfg.flush_wait_us = 10;
  cfg.deadline_us = 1000000;
  cfg.batch_overhead_us = 100;
  cfg.us_per_sample = 10;
  cfg.sync_fallback = false;
  ServeEngine eng(kpm_model(), cfg);

  int rejected = 0, ok = 0;
  const std::vector<nn::Tensor> inputs = kpm_inputs(60);
  for (const nn::Tensor& in : inputs) {
    eng.submit(nn::Tensor(in), [&](const ServeResult& r) {
      if (r.status == ServeStatus::kRejected) {
        ++rejected;
        EXPECT_EQ(r.prediction, -1);
      } else {
        EXPECT_EQ(r.status, ServeStatus::kOk);
        ++ok;
      }
    });
  }
  eng.drain();

  EXPECT_EQ(rejected, 52);
  EXPECT_EQ(ok, 8);
  const serve::SloSnapshot s = eng.slo();
  EXPECT_EQ(s.rejected, 52u);
  EXPECT_EQ(s.completed, 8u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.max_queue_depth, 4u);
}

TEST(ServeEngineBackpressure, QueueFullDegradesToSyncWhenFallbackEnabled) {
  ServeConfig cfg;
  cfg.queue_capacity = 4;
  cfg.batch_max = 4;
  cfg.tick_us = 1;
  cfg.flush_wait_us = 10;
  cfg.deadline_us = 1000000;
  cfg.batch_overhead_us = 100;
  cfg.us_per_sample = 10;
  cfg.sync_fallback = true;  // sheds become synchronous single-sample serves
  ServeEngine eng(kpm_model(), cfg);

  int degraded = 0;
  const std::vector<nn::Tensor> inputs = kpm_inputs(20);
  std::vector<int> reference;
  for (const nn::Tensor& in : inputs) reference.push_back(eng.predict_sync(in));
  std::vector<int> got(inputs.size(), -2);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    eng.submit(nn::Tensor(inputs[i]), [&, i](const ServeResult& r) {
      if (r.status == ServeStatus::kDegradedSync) ++degraded;
      got[i] = r.prediction;
    });
  }
  eng.drain();
  EXPECT_GT(degraded, 0);
  EXPECT_EQ(eng.slo().degraded_syncs, static_cast<std::uint64_t>(degraded));
  EXPECT_EQ(eng.slo().rejected + eng.slo().completed, inputs.size());
  // Degraded or batched, every prediction matches the reference path.
  EXPECT_EQ(got, reference);
}

// --------------------------------------------------------------- fault --

TEST(ServeEngineFault, InjectedBatchDelayTriggersSyncFallback) {
  // serve.batch delay of 10 ms dwarfs the 4 ms deadline, so every batch's
  // projected completion misses and the engine serves each request through
  // the degraded synchronous path instead — same predictions, counted.
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::FaultSpec delay;
  delay.kind = fault::FaultKind::kDelay;
  delay.probability = 1.0;
  delay.delay_ms = 10.0;
  plan.sites[fault::sites::kServeBatch] = {delay};
  fault::FaultInjector fi(plan);

  ServeConfig cfg;
  cfg.batch_max = 8;
  ServeEngine eng(kpm_model(), cfg);
  eng.set_fault_injector(&fi);

  const std::vector<nn::Tensor> inputs = kpm_inputs(16);
  std::vector<int> reference;
  for (const nn::Tensor& in : inputs) reference.push_back(eng.predict_sync(in));

  const std::vector<ServeResult> results = run_workload(eng, inputs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status, ServeStatus::kDegradedSync) << i;
    EXPECT_EQ(results[i].prediction, reference[i]) << i;
  }
  EXPECT_EQ(eng.slo().degraded_syncs, inputs.size());
  EXPECT_EQ(eng.slo().batched_samples, 0u);
  EXPECT_GT(fi.site_stats(fault::sites::kServeBatch).injected, 0u);
}

TEST(ServeEngineFault, InjectedAdmissionShedRejectsWithoutPrediction) {
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::FaultSpec drop;
  drop.kind = fault::FaultKind::kDrop;
  drop.probability = 1.0;
  plan.sites[fault::sites::kServeAdmit] = {drop};
  fault::FaultInjector fi(plan);

  ServeConfig cfg;
  cfg.sync_fallback = false;
  ServeEngine eng(kpm_model(), cfg);
  eng.set_fault_injector(&fi);

  int rejected = 0;
  for (int i = 0; i < 5; ++i) {
    const ServeStatus st =
        eng.submit(single_request(), [&](const ServeResult& r) {
          EXPECT_EQ(r.status, ServeStatus::kRejected);
          EXPECT_EQ(r.prediction, -1);
          ++rejected;
        });
    EXPECT_EQ(st, ServeStatus::kRejected);
  }
  EXPECT_EQ(rejected, 5);
  EXPECT_EQ(eng.slo().rejected, 5u);
  EXPECT_EQ(eng.slo().completed, 0u);
}

// ------------------------------------------------------------- persist --

TEST(ServeEnginePersist, CheckpointRoundTripsAndRejectsOtherConfigs) {
  const std::string dir = ::testing::TempDir() + "orev_serve_ckpt";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/engine.ckpt";

  ServeConfig cfg;
  cfg.batch_max = 8;
  ServeEngine eng(kpm_model(), cfg);
  run_workload(eng, kpm_inputs(24));
  const serve::SloSnapshot before = eng.slo();
  ASSERT_TRUE(eng.save_status(path).ok());

  ServeEngine fresh(kpm_model(), cfg);
  ASSERT_TRUE(fresh.load_status(path).ok());
  const serve::SloSnapshot after = fresh.slo();
  EXPECT_EQ(after.submitted, before.submitted);
  EXPECT_EQ(after.completed, before.completed);
  EXPECT_EQ(after.batches, before.batches);
  EXPECT_EQ(after.rejected, before.rejected);
  EXPECT_EQ(after.deadline_misses, before.deadline_misses);
  EXPECT_DOUBLE_EQ(after.mean_occupancy, before.mean_occupancy);
  EXPECT_EQ(fresh.virtual_now_us(), eng.virtual_now_us());

  // A config change (different batch_max) changes the fingerprint; the
  // checkpoint must be rejected, not silently resumed.
  ServeConfig other = cfg;
  other.batch_max = 16;
  ServeEngine incompatible(kpm_model(), other);
  const persist::Status st = incompatible.load_status(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code, persist::StatusCode::kMismatch);
  EXPECT_EQ(incompatible.slo().submitted, 0u);
}

TEST(ServeEnginePersist, FingerprintCoversConfigAndModelIdentity) {
  ServeConfig cfg;
  ServeEngine a(kpm_model(), cfg);
  ServeEngine b(kpm_model(), cfg);
  EXPECT_EQ(a.config_fingerprint(), b.config_fingerprint());

  ServeConfig different = cfg;
  different.deadline_us += 1;
  ServeEngine c(kpm_model(), different);
  EXPECT_NE(a.config_fingerprint(), c.config_fingerprint());
}

// ------------------------------------------------- served attack path --

TEST(ServeClone, ServedDatasetMatchesDirectVictimQueries) {
  nn::Model victim = kpm_model(23);
  Rng rng(0x77);
  nn::Tensor probes({40, 4});
  for (int i = 0; i < 40; ++i)
    for (int j = 0; j < 4; ++j) probes.at2(i, j) = rng.uniform(-1.0f, 1.0f);

  const data::Dataset direct = attack::collect_clone_dataset(victim, probes);

  ServeConfig cfg;
  cfg.batch_max = 16;
  ServeEngine eng(victim.clone(), cfg);
  const data::Dataset served = attack::collect_clone_dataset(eng, probes);

  EXPECT_EQ(served.y, direct.y);
  EXPECT_EQ(served.num_classes, direct.num_classes);
  EXPECT_EQ(std::memcmp(served.x.raw(), direct.x.raw(),
                        served.x.numel() * sizeof(float)),
            0);
}

TEST(ServeClone, ShedProbesAreRetriedSoTheDatasetIsComplete) {
  nn::Model victim = kpm_model(23);
  Rng rng(0x78);
  nn::Tensor probes({30, 4});
  for (int i = 0; i < 30; ++i)
    for (int j = 0; j < 4; ++j) probes.at2(i, j) = rng.uniform(-1.0f, 1.0f);

  // Shed every 2nd admission; the attacker retries outside the queue.
  fault::FaultPlan plan;
  plan.seed = 3;
  fault::FaultSpec drop;
  drop.kind = fault::FaultKind::kDrop;
  drop.probability = 0.5;
  plan.sites[fault::sites::kServeAdmit] = {drop};
  fault::FaultInjector fi(plan);

  ServeConfig cfg;
  cfg.sync_fallback = false;  // sheds carry no prediction → retried
  ServeEngine eng(victim.clone(), cfg);
  eng.set_fault_injector(&fi);

  const data::Dataset served = attack::collect_clone_dataset(eng, probes);
  const data::Dataset direct = attack::collect_clone_dataset(victim, probes);
  EXPECT_EQ(served.y, direct.y);  // every row labelled, labels identical
}

// ------------------------------------------------- inference-only guard --

/// A [4] → 3-class net exercising both batch-dependent layers.
nn::Model bn_dropout_model() {
  auto s = std::make_unique<nn::Sequential>();
  s->emplace<nn::Dense>(4, 8);
  s->emplace<nn::BatchNorm>(8);
  s->emplace<nn::ReLU>();
  s->emplace<nn::Dropout>(0.5f);
  s->emplace<nn::Dense>(8, 3);
  nn::Model m("BnDropoutNet", std::move(s), {4}, 3);
  Rng rng(5);
  m.init(rng);
  return m;
}

TEST(BatchedInference, SingleAndBatchedLogitsAreBitExact) {
  nn::Model m = bn_dropout_model();
  // Move the BatchNorm running stats off their initial values first, the
  // way a trained model would look.
  Rng rng(0x99);
  nn::Tensor warm({16, 4});
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 4; ++j) warm.at2(i, j) = rng.normal();
  for (int e = 0; e < 3; ++e) m.forward(warm, /*training=*/true);

  m.set_inference_only(true);
  nn::Tensor batch({6, 4});
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 4; ++j) batch.at2(i, j) = rng.normal();

  const nn::Tensor batched = m.forward(batch, /*training=*/false);
  for (int i = 0; i < 6; ++i) {
    const nn::Tensor one = m.logits_one(batch.slice_batch(i));
    for (int c = 0; c < 3; ++c) {
      const float a = batched.at2(i, c);
      const float b = one[static_cast<std::size_t>(c)];
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(float)), 0)
          << "row " << i << " class " << c;
    }
  }
}

TEST(BatchedInference, InferenceLockedModelRejectsTrainingForwards) {
  nn::Model m = bn_dropout_model();
  nn::Tensor x({2, 4});
  EXPECT_NO_THROW(m.forward(x, /*training=*/true));
  m.set_inference_only(true);
  EXPECT_THROW(m.forward(x, /*training=*/true), CheckError);
  EXPECT_NO_THROW(m.forward(x, /*training=*/false));
  // clone() carries the lock (the serving engine relies on this).
  nn::Model c = m.clone();
  EXPECT_TRUE(c.inference_only());
  EXPECT_THROW(c.forward(x, /*training=*/true), CheckError);
}

// -------------------------------------------------------- compiled plans --

/// Odd widths on purpose: 7 → 37 → 19 → 5 drives the compiled kernels
/// through their 32-wide, 16-wide and scalar remainder column paths, and
/// includes a bias-free stage and a final stage with no ReLU.
nn::Model odd_mlp() {
  auto s = std::make_unique<nn::Sequential>();
  s->emplace<nn::Dense>(7, 37);
  s->emplace<nn::ReLU>();
  s->emplace<nn::Dense>(37, 19, /*bias=*/false);
  s->emplace<nn::ReLU>();
  s->emplace<nn::Dense>(19, 5);
  nn::Model m("OddMlp", std::move(s), {7}, 5);
  Rng rng(0x0dd);
  m.init(rng);
  return m;
}

TEST(CompiledPlan, PredictionsMatchLayerWalkOnOddWidths) {
  nn::Model m = odd_mlp();
  auto plan = serve::CompiledMlp::compile(m);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->input_features(), 7);
  EXPECT_EQ(plan->num_classes(), 5);
  Rng rng(0x7e57);
  nn::Tensor batch({129, 7});  // odd row count too
  for (std::size_t i = 0; i < batch.numel(); ++i) batch[i] = rng.normal();
  EXPECT_EQ(plan->predict(batch), m.predict(batch));
}

TEST(CompiledPlan, KpmDnnMatchesLayerWalkAtServingBatchSizes) {
  nn::Model m = kpm_model();
  auto plan = serve::CompiledMlp::compile(m);
  ASSERT_TRUE(plan.has_value());
  Rng rng(0x5eed);
  for (const int rows : {1, 3, 32}) {
    nn::Tensor batch({rows, 4});
    for (std::size_t i = 0; i < batch.numel(); ++i)
      batch[i] = rng.uniform(-2.0f, 2.0f);
    EXPECT_EQ(plan->predict(batch), m.predict(batch)) << "rows=" << rows;
  }
}

TEST(CompiledPlan, RefusesNonMlpModelsSoTheEngineFallsBackToTheLayerWalk) {
  nn::Model m = bn_dropout_model();
  EXPECT_FALSE(serve::CompiledMlp::compile(m).has_value());

  // The engine must still serve such a model, byte-identical to its own
  // unbatched reference path, through the generic layer walk.
  ServeConfig cfg;
  cfg.batch_max = 8;
  ServeEngine eng(m.clone(), cfg);
  const std::vector<nn::Tensor> inputs = kpm_inputs(24, 0x5117);
  std::vector<int> reference;
  reference.reserve(inputs.size());
  for (const nn::Tensor& in : inputs) reference.push_back(eng.predict_sync(in));
  const std::vector<ServeResult> served = run_workload(eng, inputs);
  ASSERT_EQ(served.size(), reference.size());
  for (std::size_t i = 0; i < served.size(); ++i)
    EXPECT_EQ(served[i].prediction, reference[i]) << "request " << i;
}

TEST(ServeEngine, CompletionsMustNotReenterTheEngine) {
  ServeConfig cfg;
  cfg.batch_max = 1;  // flush immediately so the completion fires in submit
  ServeEngine eng(kpm_model(), cfg);
  EXPECT_THROW(eng.submit(single_request(),
                          [&](const ServeResult&) {
                            eng.submit(single_request(), nullptr);
                          }),
               CheckError);
}

TEST(ServeEngine, AccessorsGuardAgainstAnEmptyReplicaPool) {
  ServeConfig bad;
  bad.replicas = 0;
  EXPECT_THROW(ServeEngine(kpm_model(), bad), CheckError);

  ServeEngine eng(kpm_model(), ServeConfig{});
  EXPECT_EQ(eng.model_num_classes(), 4);
  EXPECT_EQ(eng.model_input_shape(), (nn::Shape{4}));
  EXPECT_FALSE(eng.model_name().empty());
}

// ------------------------------------------------------- causal tracing --

/// Enables causal tracing for one test and restores the prior state; the
/// ring is cleared on both edges so span ids restart at 1 and no spans
/// leak between tests.
class CausalGuard {
 public:
  CausalGuard() : was_(obs::causal_enabled()) {
    obs::set_causal_enabled(true);
    obs::causal_clear();
  }
  ~CausalGuard() {
    obs::causal_clear();
    obs::set_causal_enabled(was_);
  }

 private:
  bool was_;
};

TEST(ServeTrace, ByteIdenticalCausalExportAcrossThreadCounts) {
  ThreadGuard tg;
  CausalGuard cg;
  const std::vector<nn::Tensor> inputs = kpm_inputs(40);
  std::string exported[2];
  const int thread_counts[2] = {1, 4};
  for (int t = 0; t < 2; ++t) {
    util::set_num_threads(thread_counts[t]);
    obs::causal_clear();  // fresh engine + fresh ring → same ids both runs
    ServeConfig cfg;
    cfg.batch_max = 8;
    cfg.replicas = 2;
    ServeEngine eng(kpm_model(), cfg);
    run_workload(eng, inputs);  // untraced submits mint serve-lane roots
    EXPECT_GT(obs::causal_size(), 0u);
    std::string why;
    EXPECT_TRUE(obs::causal_validate(&why)) << why;
    exported[t] = obs::causal_to_chrome_json();
  }
  EXPECT_EQ(exported[0], exported[1]);
}

class TraceFakeE2Node : public oran::E2Node {
 public:
  void handle_control(const oran::E2Control& c) override {
    controls.push_back(c);
  }
  std::string node_id() const override { return "ran-1"; }
  std::vector<oran::E2Control> controls;
};

/// Minimal RIC with one fully-permissioned xApp role, mirroring the fault
/// tests' fixture.
class ServeTraceTest : public ::testing::Test {
 protected:
  ServeTraceTest()
      : op_("op", "sec"),
        svc_(&op_, &rbac_),
        ric_(&rbac_, &svc_, /*control_window_ms=*/1000.0) {
    rbac_.define_role("xapp-full",
                      {oran::Permission{"telemetry/*", true, false},
                       oran::Permission{"decisions", true, true},
                       oran::Permission{"e2/control", false, true}});
    ric_.connect_e2(&node_);
  }

  std::string onboard(const std::string& name) {
    oran::AppDescriptor d;
    d.name = name;
    d.version = "1";
    d.vendor = "v";
    d.payload = "p";
    d.requested_role = "xapp-full";
    return svc_.onboard(op_.package(d)).app_id;
  }

  /// A 4-feature KPM indication matching kpm_model()'s input shape.
  oran::E2Indication kpm4_indication(float sinr, std::uint64_t tti) {
    oran::E2Indication ind;
    ind.ran_node_id = "ran-1";
    ind.tti = tti;
    ind.kind = oran::IndicationKind::kKpm;
    ind.payload =
        nn::Tensor({4}, std::vector<float>{sinr, 1.0f - sinr, 0.3f, 0.7f});
    return ind;
  }

  oran::Rbac rbac_;
  oran::Operator op_;
  oran::OnboardingService svc_;
  oran::NearRtRic ric_;
  TraceFakeE2Node node_;
};

TEST_F(ServeTraceTest, FullRequestChainFromIndicationToControlResolves) {
  CausalGuard cg;
  auto app = std::make_shared<apps::IcXApp>(
      kpm_model(), oran::IndicationKind::kKpm, /*fixed_mcs_index=*/13);
  ASSERT_TRUE(ric_.register_xapp(app, onboard("ic"), 10));

  ServeConfig cfg;
  cfg.batch_max = 1;  // flush in submit → every chain completes per delivery
  ServeEngine eng(kpm_model(), cfg);
  app->set_serve_engine(&eng);

  for (std::uint64_t tti = 1; tti <= 4; ++tti)
    ric_.deliver_indication(kpm4_indication(0.4f, tti));
  eng.drain();
  ASSERT_EQ(node_.controls.size(), 4u);
  EXPECT_EQ(app->predictions_made(), 4u);

  // Every causal link in the export must resolve (no orphan parents, no
  // cross-trace edges) and every stage of the request chain must appear.
  std::string why;
  EXPECT_TRUE(obs::causal_validate(&why)) << why;
  const std::string json = obs::causal_to_chrome_json();
  for (const char* stage :
       {"\"name\":\"e2.indication\"", "\"name\":\"dispatch.",
        "\"name\":\"ic.classify\"", "\"name\":\"serve.admit\"",
        "\"name\":\"batch.", "\"name\":\"replica.exec\"",
        "\"name\":\"serve.complete\"", "\"name\":\"e2.control\""}) {
    EXPECT_NE(json.find(stage), std::string::npos) << "missing " << stage;
  }
}

TEST_F(ServeTraceTest, FlightRecorderFiresWhenTheBreakerOpens) {
  CausalGuard cg;
  fault::BreakerConfig bcfg;
  bcfg.failure_threshold = 2;
  bcfg.open_cooldown = 2;
  ric_.set_breaker_config(bcfg);

  class BuggyXApp : public oran::XApp {
   public:
    void on_indication(const oran::E2Indication&, oran::NearRtRic&) override {
      throw std::runtime_error("app bug");
    }
  };
  auto bad = std::make_shared<BuggyXApp>();
  const std::string id = onboard("bad");
  ASSERT_TRUE(ric_.register_xapp(bad, id, 1));

  const std::uint64_t before = obs::flight_trigger_count();
  ric_.deliver_indication(kpm4_indication(0.5f, 1));
  EXPECT_EQ(obs::flight_trigger_count(), before);  // one fault: still closed
  ric_.deliver_indication(kpm4_indication(0.5f, 2));
  EXPECT_EQ(obs::flight_trigger_count(), before + 1);
  EXPECT_EQ(ric_.breaker_state(id), fault::CircuitBreaker::State::kOpen);

  const std::string report = obs::flight_last_report();
  EXPECT_NE(report.find("breaker.open"), std::string::npos) << report;
  EXPECT_NE(report.find(id), std::string::npos) << report;
}

TEST(ServeTrace, FlightRecorderFiresWhenTheQuantGateRefuses) {
  CausalGuard cg;
  // Hairline decision margin far below the int8 rounding step: the gate's
  // clean-accuracy check must refuse the tier (see Int8Gate tests).
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Dense>(2, 2, /*bias=*/false);
  nn::Model m("FlightHairline", std::move(seq), {2}, 2);
  std::vector<nn::Tensor> w;
  w.push_back(nn::Tensor({2, 2}, {1.0f, 1.0f, 1.0f, 1.00003f}));
  m.set_weights(w);

  nn::Tensor clean({8, 2});
  for (int i = 0; i < 8; ++i) {
    const float sign = i % 2 == 0 ? 1.0f : -1.0f;
    clean.at2(i, 0) = -0.8f * sign;
    clean.at2(i, 1) = 0.05f * sign;
  }
  nn::Model ref = m.clone();
  ref.set_inference_only(true);
  const std::vector<int> labels = ref.predict(clean);

  ServeConfig cfg;
  cfg.name = "flightgate";
  cfg.quant.enable = true;
  ServeEngine eng(std::move(m), cfg);

  const std::uint64_t before = obs::flight_trigger_count();
  const serve::QuantGateReport rep = eng.activate_int8_tier(clean, labels);
  EXPECT_TRUE(rep.attempted);
  EXPECT_FALSE(rep.activated);
  EXPECT_EQ(obs::flight_trigger_count(), before + 1);
  const std::string report = obs::flight_last_report();
  EXPECT_NE(report.find("quant.refuse"), std::string::npos) << report;
  EXPECT_NE(report.find("flightgate"), std::string::npos) << report;
}

}  // namespace
}  // namespace orev
