// O-RAN substrate tests: RBAC/ABAC decision procedure, SDL mediation and
// audit, the onboarding pipeline (integrity / authenticity / authorization
// failure modes and the signed-but-malicious supply-chain gap), and both
// RIC platforms' dispatch semantics.
#include <gtest/gtest.h>

#include <chrono>

#include "oran/near_rt_ric.hpp"
#include "oran/non_rt_ric.hpp"
#include "oran/onboarding.hpp"
#include "oran/rbac.hpp"
#include "oran/sdl.hpp"

namespace orev::oran {
namespace {

// ------------------------------------------------------------------- RBAC

TEST(Rbac, UnknownAppDeniedByDefault) {
  Rbac r;
  EXPECT_FALSE(r.allowed("ghost", "telemetry/kpm", Op::kRead));
}

TEST(Rbac, RoleGrantsExactNamespace) {
  Rbac r;
  r.define_role("reader", {Permission{"telemetry/kpm", true, false}});
  r.assign_role("app1", "reader");
  EXPECT_TRUE(r.allowed("app1", "telemetry/kpm", Op::kRead));
  EXPECT_FALSE(r.allowed("app1", "telemetry/kpm", Op::kWrite));
  EXPECT_FALSE(r.allowed("app1", "telemetry/spectrogram", Op::kRead));
}

TEST(Rbac, WildcardPrefixPattern) {
  Rbac r;
  r.define_role("tele", {Permission{"telemetry/*", true, true}});
  r.assign_role("app", "tele");
  EXPECT_TRUE(r.allowed("app", "telemetry/kpm", Op::kWrite));
  EXPECT_TRUE(r.allowed("app", "telemetry/spectrogram", Op::kRead));
  EXPECT_FALSE(r.allowed("app", "decisions", Op::kRead));
}

TEST(Rbac, GlobalWildcard) {
  Rbac r;
  r.define_role("admin", {Permission{"*", true, true}});
  r.assign_role("root", "admin");
  EXPECT_TRUE(r.allowed("root", "anything/at/all", Op::kWrite));
}

TEST(Rbac, MultipleRolesUnion) {
  Rbac r;
  r.define_role("a", {Permission{"ns-a", true, false}});
  r.define_role("b", {Permission{"ns-b", false, true}});
  r.assign_role("app", "a");
  r.assign_role("app", "b");
  EXPECT_TRUE(r.allowed("app", "ns-a", Op::kRead));
  EXPECT_TRUE(r.allowed("app", "ns-b", Op::kWrite));
  EXPECT_FALSE(r.allowed("app", "ns-b", Op::kRead));
}

TEST(Rbac, AssigningUndefinedRoleThrows) {
  Rbac r;
  EXPECT_THROW(r.assign_role("app", "nope"), CheckError);
}

TEST(Rbac, AbacAllowGrantsByAttribute) {
  Rbac r;
  r.set_attribute("app", "function", "monitoring");
  r.add_abac_rule(AbacRule{"function", "monitoring", "telemetry/*",
                           Op::kRead, Effect::kAllow});
  EXPECT_TRUE(r.allowed("app", "telemetry/kpm", Op::kRead));
  EXPECT_FALSE(r.allowed("app", "telemetry/kpm", Op::kWrite));
}

TEST(Rbac, AbacDenyOverridesRoleGrant) {
  Rbac r;
  r.define_role("admin", {Permission{"*", true, true}});
  r.assign_role("app", "admin");
  r.set_attribute("app", "vendor", "untrusted");
  r.add_abac_rule(AbacRule{"vendor", "untrusted", "decisions", Op::kWrite,
                           Effect::kDeny});
  EXPECT_FALSE(r.allowed("app", "decisions", Op::kWrite));
  EXPECT_TRUE(r.allowed("app", "decisions", Op::kRead));  // deny is op-scoped
}

TEST(Rbac, AbacRuleRequiresAttributeMatch) {
  Rbac r;
  r.set_attribute("app", "function", "billing");
  r.add_abac_rule(AbacRule{"function", "monitoring", "telemetry/*",
                           Op::kRead, Effect::kAllow});
  EXPECT_FALSE(r.allowed("app", "telemetry/kpm", Op::kRead));
}

TEST(Rbac, RolesOfReportsAssignments) {
  Rbac r;
  r.define_role("x", {});
  r.assign_role("app", "x");
  EXPECT_EQ(r.roles_of("app").count("x"), 1u);
  EXPECT_TRUE(r.roles_of("other").empty());
}

// -------------------------------------------------------------------- SDL

class SdlTest : public ::testing::Test {
 protected:
  SdlTest() : sdl_(&rbac_) {
    rbac_.define_role("rw", {Permission{"ns/*", true, true}});
    rbac_.define_role("ro", {Permission{"ns/*", true, false}});
    rbac_.assign_role("writer", "rw");
    rbac_.assign_role("reader", "ro");
  }
  Rbac rbac_;
  Sdl sdl_;
};

TEST_F(SdlTest, TensorRoundTrip) {
  const nn::Tensor t({2}, std::vector<float>{1.0f, 2.0f});
  EXPECT_EQ(sdl_.write_tensor("writer", "ns/a", "k", t), SdlStatus::kOk);
  nn::Tensor out;
  EXPECT_EQ(sdl_.read_tensor("reader", "ns/a", "k", out), SdlStatus::kOk);
  EXPECT_EQ(out[1], 2.0f);
}

TEST_F(SdlTest, TextRoundTrip) {
  EXPECT_EQ(sdl_.write_text("writer", "ns/a", "k", "hello"), SdlStatus::kOk);
  std::string out;
  EXPECT_EQ(sdl_.read_text("reader", "ns/a", "k", out), SdlStatus::kOk);
  EXPECT_EQ(out, "hello");
}

TEST_F(SdlTest, WriteDeniedWithoutPermission) {
  EXPECT_EQ(sdl_.write_tensor("reader", "ns/a", "k", nn::Tensor({1})),
            SdlStatus::kDenied);
  EXPECT_EQ(sdl_.write_tensor("stranger", "ns/a", "k", nn::Tensor({1})),
            SdlStatus::kDenied);
}

TEST_F(SdlTest, ReadMissingKeyIsNotFound) {
  nn::Tensor out;
  EXPECT_EQ(sdl_.read_tensor("reader", "ns/a", "missing", out),
            SdlStatus::kNotFound);
}

TEST_F(SdlTest, TypeConfusionIsNotFound) {
  sdl_.write_text("writer", "ns/a", "k", "text");
  nn::Tensor out;
  EXPECT_EQ(sdl_.read_tensor("reader", "ns/a", "k", out),
            SdlStatus::kNotFound);
}

TEST_F(SdlTest, VersionBumpsOnEveryWrite) {
  EXPECT_FALSE(sdl_.version("ns/a", "k").has_value());
  sdl_.write_text("writer", "ns/a", "k", "v1");
  EXPECT_EQ(sdl_.version("ns/a", "k"), 1u);
  sdl_.write_text("writer", "ns/a", "k", "v2");
  EXPECT_EQ(sdl_.version("ns/a", "k"), 2u);
}

TEST_F(SdlTest, LastWriterTracked) {
  sdl_.write_text("writer", "ns/a", "k", "x");
  EXPECT_EQ(sdl_.last_writer("ns/a", "k"), "writer");
}

TEST_F(SdlTest, AuditLogRecordsDenials) {
  sdl_.write_tensor("reader", "ns/a", "k", nn::Tensor({1}));
  ASSERT_EQ(sdl_.audit_log().size(), 1u);
  const AuditRecord& rec = sdl_.audit_log().front();
  EXPECT_EQ(rec.app_id, "reader");
  EXPECT_EQ(rec.op, Op::kWrite);
  EXPECT_FALSE(rec.allowed);
}

TEST_F(SdlTest, KeysListsNamespaceContents) {
  sdl_.write_text("writer", "ns/a", "k1", "x");
  sdl_.write_text("writer", "ns/a", "k2", "y");
  sdl_.write_text("writer", "ns/b", "k3", "z");
  const auto keys = sdl_.keys("ns/a");
  EXPECT_EQ(keys.size(), 2u);
}

TEST_F(SdlTest, DeniedReadLeavesOutUntouched) {
  sdl_.write_tensor("writer", "ns/a", "k", nn::Tensor({1}, 5.0f));
  nn::Tensor out({2}, std::vector<float>{7.0f, 8.0f});
  EXPECT_EQ(sdl_.read_tensor("stranger", "ns/a", "k", out),
            SdlStatus::kDenied);
  ASSERT_EQ(out.numel(), 2u);
  EXPECT_FLOAT_EQ(out[0], 7.0f);
  EXPECT_FLOAT_EQ(out[1], 8.0f);

  sdl_.write_text("writer", "ns/a", "t", "secret");
  std::string text = "stale";
  EXPECT_EQ(sdl_.read_text("stranger", "ns/a", "t", text), SdlStatus::kDenied);
  EXPECT_EQ(text, "stale");
}

TEST_F(SdlTest, NotFoundReadLeavesOutUntouched) {
  nn::Tensor out({1}, std::vector<float>{3.0f});
  EXPECT_EQ(sdl_.read_tensor("reader", "ns/a", "missing", out),
            SdlStatus::kNotFound);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
  std::string text = "stale";
  EXPECT_EQ(sdl_.read_text("reader", "ns/a", "missing", text),
            SdlStatus::kNotFound);
  EXPECT_EQ(text, "stale");
}

TEST_F(SdlTest, FailedWriteDoesNotBumpVersionOrWriter) {
  sdl_.write_text("writer", "ns/a", "k", "v1");
  ASSERT_EQ(sdl_.version("ns/a", "k"), 1u);
  // A denied write must not advance version or reassign last_writer.
  EXPECT_EQ(sdl_.write_text("reader", "ns/a", "k", "evil"),
            SdlStatus::kDenied);
  EXPECT_EQ(sdl_.version("ns/a", "k"), 1u);
  EXPECT_EQ(sdl_.last_writer("ns/a", "k"), "writer");
  std::string out;
  sdl_.read_text("reader", "ns/a", "k", out);
  EXPECT_EQ(out, "v1");
  // A key that has only ever seen denied writes has no version at all.
  EXPECT_EQ(sdl_.write_text("reader", "ns/a", "fresh", "x"),
            SdlStatus::kDenied);
  EXPECT_FALSE(sdl_.version("ns/a", "fresh").has_value());
  EXPECT_FALSE(sdl_.last_writer("ns/a", "fresh").has_value());
}

TEST_F(SdlTest, AuditRingIsBoundedAndCountsDrops) {
  sdl_.set_audit_capacity(4);
  for (int i = 0; i < 10; ++i)
    sdl_.write_text("writer", "ns/a", "k" + std::to_string(i), "v");
  EXPECT_EQ(sdl_.audit_log().size(), 4u);
  EXPECT_EQ(sdl_.audit_dropped_records(), 6u);
  // Oldest records were evicted: the ring holds the last four writes.
  EXPECT_EQ(sdl_.audit_log().front().key, "k6");
  EXPECT_EQ(sdl_.audit_log().back().key, "k9");
  // Shrinking the capacity drops the oldest surviving records too.
  sdl_.set_audit_capacity(2);
  EXPECT_EQ(sdl_.audit_log().size(), 2u);
  EXPECT_EQ(sdl_.audit_dropped_records(), 8u);
  EXPECT_EQ(sdl_.audit_log().front().key, "k8");
}

// ------------------------------------------------------------- onboarding

class OnboardingTest : public ::testing::Test {
 protected:
  OnboardingTest() : op_("operator-1", "s3cret"), svc_(&op_, &rbac_) {
    rbac_.define_role("xapp-standard",
                      {Permission{"telemetry/*", true, false}});
  }
  AppDescriptor descriptor() {
    AppDescriptor d;
    d.name = "ic-xapp";
    d.version = "1.0";
    d.vendor = "acme";
    d.payload = "binary-blob";
    d.requested_role = "xapp-standard";
    return d;
  }
  Rbac rbac_;
  Operator op_;
  OnboardingService svc_;
};

TEST_F(OnboardingTest, ValidPackageOnboards) {
  const OnboardResult r = svc_.onboard(op_.package(descriptor()));
  EXPECT_TRUE(r.accepted);
  EXPECT_FALSE(r.app_id.empty());
  EXPECT_TRUE(svc_.is_onboarded(r.app_id));
  ASSERT_TRUE(r.certificate.has_value());
  EXPECT_TRUE(op_.verify_certificate(*r.certificate));
}

TEST_F(OnboardingTest, OnboardingAssignsRequestedRole) {
  const OnboardResult r = svc_.onboard(op_.package(descriptor()));
  EXPECT_TRUE(rbac_.allowed(r.app_id, "telemetry/kpm", Op::kRead));
  EXPECT_FALSE(rbac_.allowed(r.app_id, "telemetry/kpm", Op::kWrite));
}

TEST_F(OnboardingTest, TamperedPayloadRejected) {
  SignedPackage pkg = op_.package(descriptor());
  pkg.descriptor.payload = "trojaned-blob";  // post-signing tamper
  const OnboardResult r = svc_.onboard(pkg);
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.reason.find("integrity"), std::string::npos);
}

TEST_F(OnboardingTest, RoleEscalationAfterSigningRejected) {
  rbac_.define_role("admin", {Permission{"*", true, true}});
  SignedPackage pkg = op_.package(descriptor());
  pkg.descriptor.requested_role = "admin";  // escalate after signing
  EXPECT_FALSE(svc_.onboard(pkg).accepted);
}

TEST_F(OnboardingTest, ForgedSignatureRejected) {
  SignedPackage pkg = op_.package(descriptor());
  pkg.signature = "deadbeef";
  const OnboardResult r = svc_.onboard(pkg);
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.reason.find("authentication"), std::string::npos);
}

TEST_F(OnboardingTest, WrongOperatorSignatureRejected) {
  Operator rogue("rogue-op", "other-secret");
  const SignedPackage pkg = rogue.package(descriptor());
  EXPECT_FALSE(svc_.onboard(pkg).accepted);
}

TEST_F(OnboardingTest, UnknownRoleRejected) {
  AppDescriptor d = descriptor();
  d.requested_role = "undefined-role";
  const OnboardResult r = svc_.onboard(op_.package(d));
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.reason.find("authorization"), std::string::npos);
}

TEST_F(OnboardingTest, SignedMaliciousAppOnboards) {
  // The §2.2.2 supply-chain gap: onboarding validates provenance and
  // integrity, not behaviour. A properly signed package with malicious
  // logic sails through.
  AppDescriptor d = descriptor();
  d.name = "innocuous-looking-optimizer";
  d.payload = "malicious-logic-dormant-until-triggered";
  EXPECT_TRUE(svc_.onboard(op_.package(d)).accepted);
}

TEST_F(OnboardingTest, AttributesRegisteredForAbac) {
  AppDescriptor d = descriptor();
  d.attributes["function"] = "monitoring";
  const OnboardResult r = svc_.onboard(op_.package(d));
  rbac_.add_abac_rule(AbacRule{"function", "monitoring", "analytics/*",
                               Op::kRead, Effect::kAllow});
  EXPECT_TRUE(rbac_.allowed(r.app_id, "analytics/foo", Op::kRead));
}

TEST_F(OnboardingTest, DistinctAppIdsPerOnboarding) {
  const OnboardResult a = svc_.onboard(op_.package(descriptor()));
  const OnboardResult b = svc_.onboard(op_.package(descriptor()));
  EXPECT_NE(a.app_id, b.app_id);
}

TEST(OperatorCrypto, SignVerifyRoundTrip) {
  Operator op("o", "k");
  const std::string sig = op.sign("message");
  EXPECT_TRUE(op.verify("message", sig));
  EXPECT_FALSE(op.verify("other", sig));
  Operator other("o", "k2");
  EXPECT_FALSE(other.verify("message", sig));
}

TEST(PackageDigest, SensitiveToEveryField) {
  AppDescriptor d;
  d.name = "a";
  d.version = "1";
  d.vendor = "v";
  d.payload = "p";
  d.requested_role = "r";
  const std::string base = package_digest(d);
  AppDescriptor d2 = d;
  d2.version = "2";
  EXPECT_NE(package_digest(d2), base);
  AppDescriptor d3 = d;
  d3.type = AppType::kRApp;
  EXPECT_NE(package_digest(d3), base);
  AppDescriptor d4 = d;
  d4.attributes["k"] = "v";
  EXPECT_NE(package_digest(d4), base);
}

// ------------------------------------------------------------- Near-RT RIC

class RecordingXApp : public XApp {
 public:
  void on_indication(const E2Indication& ind, NearRtRic& /*ric*/) override {
    ttis.push_back(ind.tti);
    if (order_log != nullptr) order_log->push_back(tag);
  }
  std::vector<std::uint64_t> ttis;
  std::string tag;
  std::vector<std::string>* order_log = nullptr;
};

class FakeE2Node : public E2Node {
 public:
  void handle_control(const E2Control& c) override { controls.push_back(c); }
  std::string node_id() const override { return "ran-1"; }
  std::vector<E2Control> controls;
};

class NearRtRicTest : public ::testing::Test {
 protected:
  NearRtRicTest() : op_("op", "sec"), svc_(&op_, &rbac_) {
    rbac_.define_role("xapp-full",
                      {Permission{"telemetry/*", true, true},
                       Permission{"decisions/*", true, true},
                       Permission{"decisions", true, true},
                       Permission{"e2/control", false, true}});
  }
  std::string onboard(const std::string& name) {
    AppDescriptor d;
    d.name = name;
    d.version = "1";
    d.vendor = "v";
    d.payload = "p";
    d.requested_role = "xapp-full";
    return svc_.onboard(op_.package(d)).app_id;
  }
  E2Indication indication(std::uint64_t tti = 1) {
    E2Indication ind;
    ind.ran_node_id = "ran-1";
    ind.tti = tti;
    ind.kind = IndicationKind::kKpm;
    ind.payload = nn::Tensor({4}, 0.5f);
    return ind;
  }
  Rbac rbac_;
  Operator op_;
  OnboardingService svc_;
};

TEST_F(NearRtRicTest, RegistrationRequiresOnboarding) {
  NearRtRic ric(&rbac_, &svc_);
  EXPECT_FALSE(ric.register_xapp(std::make_shared<RecordingXApp>(),
                                 "never-onboarded", 0));
  EXPECT_TRUE(ric.register_xapp(std::make_shared<RecordingXApp>(),
                                onboard("x"), 0));
}

TEST_F(NearRtRicTest, IndicationWritesTelemetryToSdl) {
  NearRtRic ric(&rbac_, &svc_);
  ric.deliver_indication(indication(9));
  nn::Tensor out;
  EXPECT_EQ(ric.sdl().read_tensor(kRicPlatformId, kNsKpm, "ran-1/current",
                                  out),
            SdlStatus::kOk);
  EXPECT_EQ(out.shape(), (nn::Shape{4}));
  EXPECT_EQ(ric.indications_delivered(), 1u);
}

TEST_F(NearRtRicTest, DispatchFollowsPriorityOrder) {
  NearRtRic ric(&rbac_, &svc_);
  std::vector<std::string> order;
  auto late = std::make_shared<RecordingXApp>();
  late->tag = "late";
  late->order_log = &order;
  auto early = std::make_shared<RecordingXApp>();
  early->tag = "early";
  early->order_log = &order;
  // Register in reverse priority order; dispatch must sort by priority.
  ric.register_xapp(late, onboard("late"), 10);
  ric.register_xapp(early, onboard("early"), 1);
  ric.deliver_indication(indication());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "early");
  EXPECT_EQ(order[1], "late");
}

TEST_F(NearRtRicTest, ControlGatedByPolicy) {
  NearRtRic ric(&rbac_, &svc_);
  FakeE2Node node;
  ric.connect_e2(&node);
  const std::string authorized = onboard("good");
  ric.send_control(authorized, E2Control{});
  EXPECT_EQ(node.controls.size(), 1u);
  // An app without the e2/control permission is silently dropped.
  rbac_.define_role("no-control", {Permission{"telemetry/*", true, false}});
  rbac_.assign_role("weak-app", "no-control");
  ric.send_control("weak-app", E2Control{});
  EXPECT_EQ(node.controls.size(), 1u);
}

TEST_F(NearRtRicTest, DispatchStatsCount) {
  NearRtRic ric(&rbac_, &svc_);
  auto app = std::make_shared<RecordingXApp>();
  const std::string id = onboard("counted");
  ric.register_xapp(app, id, 0);
  ric.deliver_indication(indication(1));
  ric.deliver_indication(indication(2));
  EXPECT_EQ(ric.stats_of(id).dispatches, 2u);
  EXPECT_EQ(app->ttis.size(), 2u);
}

class SlowXApp : public XApp {
 public:
  explicit SlowXApp(double busy_ms) : busy_ms_(busy_ms) {}
  void on_indication(const E2Indication&, NearRtRic&) override {
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
               .count() < busy_ms_) {
    }
  }

 private:
  double busy_ms_;
};

TEST_F(NearRtRicTest, DeadlineMissesAreAccounted) {
  // A 0.01 ms control window that a 2 ms xApp can never meet.
  NearRtRic ric(&rbac_, &svc_, /*control_window_ms=*/0.01);
  const std::string slow = onboard("slow");
  const std::string fast = onboard("fast");
  ric.register_xapp(std::make_shared<SlowXApp>(2.0), slow, 0);
  auto recorder = std::make_shared<RecordingXApp>();
  ric.register_xapp(recorder, fast, 1);
  ric.deliver_indication(indication(1));
  ric.deliver_indication(indication(2));
  EXPECT_EQ(ric.stats_of(slow).dispatches, 2u);
  EXPECT_EQ(ric.stats_of(slow).deadline_misses, 2u);
  EXPECT_GE(ric.stats_of(slow).total_ms, 4.0);
  // Missing the deadline is accounted, not fatal: dispatch still completed
  // and (by default) does not trip the app's circuit breaker.
  EXPECT_EQ(recorder->ttis.size(), 2u);
  EXPECT_EQ(ric.breaker_state(slow),
            fault::CircuitBreaker::State::kClosed);
  EXPECT_EQ(ric.stats_of(slow).faults, 0u);
}

TEST_F(NearRtRicTest, PoliciesAccepted) {
  NearRtRic ric(&rbac_, &svc_);
  A1Policy p;
  p.policy_type = "interference-management";
  ric.accept_policy(p);
  ASSERT_EQ(ric.policies().size(), 1u);
  EXPECT_EQ(ric.policies().front().policy_type, "interference-management");
}

// ------------------------------------------------------------- Non-RT RIC

class FakeO1 : public O1Interface {
 public:
  PmReport collect_pm() override {
    PmReport r;
    for (int id = 1; id <= 9; ++id) {
      CellPm pm;
      pm.prb_util_dl = 10.0 * id;
      pm.active = active_.count(id) == 0;
      r.cells[id] = pm;
    }
    return r;
  }
  bool set_cell_state(int cell_id, bool active) override {
    if (cell_id < 1 || cell_id > 9) return false;
    if (active) active_.erase(cell_id);
    else active_.insert(cell_id);
    ++commands;
    return true;
  }
  std::set<int> active_;  // ids currently forced inactive
  int commands = 0;
};

class RecordingRApp : public RApp {
 public:
  void on_pm_period(const PmReport& report, NonRtRic& /*ric*/) override {
    periods.push_back(report.period);
  }
  std::vector<std::uint64_t> periods;
};

class NonRtRicTest : public ::testing::Test {
 protected:
  NonRtRicTest() : op_("op", "sec"), svc_(&op_, &rbac_) {
    rbac_.define_role("rapp-full",
                      {Permission{"pm", true, true},
                       Permission{"rapp-decisions", true, true},
                       Permission{"o1/cell-control", false, true}});
  }
  std::string onboard(const std::string& name) {
    AppDescriptor d;
    d.name = name;
    d.version = "1";
    d.vendor = "v";
    d.payload = "p";
    d.type = AppType::kRApp;
    d.requested_role = "rapp-full";
    return svc_.onboard(op_.package(d)).app_id;
  }
  Rbac rbac_;
  Operator op_;
  OnboardingService svc_;
};

TEST_F(NonRtRicTest, StepPublishesPrbHistory) {
  NonRtRic ric(&rbac_, &svc_, /*history_window=*/4);
  FakeO1 o1;
  ric.connect_o1(&o1);
  ric.step();
  nn::Tensor hist;
  ASSERT_EQ(ric.sdl().read_tensor(kRicPlatformId, kNsPm, kKeyPrbHistory,
                                  hist),
            SdlStatus::kOk);
  EXPECT_EQ(hist.shape(), (nn::Shape{4, 9}));
  // The newest row carries the per-cell PRB = 10 * id pattern.
  EXPECT_FLOAT_EQ(hist.at2(3, 0), 10.0f);
  EXPECT_FLOAT_EQ(hist.at2(3, 8), 90.0f);
}

TEST_F(NonRtRicTest, HistorySlidesOverPeriods) {
  NonRtRic ric(&rbac_, &svc_, /*history_window=*/3);
  FakeO1 o1;
  ric.connect_o1(&o1);
  for (int i = 0; i < 5; ++i) ric.step();
  EXPECT_EQ(ric.periods_run(), 5u);
  nn::Tensor hist;
  ric.sdl().read_tensor(kRicPlatformId, kNsPm, kKeyPrbHistory, hist);
  EXPECT_EQ(hist.shape(), (nn::Shape{3, 9}));
}

TEST_F(NonRtRicTest, RappDispatchedEachPeriod) {
  NonRtRic ric(&rbac_, &svc_);
  FakeO1 o1;
  ric.connect_o1(&o1);
  auto app = std::make_shared<RecordingRApp>();
  ASSERT_TRUE(ric.register_rapp(app, onboard("r"), 0));
  ric.step();
  ric.step();
  EXPECT_EQ(app->periods.size(), 2u);
}

TEST_F(NonRtRicTest, CellControlRequiresPermission) {
  NonRtRic ric(&rbac_, &svc_);
  FakeO1 o1;
  ric.connect_o1(&o1);
  const std::string strong = onboard("strong");
  EXPECT_TRUE(ric.request_cell_state(strong, 4, false));
  EXPECT_EQ(o1.commands, 1);
  rbac_.define_role("weak", {Permission{"pm", true, false}});
  rbac_.assign_role("weak-app", "weak");
  EXPECT_FALSE(ric.request_cell_state("weak-app", 4, false));
  EXPECT_EQ(o1.commands, 1);
}

TEST_F(NonRtRicTest, A1PolicyReachesNearRtRic) {
  NonRtRic non_rt(&rbac_, &svc_);
  NearRtRic near_rt(&rbac_, &svc_);
  A1Policy p;
  p.policy_type = "energy-saving";
  non_rt.push_a1_policy(near_rt, p);
  ASSERT_EQ(near_rt.policies().size(), 1u);
  EXPECT_EQ(near_rt.policies().front().policy_type, "energy-saving");
}

TEST_F(NonRtRicTest, RegistrationRequiresOnboarding) {
  NonRtRic ric(&rbac_, &svc_);
  EXPECT_FALSE(
      ric.register_rapp(std::make_shared<RecordingRApp>(), "ghost", 0));
}

}  // namespace
}  // namespace orev::oran
