// Fault-injection layer tests (DESIGN.md §9): plan parsing, deterministic
// decision streams, retry/backoff, the circuit breaker state machine, SDL
// fault semantics, platform isolation/quarantine of faulty apps, degraded
// modes of the IC xApp and Power-Saving rApp, and closed-loop same-seed
// reproducibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "apps/ic_xapp.hpp"
#include "apps/model_zoo.hpp"
#include "apps/power_saving_rapp.hpp"
#include "defense/runtime_monitor.hpp"
#include "nn/blocks.hpp"
#include "nn/layers.hpp"
#include "oran/near_rt_ric.hpp"
#include "oran/non_rt_ric.hpp"
#include "util/fault/circuit_breaker.hpp"
#include "util/fault/fault.hpp"
#include "util/fault/retry.hpp"

namespace orev {
namespace {

using fault::FaultDecision;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;
using fault::TryResult;

// -------------------------------------------------------------- fault plan

TEST(FaultPlan, ParsesDirectivesAndParams) {
  const FaultPlan plan = FaultPlan::parse(
      "# chaos schedule\n"
      "seed 99\n"
      "site sdl.read transient p=0.25 max=10\n"
      "site e2.indication delay p=1 delay_ms=7.5\n"
      "site sdl.write corrupt p=0.5 corrupt_scale=0.125\n"
      "\n"
      "site xapp.dispatch crash p=0.01  # trailing comment\n");
  EXPECT_EQ(plan.seed, 99u);
  ASSERT_EQ(plan.sites.size(), 4u);
  const FaultSpec& read = plan.sites.at("sdl.read")[0];
  EXPECT_EQ(read.kind, FaultKind::kTransient);
  EXPECT_DOUBLE_EQ(read.probability, 0.25);
  EXPECT_EQ(read.max_injections, 10u);
  const FaultSpec& delay = plan.sites.at("e2.indication")[0];
  EXPECT_EQ(delay.kind, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(delay.delay_ms, 7.5);
  EXPECT_FLOAT_EQ(plan.sites.at("sdl.write")[0].corrupt_scale, 0.125f);
}

TEST(FaultPlan, RejectsMalformedInput) {
  EXPECT_THROW(FaultPlan::parse("bogus directive\n"), CheckError);
  EXPECT_THROW(FaultPlan::parse("site sdl.read explode p=0.5\n"), CheckError);
  EXPECT_THROW(FaultPlan::parse("site sdl.read drop p=1.5\n"), CheckError);
  EXPECT_THROW(FaultPlan::parse("site sdl.read drop chance\n"), CheckError);
}

TEST(FaultPlan, RoundTripsThroughText) {
  const FaultPlan plan = fault::default_chaos_plan();
  const FaultPlan reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
  EXPECT_EQ(reparsed.seed, plan.seed);
  EXPECT_EQ(reparsed.sites.size(), plan.sites.size());
}

TEST(FaultPlan, LoadMissingFileIsNullopt) {
  EXPECT_FALSE(FaultPlan::load("/nonexistent/fault.plan").has_value());
}

// ---------------------------------------------------------- fault injector

FaultPlan one_site_plan(const char* site, FaultKind kind, double p,
                        std::uint64_t max = UINT64_MAX) {
  FaultPlan plan;
  plan.seed = 7;
  FaultSpec spec;
  spec.kind = kind;
  spec.probability = p;
  spec.max_injections = max;
  plan.sites[site].push_back(spec);
  return plan;
}

std::vector<FaultKind> draw_kinds(FaultInjector& inj, const char* site,
                                  int n) {
  std::vector<FaultKind> out;
  for (int i = 0; i < n; ++i) out.push_back(inj.decide(site).kind);
  return out;
}

TEST(FaultInjector, SameSeedSameSequence) {
  const FaultPlan plan = one_site_plan("sdl.read", FaultKind::kTransient, 0.4);
  FaultInjector a(plan);
  FaultInjector b(plan);
  EXPECT_EQ(draw_kinds(a, "sdl.read", 300), draw_kinds(b, "sdl.read", 300));
  // ...and payload seeds too (full decision equality, not just kinds).
  FaultPlan cp = one_site_plan("sdl.write", FaultKind::kCorrupt, 1.0);
  FaultInjector ca(cp);
  FaultInjector cb(cp);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(ca.decide("sdl.write").payload_seed,
              cb.decide("sdl.write").payload_seed);
}

TEST(FaultInjector, DifferentSeedDifferentSequence) {
  FaultPlan plan = one_site_plan("sdl.read", FaultKind::kTransient, 0.4);
  FaultInjector a(plan);
  plan.seed = 8;
  FaultInjector b(plan);
  EXPECT_NE(draw_kinds(a, "sdl.read", 300), draw_kinds(b, "sdl.read", 300));
}

TEST(FaultInjector, SiteStreamsAreIndependent) {
  FaultPlan plan = one_site_plan("sdl.read", FaultKind::kTransient, 0.4);
  FaultSpec other;
  other.kind = FaultKind::kDrop;
  other.probability = 0.4;
  plan.sites["e2.indication"].push_back(other);

  // Reference: sdl.read alone.
  FaultInjector alone(plan);
  const auto expected = draw_kinds(alone, "sdl.read", 100);
  // Interleave heavy traffic on the other site; sdl.read must not shift.
  FaultInjector mixed(plan);
  std::vector<FaultKind> got;
  for (int i = 0; i < 100; ++i) {
    mixed.decide("e2.indication");
    mixed.decide("e2.indication");
    got.push_back(mixed.decide("sdl.read").kind);
  }
  EXPECT_EQ(got, expected);
}

TEST(FaultInjector, BudgetBoundsInjections) {
  FaultInjector inj(one_site_plan("x", FaultKind::kCrash, 1.0, /*max=*/3));
  int injected = 0;
  for (int i = 0; i < 50; ++i)
    if (inj.decide("x")) ++injected;
  EXPECT_EQ(injected, 3);
  EXPECT_EQ(inj.site_stats("x").ops, 50u);
  EXPECT_EQ(inj.site_stats("x").injected, 3u);
  EXPECT_EQ(inj.site_stats("x").by_kind[static_cast<int>(FaultKind::kCrash)],
            3u);
}

TEST(FaultInjector, UnknownSiteAndEmptyPlanAreNoops) {
  FaultInjector inj{FaultPlan{}};
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(inj.decide("sdl.read"));
  EXPECT_EQ(inj.total_ops(), 0u);
  EXPECT_EQ(inj.total_injected(), 0u);

  FaultInjector with(one_site_plan("a", FaultKind::kDrop, 1.0));
  EXPECT_FALSE(with.decide("not-in-plan"));
}

TEST(FaultInjector, ResetReplaysTheSequence) {
  FaultInjector inj(
      one_site_plan("x", FaultKind::kTransient, 0.5, /*max=*/20));
  const auto first = draw_kinds(inj, "x", 100);
  inj.reset();
  EXPECT_EQ(draw_kinds(inj, "x", 100), first);
}

TEST(FaultInjector, StatsJsonIsDeterministic) {
  const FaultPlan plan = fault::default_chaos_plan();
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 64; ++i) {
    a.decide("sdl.read");
    a.decide("xapp.dispatch");
    b.decide("sdl.read");
    b.decide("xapp.dispatch");
  }
  EXPECT_EQ(a.stats_json(), b.stats_json());
  EXPECT_NE(a.stats_json().find("\"sdl.read\""), std::string::npos);
}

// ---------------------------------------------------------- retry/backoff

TEST(Retry, BackoffDeterministicGrowingAndCapped) {
  fault::RetryPolicy p;
  p.base_backoff_ms = 2.0;
  p.multiplier = 2.0;
  p.max_backoff_ms = 10.0;
  p.jitter_frac = 0.1;
  EXPECT_DOUBLE_EQ(fault::backoff_ms(p, 1, 5), fault::backoff_ms(p, 1, 5));
  EXPECT_NE(fault::backoff_ms(p, 1, 5), fault::backoff_ms(p, 1, 6));
  // Jitter bounds: base * mult^(k-1) capped at max, ±10%.
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const double nominal =
        std::min(2.0 * std::pow(2.0, attempt - 1), p.max_backoff_ms);
    const double b = fault::backoff_ms(p, attempt, 17);
    EXPECT_GE(b, nominal * 0.9 - 1e-12);
    EXPECT_LE(b, nominal * 1.1 + 1e-12);
  }
}

TEST(Retry, CallSemantics) {
  fault::RetryPolicy p;
  p.max_attempts = 3;

  auto ok = fault::retry_call(p, 0, [] { return TryResult::kOk; });
  EXPECT_TRUE(ok.success);
  EXPECT_EQ(ok.attempts, 1);
  EXPECT_DOUBLE_EQ(ok.total_backoff_ms, 0.0);

  int calls = 0;
  auto eventually = fault::retry_call(p, 1, [&] {
    return ++calls < 3 ? TryResult::kTransient : TryResult::kOk;
  });
  EXPECT_TRUE(eventually.success);
  EXPECT_EQ(eventually.attempts, 3);
  EXPECT_GT(eventually.total_backoff_ms, 0.0);

  auto exhausted =
      fault::retry_call(p, 2, [] { return TryResult::kTransient; });
  EXPECT_FALSE(exhausted.success);
  EXPECT_FALSE(exhausted.fatal);
  EXPECT_EQ(exhausted.attempts, 3);

  int fatal_calls = 0;
  auto fatal = fault::retry_call(p, 3, [&] {
    ++fatal_calls;
    return TryResult::kFatal;
  });
  EXPECT_FALSE(fatal.success);
  EXPECT_TRUE(fatal.fatal);
  EXPECT_EQ(fatal_calls, 1);

  int once = 0;
  fault::retry_call(fault::no_retry_policy(), 4, [&] {
    ++once;
    return TryResult::kTransient;
  });
  EXPECT_EQ(once, 1);
}

// --------------------------------------------------------- circuit breaker

TEST(CircuitBreaker, OpensQuarantinesAndRecovers) {
  fault::BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_cooldown = 2;
  cfg.half_open_successes = 1;
  fault::CircuitBreaker b(cfg);

  using State = fault::CircuitBreaker::State;
  EXPECT_EQ(b.state(), State::kClosed);
  // A success in between resets the consecutive-failure count.
  b.record_failure();
  b.record_failure();
  b.record_success();
  b.record_failure();
  b.record_failure();
  EXPECT_EQ(b.state(), State::kClosed);
  b.record_failure();
  EXPECT_EQ(b.state(), State::kOpen);
  EXPECT_EQ(b.times_opened(), 1u);

  // Cooldown counts offered ops; the call that exhausts it admits a probe.
  EXPECT_FALSE(b.allow());
  EXPECT_TRUE(b.allow());
  EXPECT_EQ(b.state(), State::kHalfOpen);

  // A failed probe goes straight back to open...
  b.record_failure();
  EXPECT_EQ(b.state(), State::kOpen);
  EXPECT_EQ(b.times_opened(), 2u);

  // ...and a successful probe after the next cooldown closes it.
  EXPECT_FALSE(b.allow());
  EXPECT_TRUE(b.allow());
  b.record_success();
  EXPECT_EQ(b.state(), State::kClosed);
}

// ------------------------------------------------------ SDL fault semantics

class SdlFaultTest : public ::testing::Test {
 protected:
  SdlFaultTest() : sdl_(&rbac_) {
    rbac_.define_role("rw", {oran::Permission{"ns/*", true, true}});
    rbac_.assign_role("app", "rw");
  }
  oran::Rbac rbac_;
  oran::Sdl sdl_;
};

TEST_F(SdlFaultTest, TransientReadIsUnavailableAndLeavesOutUntouched) {
  const nn::Tensor t({2}, std::vector<float>{1.0f, 2.0f});
  ASSERT_EQ(sdl_.write_tensor("app", "ns/a", "k", t), oran::SdlStatus::kOk);

  FaultInjector inj(
      one_site_plan("sdl.read", FaultKind::kTransient, 1.0, /*max=*/2));
  sdl_.set_fault_injector(&inj);
  nn::Tensor out({1}, std::vector<float>{-7.0f});
  EXPECT_EQ(sdl_.read_tensor("app", "ns/a", "k", out),
            oran::SdlStatus::kUnavailable);
  EXPECT_EQ(out.numel(), 1u);
  EXPECT_FLOAT_EQ(out[0], -7.0f);  // untouched on failure
  EXPECT_EQ(sdl_.read_tensor("app", "ns/a", "k", out),
            oran::SdlStatus::kUnavailable);
  // Budget exhausted: the store recovers.
  EXPECT_EQ(sdl_.read_tensor("app", "ns/a", "k", out), oran::SdlStatus::kOk);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  EXPECT_EQ(sdl_.unavailable_reads(), 2u);
}

TEST_F(SdlFaultTest, DroppedWriteIsSilentlyLost) {
  FaultInjector inj(
      one_site_plan("sdl.write", FaultKind::kDrop, 1.0, /*max=*/1));
  sdl_.set_fault_injector(&inj);
  // The caller sees success, but the store was never touched.
  EXPECT_EQ(sdl_.write_tensor("app", "ns/a", "k", nn::Tensor({1}, 3.0f)),
            oran::SdlStatus::kOk);
  EXPECT_FALSE(sdl_.version("ns/a", "k").has_value());
  EXPECT_FALSE(sdl_.last_writer("ns/a", "k").has_value());
  nn::Tensor out;
  EXPECT_EQ(sdl_.read_tensor("app", "ns/a", "k", out),
            oran::SdlStatus::kNotFound);
  EXPECT_EQ(sdl_.dropped_writes(), 1u);
  // Budget spent: the next write lands.
  EXPECT_EQ(sdl_.write_tensor("app", "ns/a", "k", nn::Tensor({1}, 4.0f)),
            oran::SdlStatus::kOk);
  EXPECT_EQ(sdl_.version("ns/a", "k"), 1u);
}

TEST_F(SdlFaultTest, CorruptionIsDeterministicAcrossRuns) {
  const FaultPlan plan = one_site_plan("sdl.write", FaultKind::kCorrupt, 1.0);
  const nn::Tensor original({3}, std::vector<float>{1.0f, 2.0f, 3.0f});

  auto run = [&](oran::Sdl& sdl, FaultInjector& inj) {
    sdl.set_fault_injector(&inj);
    EXPECT_EQ(sdl.write_tensor("app", "ns/a", "k", original),
              oran::SdlStatus::kOk);
    sdl.set_fault_injector(nullptr);
    nn::Tensor out;
    EXPECT_EQ(sdl.read_tensor("app", "ns/a", "k", out), oran::SdlStatus::kOk);
    return out;
  };
  FaultInjector ia(plan);
  const nn::Tensor a = run(sdl_, ia);
  oran::Sdl sdl2(&rbac_);
  FaultInjector ib(plan);
  const nn::Tensor b = run(sdl2, ib);

  bool differs_from_original = false;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "corruption must replay identically";
    if (a[i] != original[i]) differs_from_original = true;
  }
  EXPECT_TRUE(differs_from_original);
  EXPECT_EQ(sdl_.corrupted_writes(), 1u);
}

TEST_F(SdlFaultTest, MonitorCursorSurvivesAuditEviction) {
  // The write monitor's cursor is an absolute sequence number, so ring
  // evictions between scans neither replay nor skip records.
  defense::SdlWriteMonitor monitor;
  monitor.expect_writers("ns/prot", {"app"});
  rbac_.define_role("rogue-rw", {oran::Permission{"ns/*", true, true}});
  rbac_.assign_role("rogue", "rogue-rw");

  sdl_.set_audit_capacity(4);
  sdl_.write_text("app", "ns/prot", "k", "fine");
  EXPECT_TRUE(monitor.scan(sdl_).empty());
  // Push the earlier records out of the ring, with one violation inside.
  for (int i = 0; i < 6; ++i) sdl_.write_text("app", "ns/other", "k", "x");
  sdl_.write_text("rogue", "ns/prot", "k", "evil");
  EXPECT_GT(sdl_.audit_dropped_records(), 0u);
  const auto alerts = monitor.scan(sdl_);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].writer, "rogue");
  EXPECT_TRUE(monitor.scan(sdl_).empty());  // no replay on the next scan
}

// ----------------------------------------------- Near-RT RIC fault handling

/// A 2-feature IC model: interference iff feature0 < 0.5 (low SINR).
nn::Model tiny_ic_model() {
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Dense>(2, 2);
  nn::Model m("TinyIc", std::move(seq), {2}, 2);
  std::vector<nn::Tensor> w;
  w.push_back(nn::Tensor({2, 2}, {8.0f, 0.0f, -8.0f, 0.0f}));
  w.push_back(nn::Tensor({2}, {-4.0f, 4.0f}));
  m.set_weights(w);
  return m;
}

class ThrowingXApp : public oran::XApp {
 public:
  void on_indication(const oran::E2Indication&, oran::NearRtRic&) override {
    ++calls;
    if (throwing) throw std::runtime_error("app bug");
  }
  bool throwing = true;
  int calls = 0;
};

class RecordingXApp : public oran::XApp {
 public:
  void on_indication(const oran::E2Indication& ind,
                     oran::NearRtRic&) override {
    ttis.push_back(ind.tti);
  }
  std::vector<std::uint64_t> ttis;
};

class FakeE2Node : public oran::E2Node {
 public:
  void handle_control(const oran::E2Control& c) override {
    controls.push_back(c);
  }
  std::string node_id() const override { return "ran-1"; }
  std::vector<oran::E2Control> controls;
};

class RicFaultTest : public ::testing::Test {
 protected:
  RicFaultTest() : op_("op", "sec"), svc_(&op_, &rbac_) {
    rbac_.define_role("xapp-full",
                      {oran::Permission{"telemetry/*", true, false},
                       oran::Permission{"decisions", true, true},
                       oran::Permission{"e2/control", false, true}});
  }
  std::string onboard(const std::string& name) {
    oran::AppDescriptor d;
    d.name = name;
    d.version = "1";
    d.vendor = "v";
    d.payload = "p";
    d.requested_role = "xapp-full";
    return svc_.onboard(op_.package(d)).app_id;
  }
  oran::E2Indication kpm_indication(float sinr, std::uint64_t tti) {
    oran::E2Indication ind;
    ind.ran_node_id = "ran-1";
    ind.tti = tti;
    ind.kind = oran::IndicationKind::kKpm;
    ind.payload = nn::Tensor({2}, std::vector<float>{sinr, 1.0f - sinr});
    return ind;
  }
  oran::Rbac rbac_;
  oran::Operator op_;
  oran::OnboardingService svc_;
};

TEST_F(RicFaultTest, ThrowingXAppIsIsolatedAndQuarantined) {
  oran::NearRtRic ric(&rbac_, &svc_);
  fault::BreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.open_cooldown = 2;
  ric.set_breaker_config(cfg);

  auto thrower = std::make_shared<ThrowingXApp>();
  auto recorder = std::make_shared<RecordingXApp>();
  const std::string bad = onboard("bad");
  const std::string good = onboard("good");
  ASSERT_TRUE(ric.register_xapp(thrower, bad, 1));
  ASSERT_TRUE(ric.register_xapp(recorder, good, 10));

  using State = fault::CircuitBreaker::State;
  // Two faults open the breaker; the lower-priority app keeps running.
  ric.deliver_indication(kpm_indication(0.5f, 1));
  ric.deliver_indication(kpm_indication(0.5f, 2));
  EXPECT_EQ(ric.stats_of(bad).faults, 2u);
  EXPECT_EQ(ric.breaker_state(bad), State::kOpen);
  // Quarantine (tti 3), then a failed half-open probe (tti 4) reopens.
  ric.deliver_indication(kpm_indication(0.5f, 3));
  EXPECT_EQ(ric.stats_of(bad).quarantined_skips, 1u);
  ric.deliver_indication(kpm_indication(0.5f, 4));
  EXPECT_EQ(ric.stats_of(bad).faults, 3u);
  EXPECT_EQ(ric.breaker_state(bad), State::kOpen);
  EXPECT_EQ(ric.breaker_opens(bad), 2u);
  // The app recovers: quarantine (tti 5), successful probe (tti 6) closes.
  thrower->throwing = false;
  ric.deliver_indication(kpm_indication(0.5f, 5));
  ric.deliver_indication(kpm_indication(0.5f, 6));
  EXPECT_EQ(ric.breaker_state(bad), State::kClosed);
  ric.deliver_indication(kpm_indication(0.5f, 7));
  // The well-behaved app saw every indication throughout.
  EXPECT_EQ(recorder->ttis.size(), 7u);
  EXPECT_EQ(ric.stats_of(good).faults, 0u);
  EXPECT_EQ(ric.breaker_state(good), State::kClosed);
}

TEST_F(RicFaultTest, InjectedCrashesCountAsFaults) {
  oran::NearRtRic ric(&rbac_, &svc_);
  FaultInjector inj(
      one_site_plan("xapp.dispatch", FaultKind::kCrash, 1.0, /*max=*/2));
  ric.set_fault_injector(&inj);
  auto recorder = std::make_shared<RecordingXApp>();
  const std::string id = onboard("x");
  ASSERT_TRUE(ric.register_xapp(recorder, id, 1));
  for (std::uint64_t t = 1; t <= 4; ++t)
    ric.deliver_indication(kpm_indication(0.5f, t));
  EXPECT_EQ(ric.stats_of(id).faults, 2u);
  EXPECT_EQ(ric.stats_of(id).dispatches, 4u);
  EXPECT_EQ(recorder->ttis.size(), 2u);  // the two non-crashed dispatches
}

TEST_F(RicFaultTest, DroppedIndicationReportsFalse) {
  oran::NearRtRic ric(&rbac_, &svc_);
  FaultInjector inj(
      one_site_plan("e2.indication", FaultKind::kDrop, 1.0, /*max=*/1));
  ric.set_fault_injector(&inj);
  EXPECT_FALSE(ric.deliver_indication(kpm_indication(0.5f, 1)));
  EXPECT_TRUE(ric.deliver_indication(kpm_indication(0.5f, 2)));
  EXPECT_EQ(ric.indications_dropped(), 1u);
  EXPECT_EQ(ric.indications_delivered(), 1u);
}

TEST_F(RicFaultTest, PlatformWriteRetriesTransientOutage) {
  oran::NearRtRic ric(&rbac_, &svc_);
  // Two transient write faults, a 3-attempt policy: the write succeeds.
  FaultInjector inj(
      one_site_plan("sdl.write", FaultKind::kTransient, 1.0, /*max=*/2));
  ric.set_fault_injector(&inj);
  EXPECT_TRUE(ric.deliver_indication(kpm_indication(0.5f, 1)));
  EXPECT_EQ(ric.sdl_write_failures(), 0u);
  nn::Tensor out;
  EXPECT_EQ(ric.read_telemetry(oran::kRicPlatformId, oran::kNsKpm,
                               "ran-1/current", out),
            oran::SdlStatus::kOk);
}

TEST_F(RicFaultTest, IcXAppFallsBackThenFailsSafeThenRecovers) {
  oran::NearRtRic ric(&rbac_, &svc_);
  FakeE2Node node;
  ric.connect_e2(&node);
  auto app = std::make_shared<apps::IcXApp>(tiny_ic_model(),
                                            oran::IndicationKind::kKpm, 13);
  apps::IcDegradedConfig dcfg;
  dcfg.enabled = true;
  dcfg.max_stale = 2;
  app->set_degraded_config(dcfg);
  ASSERT_TRUE(ric.register_xapp(app, onboard("ic"), 10));

  // Healthy period primes the last-known-good cache (jammed sample).
  ric.deliver_indication(kpm_indication(0.1f, 1));
  EXPECT_EQ(app->predictions_made(), 1u);
  ASSERT_EQ(node.controls.size(), 1u);
  EXPECT_EQ(node.controls[0].action, oran::ControlAction::kSetAdaptiveMcs);

  // Storage outage: reads fail from now on; platform writes still land
  // and bump the entry version, so the cache ages one version per tti.
  FaultInjector inj(one_site_plan("sdl.read", FaultKind::kTransient, 1.0));
  ric.set_fault_injector(&inj);
  ric.deliver_indication(kpm_indication(0.9f, 2));  // staleness 1 → fallback
  ric.deliver_indication(kpm_indication(0.9f, 3));  // staleness 2 → fallback
  EXPECT_EQ(app->fallback_classifications(), 2u);
  EXPECT_EQ(app->failsafe_controls(), 0u);
  // Fallback classifies the *cached* jammed sample → adaptive MCS.
  ASSERT_EQ(node.controls.size(), 3u);
  EXPECT_EQ(node.controls[2].action, oran::ControlAction::kSetAdaptiveMcs);

  ric.deliver_indication(kpm_indication(0.9f, 4));  // staleness 3 → fail-safe
  EXPECT_EQ(app->failsafe_controls(), 1u);
  ASSERT_EQ(node.controls.size(), 4u);
  EXPECT_EQ(node.controls[3].action, oran::ControlAction::kSetAdaptiveMcs);

  // The store recovers: fresh classification resumes (clean → fixed MCS).
  ric.set_fault_injector(nullptr);
  std::string published;
  ASSERT_EQ(ric.sdl().read_text(oran::kRicPlatformId, oran::kNsDecisions,
                                "ic/ran-1", published),
            oran::SdlStatus::kOk);
  EXPECT_EQ(published, "failsafe");
  ric.deliver_indication(kpm_indication(0.9f, 5));
  EXPECT_EQ(app->predictions_made(), 4u);  // 1 fresh + 2 fallback + this one
  ASSERT_EQ(node.controls.size(), 5u);
  EXPECT_EQ(node.controls[4].action, oran::ControlAction::kSetFixedMcs);
  EXPECT_EQ(app->telemetry_failures(), 3u);
}

TEST_F(RicFaultTest, EmptyPlanChangesNothing) {
  auto run = [&](FaultInjector* inj) {
    oran::NearRtRic ric(&rbac_, &svc_);
    FakeE2Node node;
    ric.connect_e2(&node);
    if (inj != nullptr) ric.set_fault_injector(inj);
    auto app = std::make_shared<apps::IcXApp>(
        tiny_ic_model(), oran::IndicationKind::kKpm, 13);
    EXPECT_TRUE(ric.register_xapp(app, onboard("ic"), 10));
    for (std::uint64_t t = 0; t < 16; ++t)
      ric.deliver_indication(kpm_indication(t % 2 == 0 ? 0.1f : 0.9f, t));
    return std::make_pair(node.controls.size(), app->predictions_made());
  };
  FaultInjector empty{FaultPlan{}};
  EXPECT_EQ(run(&empty), run(nullptr));
  EXPECT_EQ(empty.total_ops(), 0u);
}

// ---------------------------------------------- Non-RT RIC fault handling

class FakeO1 : public oran::O1Interface {
 public:
  oran::PmReport collect_pm() override {
    oran::PmReport r;
    for (int id = 1; id <= 9; ++id) {
      oran::CellPm pm;
      pm.prb_util_dl = 10.0 * id;
      pm.active = inactive_.count(id) == 0;
      r.cells[id] = pm;
    }
    return r;
  }
  bool set_cell_state(int cell_id, bool active) override {
    if (active) inactive_.erase(cell_id);
    else inactive_.insert(cell_id);
    ++commands;
    return true;
  }
  std::set<int> inactive_;
  int commands = 0;
};

class NonRtFaultTest : public ::testing::Test {
 protected:
  NonRtFaultTest() : op_("op", "sec"), svc_(&op_, &rbac_) {
    rbac_.define_role("ps-rapp",
                      {oran::Permission{"pm", true, false},
                       oran::Permission{"rapp-decisions", true, true},
                       oran::Permission{"o1/cell-control", false, true}});
  }
  std::string onboard(const std::string& name) {
    oran::AppDescriptor d;
    d.name = name;
    d.version = "1";
    d.vendor = "v";
    d.payload = "p";
    d.type = oran::AppType::kRApp;
    d.requested_role = "ps-rapp";
    return svc_.onboard(op_.package(d)).app_id;
  }
  oran::Rbac rbac_;
  oran::Operator op_;
  oran::OnboardingService svc_;
};

TEST_F(NonRtFaultTest, CollectFaultSkipsPeriod) {
  oran::NonRtRic ric(&rbac_, &svc_, 12);
  FakeO1 o1;
  ric.connect_o1(&o1);
  FaultInjector inj(
      one_site_plan("o1.collect", FaultKind::kTransient, 1.0, /*max=*/6));
  ric.set_fault_injector(&inj);
  ric.set_retry_policy(fault::no_retry_policy());
  ric.step();  // collection fails outright
  EXPECT_EQ(ric.pm_collect_failures(), 1u);
  EXPECT_EQ(ric.periods_run(), 0u);
  // Remaining budget (5) is absorbed by one retried step (attempts reset).
  fault::RetryPolicy p;
  p.max_attempts = 6;
  ric.set_retry_policy(p);
  ric.step();
  EXPECT_EQ(ric.pm_collect_failures(), 1u);
  EXPECT_EQ(ric.periods_run(), 1u);
}

TEST_F(NonRtFaultTest, PowerSavingFallsBackThenFailsSafe) {
  oran::NonRtRic ric(&rbac_, &svc_, 12);
  FakeO1 o1;
  ric.connect_o1(&o1);
  auto app = std::make_shared<apps::PowerSavingRApp>(
      apps::make_power_saving_cnn({1, 12, 9}, 6, 21));
  apps::PsDegradedConfig dcfg;
  dcfg.enabled = true;
  dcfg.max_stale = 1;
  app->set_degraded_config(dcfg);
  ASSERT_TRUE(ric.register_rapp(app, onboard("ps"), 10));

  ric.step();  // healthy: fresh decisions prime the cache
  EXPECT_EQ(app->decisions_made(), 3u);
  const int commands_after_healthy = o1.commands;

  // Storage outage: rApp reads fail; the platform still publishes, so the
  // cached history ages one version per period.
  FaultInjector inj(one_site_plan("sdl.read", FaultKind::kTransient, 1.0));
  ric.set_fault_injector(&inj);
  ric.step();  // staleness 1 → fallback decisions
  EXPECT_EQ(app->fallback_decisions(), 1u);
  EXPECT_EQ(app->decisions_made(), 6u);
  ric.step();  // staleness 2 → fail-safe: no decisions, no cell commands
  EXPECT_EQ(app->failsafe_periods(), 1u);
  EXPECT_EQ(app->decisions_made(), 6u);
  const int commands_after_failsafe = o1.commands;
  ric.step();
  EXPECT_EQ(app->failsafe_periods(), 2u);
  EXPECT_EQ(o1.commands, commands_after_failsafe);  // still no sleep actions

  // Recovery: fresh decisions resume.
  ric.set_fault_injector(nullptr);
  ric.step();
  EXPECT_EQ(app->decisions_made(), 9u);
  EXPECT_GE(o1.commands, commands_after_healthy);
  EXPECT_EQ(app->pm_read_failures(), 3u);
}

TEST_F(NonRtFaultTest, A1PushDropsAndRetries) {
  oran::NonRtRic non_rt(&rbac_, &svc_, 12);
  oran::NearRtRic near_rt(&rbac_, &svc_);
  oran::A1Policy pol;
  pol.policy_type = "energy-saving";

  FaultInjector drop(one_site_plan("a1.policy", FaultKind::kDrop, 1.0,
                                   /*max=*/1));
  non_rt.set_fault_injector(&drop);
  EXPECT_FALSE(non_rt.push_a1_policy(near_rt, pol));
  EXPECT_EQ(non_rt.policies_dropped(), 1u);
  EXPECT_TRUE(near_rt.policies().empty());
  EXPECT_TRUE(non_rt.push_a1_policy(near_rt, pol));
  ASSERT_EQ(near_rt.policies().size(), 1u);

  // Transient faults within the retry budget still deliver.
  FaultInjector flaky(one_site_plan("a1.policy", FaultKind::kTransient, 1.0,
                                    /*max=*/2));
  non_rt.set_fault_injector(&flaky);
  EXPECT_TRUE(non_rt.push_a1_policy(near_rt, pol));
  EXPECT_EQ(near_rt.policies().size(), 2u);
  EXPECT_EQ(non_rt.policies_failed(), 0u);
}

TEST_F(NonRtFaultTest, RAppCrashInjectionIsContained) {
  oran::NonRtRic ric(&rbac_, &svc_, 12);
  FakeO1 o1;
  ric.connect_o1(&o1);
  auto app = std::make_shared<apps::PowerSavingRApp>(
      apps::make_power_saving_cnn({1, 12, 9}, 6, 21));
  const std::string id = onboard("ps");
  ASSERT_TRUE(ric.register_rapp(app, id, 10));
  FaultInjector inj(
      one_site_plan("rapp.dispatch", FaultKind::kCrash, 1.0, /*max=*/2));
  ric.set_fault_injector(&inj);
  for (int i = 0; i < 4; ++i) ric.step();
  EXPECT_EQ(ric.stats_of(id).dispatches, 4u);
  EXPECT_EQ(ric.stats_of(id).faults, 2u);
  EXPECT_EQ(ric.periods_run(), 4u);  // the platform never went down
}

// ------------------------------------------------- closed-loop determinism

struct LoopEndState {
  std::uint64_t controls = 0;
  std::uint64_t predictions = 0;
  std::uint64_t failsafes = 0;
  std::uint64_t faults = 0;
  std::uint64_t breaker_opens = 0;
  std::string injector_stats;

  bool operator==(const LoopEndState& o) const {
    return controls == o.controls && predictions == o.predictions &&
           failsafes == o.failsafes && faults == o.faults &&
           breaker_opens == o.breaker_opens &&
           injector_stats == o.injector_stats;
  }
};

TEST_F(RicFaultTest, ClosedLoopSameSeedSameEndState) {
  auto run = [&] {
    oran::NearRtRic ric(&rbac_, &svc_);
    FakeE2Node node;
    ric.connect_e2(&node);
    FaultInjector inj(fault::default_chaos_plan());
    ric.set_fault_injector(&inj);
    auto app = std::make_shared<apps::IcXApp>(
        tiny_ic_model(), oran::IndicationKind::kKpm, 13);
    const std::string id = onboard("ic");
    EXPECT_TRUE(ric.register_xapp(app, id, 10));
    for (std::uint64_t t = 0; t < 300; ++t)
      ric.deliver_indication(kpm_indication(t % 2 == 0 ? 0.1f : 0.9f, t));
    LoopEndState s;
    s.controls = node.controls.size();
    s.predictions = app->predictions_made();
    s.failsafes = app->failsafe_controls();
    s.faults = ric.stats_of(id).faults;
    s.breaker_opens = ric.breaker_opens(id);
    s.injector_stats = inj.stats_json();
    return s;
  };
  const LoopEndState a = run();
  const LoopEndState b = run();
  EXPECT_TRUE(a == b) << "chaos runs with the same seed must replay";
  EXPECT_GT(a.faults, 0u) << "the default chaos plan must actually bite";
}

}  // namespace
}  // namespace orev
