#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "test_helpers.hpp"

namespace orev::data {
namespace {

Dataset small(int n0, int n1) {
  Dataset d;
  d.num_classes = 2;
  d.x = nn::Tensor({n0 + n1, 3});
  for (int i = 0; i < n0 + n1; ++i) {
    for (int j = 0; j < 3; ++j) d.x.at2(i, j) = static_cast<float>(i * 3 + j);
    d.y.push_back(i < n0 ? 0 : 1);
  }
  return d;
}

TEST(Dataset, CheckValidatesLabels) {
  Dataset d = small(2, 2);
  EXPECT_NO_THROW(d.check());
  d.y[0] = 5;
  EXPECT_THROW(d.check(), CheckError);
}

TEST(Dataset, CheckValidatesCounts) {
  Dataset d = small(2, 2);
  d.y.pop_back();
  EXPECT_THROW(d.check(), CheckError);
}

TEST(Dataset, SampleShapeExcludesBatch) {
  EXPECT_EQ(small(1, 1).sample_shape(), (nn::Shape{3}));
}

TEST(Dataset, ClassCounts) {
  const auto counts = small(3, 5).class_counts();
  EXPECT_EQ(counts.at(0), 3);
  EXPECT_EQ(counts.at(1), 5);
}

TEST(Dataset, SubsetPreservesRows) {
  const Dataset d = small(2, 2);
  const Dataset s = d.subset({3, 0});
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.y[0], 1);
  EXPECT_EQ(s.y[1], 0);
  EXPECT_EQ(s.x.at2(0, 0), d.x.at2(3, 0));
  EXPECT_EQ(s.x.at2(1, 2), d.x.at2(0, 2));
}

TEST(Dataset, SubsetRejectsOutOfRange) {
  EXPECT_THROW(small(1, 1).subset({5}), CheckError);
}

TEST(Dataset, TakeClampsToSize) {
  EXPECT_EQ(small(2, 2).take(100).size(), 4);
  EXPECT_EQ(small(2, 2).take(2).size(), 2);
}

TEST(Dataset, ConcatStacksRows) {
  const Dataset a = small(1, 1);
  const Dataset b = small(2, 0);
  const Dataset c = Dataset::concat(a, b);
  EXPECT_EQ(c.size(), 4);
  EXPECT_EQ(c.y, (std::vector<int>{0, 1, 0, 0}));
  EXPECT_EQ(c.x.at2(2, 0), b.x.at2(0, 0));
}

TEST(Dataset, ConcatRejectsMismatchedShapes) {
  Dataset a = small(1, 1);
  Dataset b;
  b.num_classes = 2;
  b.x = nn::Tensor({1, 4});
  b.y = {0};
  EXPECT_THROW(Dataset::concat(a, b), CheckError);
}

TEST(StratifiedSplit, PreservesClassProportions) {
  // 80/40 class balance must survive the split on both sides.
  Dataset d = small(80, 40);
  Rng rng(1);
  const Split s = stratified_split(d, 0.75, rng);
  EXPECT_EQ(s.train.size(), 90);
  EXPECT_EQ(s.test.size(), 30);
  EXPECT_EQ(s.train.class_counts().at(0), 60);
  EXPECT_EQ(s.train.class_counts().at(1), 30);
  EXPECT_EQ(s.test.class_counts().at(0), 20);
  EXPECT_EQ(s.test.class_counts().at(1), 10);
}

TEST(StratifiedSplit, CoversEverySampleExactlyOnce) {
  Dataset d = small(10, 6);
  Rng rng(2);
  const Split s = stratified_split(d, 0.5, rng);
  EXPECT_EQ(s.train.size() + s.test.size(), d.size());
  // Row "fingerprints" (first feature is unique per row) must partition.
  std::vector<float> seen;
  for (int i = 0; i < s.train.size(); ++i) seen.push_back(s.train.x.at2(i, 0));
  for (int i = 0; i < s.test.size(); ++i) seen.push_back(s.test.x.at2(i, 0));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < d.size(); ++i)
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], static_cast<float>(i * 3));
}

TEST(StratifiedSplit, RejectsDegenerateFractions) {
  Dataset d = small(4, 4);
  Rng rng(3);
  EXPECT_THROW(stratified_split(d, 0.0, rng), CheckError);
  EXPECT_THROW(stratified_split(d, 1.0, rng), CheckError);
}

TEST(StratifiedSplit, DeterministicGivenSeed) {
  Dataset d = small(20, 20);
  Rng a(7), b(7);
  const Split sa = stratified_split(d, 0.5, a);
  const Split sb = stratified_split(d, 0.5, b);
  for (int i = 0; i < sa.train.size(); ++i)
    EXPECT_EQ(sa.train.x.at2(i, 0), sb.train.x.at2(i, 0));
}

class StratifiedSplitFractions : public ::testing::TestWithParam<double> {};

TEST_P(StratifiedSplitFractions, ProportionHoldsAcrossFractions) {
  Dataset d = small(60, 30);
  Rng rng(4);
  const Split s = stratified_split(d, GetParam(), rng);
  // Class ratio 2:1 must hold on both sides (integer rounding ±1).
  const auto tc = s.train.class_counts();
  const auto vc = s.test.class_counts();
  EXPECT_NEAR(static_cast<double>(tc.at(0)) / tc.at(1), 2.0, 0.25);
  EXPECT_NEAR(static_cast<double>(vc.at(0)) / vc.at(1), 2.0, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Fractions, StratifiedSplitFractions,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(MinMax, ComputesGlobalRange) {
  nn::Tensor x({2, 2}, std::vector<float>{-1, 0, 3, 2});
  const MinMax mm = minmax_of(x);
  EXPECT_EQ(mm.lo, -1.0f);
  EXPECT_EQ(mm.hi, 3.0f);
}

TEST(MinMax, NormalisesToUnitInterval) {
  nn::Tensor x({1, 3}, std::vector<float>{-1, 1, 3});
  normalize_minmax(x, MinMax{-1.0f, 3.0f});
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[1], 0.5f);
  EXPECT_FLOAT_EQ(x[2], 1.0f);
}

TEST(MinMax, DegenerateRangeIsNoop) {
  nn::Tensor x({1, 2}, std::vector<float>{5, 5});
  normalize_minmax(x, MinMax{5.0f, 5.0f});
  EXPECT_EQ(x[0], 5.0f);
}

}  // namespace
}  // namespace orev::data
