#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"
#include "util/stats.hpp"

namespace orev {
namespace {

// ------------------------------------------------------------------ check

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(OREV_CHECK(1 + 1 == 2, "math"));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(OREV_CHECK(false, "boom"), CheckError);
}

TEST(Check, MessageContainsExpressionAndContext) {
  try {
    OREV_CHECK(2 > 3, "custom context");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

// ----------------------------------------------------------------- sha256

// NIST FIPS 180-4 test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(Sha256::hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                        "nopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(Sha256::to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(Sha256::to_hex(h.finish()), Sha256::hex("hello world"));
}

TEST(Sha256, ExactBlockBoundary) {
  const std::string block(64, 'x');
  Sha256 h;
  h.update(block);
  // Should equal the one-shot digest of the same content.
  EXPECT_EQ(Sha256::to_hex(h.finish()), Sha256::hex(block));
}

TEST(Sha256, DifferentInputsDiffer) {
  EXPECT_NE(Sha256::hex("a"), Sha256::hex("b"));
}

TEST(Sha256, UpdateAfterFinishThrows) {
  Sha256 h;
  h.update("data");
  h.finish();
  EXPECT_THROW(h.update("more"), CheckError);
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update("first");
  h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(Sha256::to_hex(h.finish()), Sha256::hex("abc"));
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    if (a.uniform() != b.uniform()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformWithinBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = r.uniform(-2.0f, 5.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasApproxMoments) {
  Rng r(5);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.normal(2.0f, 3.0f);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, InvertedBoundsThrow) {
  Rng r(6);
  EXPECT_THROW(r.uniform(1.0f, 0.0f), CheckError);
  EXPECT_THROW(r.uniform_int(5, 2), CheckError);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.fork();
  // Child stream should not replay the parent's next values.
  Rng b(7);
  b.fork();
  EXPECT_EQ(a.uniform(), b.uniform());  // parents stay in sync
  (void)child;
}

TEST(Rng, ShuffleKeepsElements) {
  Rng r(8);
  std::vector<int> v = {1, 2, 3, 4, 5};
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

// ------------------------------------------------------------------ stats

TEST(Stats, SummaryOfKnownSample) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummaryEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(summarize({1.0, 2.0, 3.0, 4.0}).median, 2.5);
}

TEST(Stats, PercentileEndpointsAndMiddle) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile({}, 50.0), CheckError);
  EXPECT_THROW(percentile({1.0}, 101.0), CheckError);
}

TEST(Stats, CdfMonotoneAndBounded) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(99.0), 1.0);
}

TEST(Stats, CdfTableSpansRange) {
  EmpiricalCdf cdf({0.0, 10.0});
  const auto table = cdf.table(11);
  ASSERT_EQ(table.size(), 11u);
  EXPECT_DOUBLE_EQ(table.front().first, 0.0);
  EXPECT_DOUBLE_EQ(table.back().first, 10.0);
  EXPECT_DOUBLE_EQ(table.back().second, 1.0);
}

TEST(Stats, CdfEmptyThrows) {
  EXPECT_THROW(EmpiricalCdf({}), CheckError);
}

// -------------------------------------------------------------------- csv

TEST(Csv, PlainRows) {
  CsvWriter w;
  w.header({"a", "b"});
  w.row(1, 2.5);
  EXPECT_EQ(w.str(), "a,b\n1,2.5\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter w;
  w.row(std::string("hello, world"), std::string("quote\"inside"));
  EXPECT_EQ(w.str(), "\"hello, world\",\"quote\"\"inside\"\n");
}

TEST(Csv, MixedTypes) {
  CsvWriter w;
  w.row("name", 42, 3.14);
  EXPECT_EQ(w.str(), "name,42,3.14\n");
}

}  // namespace
}  // namespace orev
