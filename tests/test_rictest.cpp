// RICTest emulator tests: Fig. 10 topology invariants, UE redistribution
#include <set>
// on capacity-cell shutdown (the Fig. 7 mechanism), PM report semantics,
// city-trace structure, the power-saving oracle, and the window/history
// permutation round trip the rApp attack depends on.
#include <gtest/gtest.h>

#include "rictest/dataset.hpp"
#include "rictest/emulator.hpp"

namespace orev::rictest {
namespace {

// --------------------------------------------------------------- topology

TEST(Topology, SectorOfEveryCell) {
  EXPECT_EQ(sector_of(1), 0);
  EXPECT_EQ(sector_of(2), 1);
  EXPECT_EQ(sector_of(3), 2);
  EXPECT_EQ(sector_of(4), 0);
  EXPECT_EQ(sector_of(7), 0);
  EXPECT_EQ(sector_of(5), 1);
  EXPECT_EQ(sector_of(9), 2);
  EXPECT_THROW(sector_of(0), CheckError);
  EXPECT_THROW(sector_of(10), CheckError);
}

TEST(Topology, SectorCellsMatchFig10) {
  // Fig. 10: coverage 1 contains capacity {4, 7}, 2 → {5, 8}, 3 → {6, 9}.
  const Sector s0 = sector_cells(0);
  EXPECT_EQ(s0.coverage, 1);
  EXPECT_EQ(s0.capacity1, 4);
  EXPECT_EQ(s0.capacity2, 7);
  const Sector s2 = sector_cells(2);
  EXPECT_EQ(s2.coverage, 3);
  EXPECT_EQ(s2.capacity1, 6);
  EXPECT_EQ(s2.capacity2, 9);
}

TEST(Topology, SectorMembershipConsistent) {
  for (int s = 0; s < kNumSectors; ++s) {
    const Sector sc = sector_cells(s);
    EXPECT_EQ(sector_of(sc.coverage), s);
    EXPECT_EQ(sector_of(sc.capacity1), s);
    EXPECT_EQ(sector_of(sc.capacity2), s);
  }
}

// --------------------------------------------------------------- emulator

TEST(Emulator, AllCellsStartActive) {
  Emulator em(EmulatorConfig{});
  for (const int id : all_cell_ids()) EXPECT_TRUE(em.cell_active(id));
}

TEST(Emulator, PmReportCoversAllCells) {
  Emulator em(EmulatorConfig{});
  em.advance();
  const oran::PmReport pm = em.collect_pm();
  EXPECT_EQ(pm.cells.size(), 9u);
  for (const auto& [id, cell] : pm.cells) {
    EXPECT_GE(cell.prb_util_dl, 0.0);
    EXPECT_LE(cell.prb_util_dl, 100.0);
  }
}

TEST(Emulator, CoverageCellsCannotBeDeactivated) {
  Emulator em(EmulatorConfig{});
  EXPECT_FALSE(em.set_cell_state(1, false));
  EXPECT_TRUE(em.cell_active(1));
  EXPECT_TRUE(em.set_cell_state(4, false));
  EXPECT_FALSE(em.cell_active(4));
}

TEST(Emulator, UnknownCellRejected) {
  Emulator em(EmulatorConfig{});
  EXPECT_FALSE(em.set_cell_state(42, false));
}

TEST(Emulator, DeactivationShiftsUesToCoverage) {
  EmulatorConfig cfg;
  Emulator em(cfg);
  // Mid-day: bell-profile capacity cells are loaded.
  for (int i = 0; i < cfg.periods_per_day / 2; ++i) em.advance();
  const int cap_ues = em.attached_ues(4);
  const int cov_before = em.attached_ues(1);
  ASSERT_GT(cap_ues, 0);
  em.set_cell_state(4, false);
  EXPECT_EQ(em.attached_ues(1), cov_before + cap_ues);
  EXPECT_EQ(em.attached_ues(4), 0);
}

TEST(Emulator, ReactivationRestoresDistribution) {
  EmulatorConfig cfg;
  Emulator em(cfg);
  for (int i = 0; i < cfg.periods_per_day / 2; ++i) em.advance();
  const int cov_before = em.attached_ues(1);
  em.set_cell_state(4, false);
  em.set_cell_state(4, true);
  EXPECT_EQ(em.attached_ues(1), cov_before);
}

TEST(Emulator, PeakShutdownCollapsesThroughput) {
  // The Fig. 7 effect: killing both capacity cells of one sector at the
  // daily peak overloads the coverage cell and drops network throughput.
  EmulatorConfig cfg;
  Emulator em(cfg);
  for (int i = 0; i < cfg.periods_per_day / 2; ++i) em.advance();
  const double before = em.network_throughput_mbps();
  em.set_cell_state(4, false);
  em.set_cell_state(7, false);
  const double after = em.network_throughput_mbps();
  EXPECT_LT(after, before * 0.9);
  // The sector's coverage cell must now be saturated.
  const oran::PmReport pm = em.collect_pm();
  EXPECT_NEAR(pm.cells.at(1).prb_util_dl, 100.0, 1e-9);
}

TEST(Emulator, OffPeakShutdownIsCheap) {
  // At night the capacity cells are nearly empty — switching them off
  // barely moves throughput (which is why power saving works at all).
  EmulatorConfig cfg;
  Emulator em(cfg);
  em.advance();  // first period of the day, bell profile near zero
  const double before = em.network_throughput_mbps();
  em.set_cell_state(4, false);  // bell-profile cell, idle at day start
  const double after = em.network_throughput_mbps();
  EXPECT_GT(after, before * 0.9);
}

TEST(Emulator, UeCountsWithinConfiguredPeak) {
  EmulatorConfig cfg;
  Emulator em(cfg);
  for (int i = 0; i < 2 * cfg.periods_per_day; ++i) {
    em.advance();
    for (const int id : {4, 5, 6, 7, 8, 9}) {
      EXPECT_GE(em.attached_ues(id), 0);
      EXPECT_LE(em.attached_ues(id), cfg.capacity_ue_peak);
    }
  }
}

TEST(Emulator, InactiveCellServesNothingButReportsOfferedLoad) {
  EmulatorConfig cfg;
  Emulator em(cfg);
  for (int i = 0; i < cfg.periods_per_day / 2; ++i) em.advance();  // peak
  const double active_prb = em.collect_pm().cells.at(4).prb_util_dl;
  em.set_cell_state(4, false);
  const oran::PmReport pm = em.collect_pm();
  EXPECT_FALSE(pm.cells.at(4).active);
  EXPECT_EQ(pm.cells.at(4).dl_throughput_mbps, 0.0);
  EXPECT_EQ(pm.cells.at(4).conn_mean, 0.0);
  // The offered-load estimate stays visible so policies can re-activate.
  EXPECT_NEAR(pm.cells.at(4).prb_util_dl, active_prb, 1e-9);
}

// ------------------------------------------------------------- city trace

TEST(CityTrace, DimensionsMatchConfig) {
  CityTraceConfig cfg;
  cfg.days = 3;
  cfg.periods_per_day = 96;
  const auto trace = make_city_trace(cfg);
  EXPECT_EQ(trace.size(), 3u * 96u);
}

TEST(CityTrace, ValuesInPrbRange) {
  CityTraceConfig cfg;
  cfg.days = 2;
  for (const auto& row : make_city_trace(cfg)) {
    for (const double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 100.0);
    }
  }
}

TEST(CityTrace, CapacityCellsShowDiurnalSwing) {
  CityTraceConfig cfg;
  cfg.days = 7;
  const auto trace = make_city_trace(cfg);
  // Bell-profile capacity cell 4 (index 3): midday mean >> 3am mean.
  double night = 0.0, noon = 0.0;
  int count = 0;
  for (int d = 0; d < 7; ++d) {
    night += trace[static_cast<std::size_t>(d * 96 + 12)][3];
    noon += trace[static_cast<std::size_t>(d * 96 + 48)][3];
    ++count;
  }
  EXPECT_GT(noon / count, night / count + 15.0);
}

TEST(CityTrace, WeekendLighterThanWeekday) {
  CityTraceConfig cfg;
  cfg.days = 28;
  cfg.noise_sigma = 1.0;  // keep noise from masking the weekly pattern
  const auto trace = make_city_trace(cfg);
  double weekday = 0.0, weekend = 0.0;
  int wd = 0, we = 0;
  for (int d = 0; d < 28; ++d) {
    const double noon = trace[static_cast<std::size_t>(d * 96 + 48)][3];
    if (d % 7 < 5) {
      weekday += noon;
      ++wd;
    } else {
      weekend += noon;
      ++we;
    }
  }
  EXPECT_GT(weekday / wd, weekend / we);
}

// ----------------------------------------------------------------- oracle

nn::Tensor window_with_capacity_levels(double k1, double k2) {
  nn::Tensor w({1, 12, kNumCells});
  for (int t = 0; t < 12; ++t) {
    w[static_cast<std::size_t>(t) * kNumCells + 0] = 0.4f;  // coverage
    w[static_cast<std::size_t>(t) * kNumCells + 1] =
        static_cast<float>(k1 / 100.0);
    w[static_cast<std::size_t>(t) * kNumCells + 2] =
        static_cast<float>(k2 / 100.0);
  }
  return w;
}

struct OracleCase {
  double k1;
  double k2;
  PsAction expected;
};

class OracleRules : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleRules, MapsLoadsToAction) {
  const OracleCase c = GetParam();
  const nn::Tensor w = window_with_capacity_levels(c.k1, c.k2);
  EXPECT_EQ(oracle_action(w, 55.0, 30.0), c.expected)
      << "k1=" << c.k1 << " k2=" << c.k2;
}

INSTANTIATE_TEST_SUITE_P(
    AllSixActions, OracleRules,
    ::testing::Values(
        OracleCase{80.0, 80.0, PsAction::kActivateBoth},
        OracleCase{80.0, 40.0, PsAction::kActivateCap1},
        OracleCase{40.0, 80.0, PsAction::kActivateCap2},
        OracleCase{10.0, 10.0, PsAction::kDeactivateBoth},
        OracleCase{10.0, 40.0, PsAction::kDeactivateCap1},
        OracleCase{40.0, 10.0, PsAction::kDeactivateCap2},
        // Mid-range tie-break: the lighter cell powers down.
        OracleCase{35.0, 50.0, PsAction::kDeactivateCap1},
        OracleCase{50.0, 35.0, PsAction::kDeactivateCap2}));

TEST(Oracle, UsesOnlyRecentSteps) {
  // Early-window values must not affect the decision (mean of last 3).
  nn::Tensor w = window_with_capacity_levels(10.0, 10.0);
  for (int t = 0; t < 9; ++t) {
    w[static_cast<std::size_t>(t) * kNumCells + 1] = 0.99f;
    w[static_cast<std::size_t>(t) * kNumCells + 2] = 0.99f;
  }
  EXPECT_EQ(oracle_action(w, 55.0, 30.0), PsAction::kDeactivateBoth);
}

TEST(Oracle, RejectsWrongShape) {
  EXPECT_THROW(oracle_action(nn::Tensor({1, 12, 5}), 55.0, 30.0),
               CheckError);
}

// ------------------------------------------------ windows & perturbations

TEST(WindowFeatures, ServingColumnsFirst) {
  CityTraceConfig cfg;
  cfg.days = 1;
  const auto trace = make_city_trace(cfg);
  const int t = 20;
  const nn::Tensor w = window_features(trace, t, 12, /*sector=*/1);
  // Sector 1 serves coverage 2 (idx 1), capacity 5 (idx 4), 8 (idx 7).
  const auto& last = trace[static_cast<std::size_t>(t)];
  EXPECT_NEAR(w[11 * kNumCells + 0], last[1] / 100.0, 1e-6);
  EXPECT_NEAR(w[11 * kNumCells + 1], last[4] / 100.0, 1e-6);
  EXPECT_NEAR(w[11 * kNumCells + 2], last[7] / 100.0, 1e-6);
}

TEST(WindowFeatures, BoundsChecked) {
  CityTraceConfig cfg;
  cfg.days = 1;
  const auto trace = make_city_trace(cfg);
  EXPECT_THROW(window_features(trace, 5, 12, 0), CheckError);
  EXPECT_THROW(window_features(trace, static_cast<int>(trace.size()), 12, 0),
               CheckError);
}

TEST(PowerSavingDataset, CoversAllClasses) {
  CityTraceConfig cfg;
  cfg.days = 10;
  const data::Dataset d = make_power_saving_dataset(cfg, 12, 4);
  d.check();
  EXPECT_EQ(d.num_classes, kPsActionCount);
  const auto counts = d.class_counts();
  for (int c = 0; c < kPsActionCount; ++c) {
    EXPECT_GT(counts.count(c), 0u) << "missing action class " << c;
  }
}

TEST(PowerSavingDataset, LabelsAgreeWithOracle) {
  CityTraceConfig cfg;
  cfg.days = 2;
  const data::Dataset d = make_power_saving_dataset(cfg, 12, 16);
  for (int i = 0; i < std::min(d.size(), 20); ++i) {
    const nn::Tensor w = d.sample(i);
    EXPECT_EQ(static_cast<int>(oracle_action(w, cfg.busy_threshold,
                                             cfg.idle_threshold)),
              d.y[static_cast<std::size_t>(i)]);
  }
}

TEST(SectorWindow, HistoryPermutationRoundTrip) {
  // sector_window_from_history must be the inverse of
  // apply_perturbation_to_history's column mapping.
  nn::Tensor history({12, kNumCells});
  Rng rng(5);
  for (std::size_t i = 0; i < history.numel(); ++i)
    history[i] = rng.uniform(10.0f, 90.0f);

  const nn::Tensor before = sector_window_from_history(history, 2);
  nn::Tensor delta({1, 12, kNumCells});
  delta[0] = 0.1f;  // +10 PRB points on the serving coverage, first step
  nn::Tensor perturbed = history;
  apply_perturbation_to_history(perturbed, delta, 2);
  const nn::Tensor after = sector_window_from_history(perturbed, 2);
  EXPECT_NEAR(after[0] - before[0], 0.1f, 1e-5f);
  // All other positions unchanged.
  for (std::size_t i = 1; i < after.numel(); ++i)
    EXPECT_NEAR(after[i], before[i], 1e-6f);
}

TEST(SectorWindow, PerturbationClampedToPrbRange) {
  nn::Tensor history({12, kNumCells}, 95.0f);
  nn::Tensor delta({1, 12, kNumCells}, 0.5f);  // +50 points everywhere
  apply_perturbation_to_history(history, delta, 0);
  for (std::size_t i = 0; i < history.numel(); ++i)
    EXPECT_LE(history[i], 100.0f);
}

TEST(PsActionNames, AllDistinct) {
  std::set<std::string> names;
  for (int a = 0; a < kPsActionCount; ++a)
    names.insert(ps_action_name(static_cast<PsAction>(a)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kPsActionCount));
}

}  // namespace
}  // namespace orev::rictest
