// Quickstart: the full black-box evasion pipeline in one file.
//
//   1. synthesise the spectrogram corpus the IC xApp operates on;
//   2. train the victim (the Spectrogram IC xApp's Base CNN);
//   3. clone it black-box with the Model Cloning Algorithm (Algorithm 1)
//      using only observed inputs + the victim's hard predictions;
//   4. precompute a universal adversarial perturbation (Algorithm 2) on
//      the surrogate;
//   5. apply the UAP to held-out samples and measure the damage on the
//      *victim*: accuracy collapse at a small average perturbation
//      distance (APD).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "apps/model_zoo.hpp"
#include "attack/clone.hpp"
#include "attack/metrics.hpp"
#include "attack/runner.hpp"
#include "attack/uap.hpp"
#include "data/dataset.hpp"
#include "ran/datasets.hpp"

using namespace orev;

int main() {
  // ---- 1. Dataset: SOI-only vs SOI+CWI spectrograms (§A.5).
  ran::SpectrogramConfig scfg;
  scfg.freq_bins = 24;   // benchmark-scale spectrograms (paper: 128×128)
  scfg.time_frames = 24;
  data::Dataset corpus = ran::make_spectrogram_dataset(scfg, /*per_class=*/180,
                                                       /*seed=*/4242);
  Rng rng(1);
  data::Split split = data::stratified_split(corpus, 0.7, rng);
  std::printf("dataset: %d train / %d test spectrograms\n",
              split.train.size(), split.test.size());

  // ---- 2. Victim: the IC xApp's CNN.
  nn::Model victim =
      apps::make_base_cnn(corpus.sample_shape(), 2, /*seed=*/11);
  nn::TrainConfig tcfg;
  tcfg.max_epochs = 12;
  tcfg.learning_rate = 2e-3f;
  nn::Trainer trainer(tcfg);
  trainer.fit(victim, split.train.x, split.train.y, split.test.x,
              split.test.y);
  const nn::EvalResult clean =
      nn::evaluate(victim, split.test.x, split.test.y);
  std::printf("victim clean accuracy: %.3f\n", clean.accuracy);

  // ---- 3. Black-box cloning (Algorithm 1): only (input, prediction)
  // pairs cross the boundary — never weights, never ground truth.
  data::Dataset d_clone =
      attack::collect_clone_dataset(victim, split.train.x);
  attack::CloneConfig ccfg;
  ccfg.train.max_epochs = 10;
  ccfg.train.learning_rate = 2e-3f;
  const std::vector<attack::Candidate> candidates = {
      {"1L", [&](std::uint64_t s) {
         return apps::make_one_layer(corpus.sample_shape(), 2, s);
       }},
      {"DenseNet", [&](std::uint64_t s) {
         return apps::make_mini_densenet(corpus.sample_shape(), 2, s);
       }},
  };
  attack::CloneReport clone = attack::clone_model(d_clone, candidates, ccfg);
  std::printf("surrogate: %s, cloning accuracy %.3f\n",
              clone.best_arch.c_str(), clone.cloning_accuracy);

  // ---- 4. UAP (Algorithm 2) on the surrogate. Seeded with the
  // observations the victim labelled "interference" (hiding the jammer is
  // the operationally damaging direction) and generated with the
  // transfer-robustness criterion — see DESIGN.md / EXPERIMENTS.md.
  std::vector<int> jammed;
  for (int i = 0; i < d_clone.size(); ++i)
    if (d_clone.y[static_cast<std::size_t>(i)] == ran::kLabelInterference)
      jammed.push_back(i);
  attack::UapConfig ucfg;
  ucfg.eps = 0.5f;
  ucfg.target_fooling = 0.95;
  ucfg.min_confidence = 0.9f;
  ucfg.robust_draws = 3;
  ucfg.robust_noise = 0.15f;
  attack::DeepFool inner(30, 0.1f);
  const attack::UapResult uap = attack::generate_uap(
      clone.model, d_clone.subset(jammed).x, inner, ucfg);
  std::printf("UAP: fooling rate on surrogate %.3f after %d passes\n",
              uap.achieved_fooling, uap.passes);

  // ---- 5. Transfer to the victim.
  const nn::Tensor x_adv =
      attack::apply_uap(split.test.x, uap.perturbation);
  const attack::AttackMetrics m =
      attack::evaluate_attack(victim, split.test.x, x_adv, split.test.y);
  std::printf("victim under UAP: accuracy %.3f (was %.3f), APD %.3f\n",
              m.accuracy, clean.accuracy, m.apd);
  std::printf("attack %s\n",
              m.accuracy < clean.accuracy - 0.15
                  ? "SUCCEEDED (substantial victim degradation; run "
                    "bench_table1 for the full sweep)"
                  : "had limited effect at this epsilon");
  return 0;
}
