// Non-RT RIC end-to-end demo: the targeted-UAP attack on the Power-Saving
// rApp over the RICTest-style emulator (§6 / Fig. 7).
//
//   1. Train the victim rApp CNN on the synthetic city-scale PRB corpus.
//   2. Onboard the victim and a malicious "PM aggregator" rApp whose role
//      carries PM write access (the misconfiguration).
//   3. The attacker observes one emulated day of (history, decision)
//      pairs through the SDL, clones the victim, and builds a targeted
//      UAP towards "deactivate both capacity cells".
//   4. Attack live: at the traffic peak both of sector 1's capacity cells
//      go dark, their users crowd onto the coverage cell, and network
//      throughput collapses.
//
// Build & run:  ./build/examples/power_saving_attack
#include <cstdio>

#include "apps/malicious_rapp.hpp"
#include "apps/model_zoo.hpp"
#include "apps/power_saving_rapp.hpp"
#include "attack/clone.hpp"
#include "attack/uap.hpp"
#include "oran/non_rt_ric.hpp"
#include "rictest/dataset.hpp"
#include "rictest/emulator.hpp"

using namespace orev;

int main() {
  std::printf("— Training the Power-Saving rApp model —\n");
  rictest::CityTraceConfig tcfg;
  tcfg.days = 16;
  data::Dataset corpus = rictest::make_power_saving_dataset(tcfg, 12, 4);
  Rng rng(7);
  data::Split split = data::stratified_split(corpus, 0.7, rng);
  nn::Model victim_model =
      apps::make_power_saving_cnn(corpus.sample_shape(), 6, 1);
  nn::TrainConfig train_cfg;
  train_cfg.max_epochs = 35;
  train_cfg.learning_rate = 5e-3f;
  nn::Trainer(train_cfg).fit(victim_model, split.train.x, split.train.y,
                             split.test.x, split.test.y);
  std::printf("  clean accuracy: %.3f over %d classes\n",
              nn::evaluate(victim_model, split.test.x, split.test.y).accuracy,
              corpus.num_classes);

  std::printf("\n— Platform setup (SMO / Non-RT RIC / emulator) —\n");
  oran::Rbac rbac;
  oran::Operator op("operator-1", "signing-secret");
  oran::OnboardingService svc(&op, &rbac);
  rbac.define_role("ps-rapp", {oran::Permission{"pm", true, false},
                               oran::Permission{"rapp-decisions", true, true},
                               oran::Permission{"o1/cell-control", false,
                                                true}});
  rbac.define_role("pm-aggregator",
                   {oran::Permission{"pm", true, true},
                    oran::Permission{"rapp-decisions", true, false}});
  auto onboard = [&](const std::string& name, const std::string& role) {
    oran::AppDescriptor d;
    d.name = name;
    d.version = "1.0";
    d.vendor = "vendor-y";
    d.payload = "rapp-package";
    d.type = oran::AppType::kRApp;
    d.requested_role = role;
    return svc.onboard(op.package(d)).app_id;
  };

  oran::NonRtRic ric(&rbac, &svc, /*history_window=*/12);
  rictest::EmulatorConfig ecfg;
  rictest::Emulator emulator(ecfg);
  ric.connect_o1(&emulator);

  auto victim =
      std::make_shared<apps::PowerSavingRApp>(std::move(victim_model));
  auto attacker = std::make_shared<apps::MaliciousRApp>();
  ric.register_rapp(attacker, onboard("pm-helper", "pm-aggregator"), 1);
  ric.register_rapp(victim, onboard("power-saving", "ps-rapp"), 10);

  std::printf("\n— Phase 1: one observed day (PM collection every 15 min) "
              "—\n");
  for (int t = 0; t < ecfg.periods_per_day; ++t) {
    emulator.advance();
    ric.step();
  }
  std::printf("  observed %zu (history, decision) pairs\n",
              attacker->observed_inputs().size());

  std::printf("\n— Phase 2: clone + targeted UAP (target: %s) —\n",
              rictest::ps_action_name(rictest::kMostDisruptiveAction)
                  .c_str());
  const data::Dataset d_clone = attack::clone_dataset_from_observations(
      attacker->observed_inputs(), attacker->observed_labels(), 6);
  attack::CloneConfig ccfg;
  ccfg.train.max_epochs = 30;
  ccfg.train.learning_rate = 5e-3f;
  attack::CloneReport clone = attack::clone_model(
      d_clone,
      {{"1L",
        [&](std::uint64_t s) {
          return apps::make_one_layer(corpus.sample_shape(), 6, s);
        }}},
      ccfg);
  std::printf("  surrogate cloning accuracy: %.3f\n",
              clone.cloning_accuracy);

  attack::UapConfig uapc;
  uapc.eps = 0.7f;
  uapc.target_fooling = 0.95;
  uapc.max_passes = 6;
  uapc.min_confidence = 0.8f;
  uapc.robust_draws = 3;
  uapc.robust_noise = 0.1f;
  attack::DeepFool inner(30, 0.1f);
  const attack::UapResult tup = attack::generate_targeted_uap(
      clone.model, split.train.take(200).x, inner,
      static_cast<int>(rictest::kMostDisruptiveAction), uapc);
  std::printf("  TUP ready, ||u||_inf = %.2f\n", tup.perturbation.norm_inf());

  std::printf("\n— Phase 3: attacked day —\n");
  attacker->arm_targeted_uap(tup.perturbation);
  double min_tput = 1e18, max_tput = 0.0;
  bool killed_both = false;
  for (int t = 0; t < ecfg.periods_per_day; ++t) {
    emulator.advance();
    ric.step();
    const double tput = emulator.network_throughput_mbps();
    min_tput = std::min(min_tput, tput);
    max_tput = std::max(max_tput, tput);
    const bool both_off =
        !emulator.cell_active(4) && !emulator.cell_active(7);
    if (both_off && t > ecfg.periods_per_day / 3 &&
        t < 2 * ecfg.periods_per_day / 3) {
      killed_both = true;
      if (t % 8 == 0) {
        std::printf("  period %3d: sector-1 capacity cells OFF at load, "
                    "network %.0f Mbps (coverage cell saturated: %s)\n",
                    t, tput,
                    emulator.collect_pm().cells.at(1).prb_util_dl > 99.0
                        ? "yes"
                        : "no");
      }
    }
  }
  std::printf("\n  perturbations injected: %llu\n",
              static_cast<unsigned long long>(
                  attacker->perturbations_applied()));
  std::printf("  throughput range over the attacked day: %.0f – %.0f Mbps\n",
              min_tput, max_tput);
  std::printf("  attack %s: both capacity cells of sector 1 were %s during "
              "the mid-day peak\n",
              killed_both ? "SUCCEEDED" : "did not fully land",
              killed_both ? "forced off" : "not simultaneously off");
  return 0;
}
