// Defense-hardening walkthrough (§7): take the Spectrogram IC xApp victim,
// measure the black-box UAP damage, then rebuild the victim twice — once
// with defensive distillation, once with adversarial training — and
// re-run the *entire black-box pipeline* (the attacker re-clones whatever
// model is deployed) against each.
//
// Expected outcome, matching the paper: distillation barely moves the
// needle (the cloning step sidesteps gradient masking), adversarial
// training raises the perturbation budget the attacker needs, but a large
// enough ε still wins.
//
// Build & run:  ./build/examples/defense_hardening
#include <cstdio>

#include "apps/model_zoo.hpp"
#include "attack/clone.hpp"
#include "attack/metrics.hpp"
#include "attack/uap.hpp"
#include "defense/defenses.hpp"
#include "ran/datasets.hpp"

using namespace orev;

namespace {

/// Full black-box pipeline against a deployed victim: clone → UAP → apply.
attack::AttackMetrics black_box_uap(nn::Model& victim,
                                    const data::Dataset& observe_set,
                                    const data::Dataset& eval_set,
                                    const nn::Shape& input_shape,
                                    float eps) {
  const data::Dataset d_clone =
      attack::collect_clone_dataset(victim, observe_set.x);
  attack::CloneConfig ccfg;
  ccfg.train.max_epochs = 10;
  ccfg.train.learning_rate = 2e-3f;
  attack::CloneReport clone = attack::clone_model(
      d_clone,
      {{"DenseNet",
        [&](std::uint64_t s) {
          return apps::make_mini_densenet(input_shape, 2, s);
        }}},
      ccfg);

  std::vector<int> jammed;
  for (int i = 0; i < d_clone.size(); ++i)
    if (d_clone.y[static_cast<std::size_t>(i)] == ran::kLabelInterference)
      jammed.push_back(i);
  attack::UapConfig ucfg;
  ucfg.eps = eps;
  ucfg.target_fooling = 0.95;
  ucfg.max_passes = 5;
  ucfg.min_confidence = 0.9f;
  ucfg.robust_draws = 3;
  ucfg.robust_noise = 0.15f;
  attack::DeepFool inner(30, 0.1f);
  const attack::UapResult uap = attack::generate_uap(
      clone.model, d_clone.subset(jammed).x, inner, ucfg);

  const nn::Tensor x_adv = attack::apply_uap(eval_set.x, uap.perturbation);
  return attack::evaluate_attack(victim, eval_set.x, x_adv, eval_set.y);
}

nn::Model train_cnn(const data::Dataset& train, const data::Dataset& val,
                    std::uint64_t seed) {
  nn::Model m = apps::make_base_cnn(train.sample_shape(), 2, seed);
  nn::TrainConfig cfg;
  cfg.max_epochs = 12;
  cfg.learning_rate = 2e-3f;
  nn::Trainer(cfg).fit(m, train.x, train.y, val.x, val.y);
  return m;
}

}  // namespace

int main() {
  ran::SpectrogramConfig scfg;
  scfg.freq_bins = 24;
  scfg.time_frames = 24;
  data::Dataset corpus = ran::make_spectrogram_dataset(scfg, 150, 42);
  Rng rng(7);
  data::Split split = data::stratified_split(corpus, 0.7, rng);
  const data::Dataset eval_set = split.test.take(80);

  std::printf("— Baseline victim —\n");
  nn::Model base = train_cnn(split.train, split.test, 1);
  const double clean =
      nn::evaluate(base, split.test.x, split.test.y).accuracy;
  std::printf("  clean accuracy: %.3f\n", clean);

  std::printf("\n— Hardening 1: defensive distillation (T = 10) —\n");
  defense::DistillConfig dcfg;
  dcfg.temperature = 10.0f;
  dcfg.train.max_epochs = 12;
  dcfg.train.learning_rate = 2e-3f;
  nn::Model distilled = defense::distill(
      base,
      [&](std::uint64_t s) {
        return apps::make_base_cnn(corpus.sample_shape(), 2, s);
      },
      split.train, split.test, dcfg);
  std::printf("  distilled clean accuracy: %.3f\n",
              nn::evaluate(distilled, split.test.x, split.test.y).accuracy);

  std::printf("\n— Hardening 2: adversarial training (7 epsilons, attacker's "
              "surrogate) —\n");
  const data::Dataset d_clone_base =
      attack::collect_clone_dataset(base, split.train.x);
  attack::CloneConfig ccfg;
  ccfg.train.max_epochs = 10;
  ccfg.train.learning_rate = 2e-3f;
  attack::CloneReport at_sur = attack::clone_model(
      d_clone_base,
      {{"DenseNet",
        [&](std::uint64_t s) {
          return apps::make_mini_densenet(corpus.sample_shape(), 2, s);
        }}},
      ccfg);
  nn::Model hardened = train_cnn(split.train, split.test, 77);
  defense::AdvTrainConfig acfg;  // paper's 7-ε augmentation schedule
  acfg.train.max_epochs = 8;
  acfg.train.learning_rate = 2e-3f;
  defense::adversarial_training(hardened, split.train, split.test,
                                at_sur.model, acfg);
  std::printf("  hardened clean accuracy: %.3f\n",
              nn::evaluate(hardened, split.test.x, split.test.y).accuracy);

  std::printf("\n— Black-box UAP against all three victims —\n");
  std::printf("%-24s %10s %10s %10s\n", "victim", "eps=0.3", "eps=0.5",
              "APD@0.5");
  struct Row {
    const char* name;
    nn::Model* victim;
  };
  Row rows[] = {{"base", &base},
                {"distilled", &distilled},
                {"adversarially-trained", &hardened}};
  for (Row& r : rows) {
    const attack::AttackMetrics m3 =
        black_box_uap(*r.victim, split.train, eval_set,
                      corpus.sample_shape(), 0.3f);
    const attack::AttackMetrics m5 =
        black_box_uap(*r.victim, split.train, eval_set,
                      corpus.sample_shape(), 0.5f);
    std::printf("%-24s %10.3f %10.3f %10.3f\n", r.name, m3.accuracy,
                m5.accuracy, m5.apd);
  }
  std::printf("\nReading: lower accuracy = stronger attack. Distillation "
              "should track the base\nrow closely; adversarial training "
              "should hold higher accuracy at the same eps.\n");
  return 0;
}
