// Near-RT RIC end-to-end demo: the complete internal-adversary lifecycle
// from §3.1, through the real platform plumbing.
//
//   1. The operator defines roles, signs and onboards three apps: the
//      victim IC xApp, a "KPI processor" whose role is over-permissive
//      (telemetry WRITE — the §2.2.2 misconfiguration), and nothing else.
//   2. The RAN simulator streams spectrogram indications over E2; the
//      platform stores them in the SDL; the victim classifies and steers
//      the RAN (adaptive vs fixed MCS).
//   3. The malicious xApp passively observes (inputs + victim labels),
//      clones the victim with Algorithm 1, precomputes a UAP with
//      Algorithm 2, then rewrites the SDL entries in-window.
//   4. We report the victim's detection rate and the link's BLER before
//      and after, then re-run with a correctly-scoped (read-only) policy
//      to show the attack die at the SDL.
//
// Build & run:  ./build/examples/ic_xapp_attack
#include <cstdio>

#include "apps/ic_xapp.hpp"
#include "apps/malicious_xapp.hpp"
#include "apps/model_zoo.hpp"
#include "attack/clone.hpp"
#include "attack/uap.hpp"
#include "ran/datasets.hpp"
#include "ran/link.hpp"
#include "oran/near_rt_ric.hpp"

using namespace orev;

namespace {

class RanNode : public oran::E2Node {
 public:
  explicit RanNode(ran::UplinkSim* sim) : sim_(sim) {}
  void handle_control(const oran::E2Control& c) override {
    sim_->set_mcs_mode(c.action == oran::ControlAction::kSetAdaptiveMcs
                           ? ran::McsMode::kAdaptive
                           : ran::McsMode::kFixed);
  }
  std::string node_id() const override { return "gnb-1"; }

 private:
  ran::UplinkSim* sim_;
};

struct Stack {
  oran::Rbac rbac;
  oran::Operator op{"operator-1", "signing-secret"};
  oran::OnboardingService svc{&op, &rbac};
  oran::NearRtRic ric{&rbac, &svc, /*control_window_ms=*/1000.0};

  std::string onboard(const std::string& name, const std::string& role) {
    oran::AppDescriptor d;
    d.name = name;
    d.version = "1.0";
    d.vendor = "vendor-x";
    d.payload = "app-package-bytes";
    d.requested_role = role;
    const oran::OnboardResult r = svc.onboard(op.package(d));
    std::printf("  onboarding %-14s → %s (%s)\n", name.c_str(),
                r.accepted ? "accepted" : "REJECTED", r.reason.c_str());
    return r.app_id;
  }
};

double run_phase(oran::NearRtRic& ric, ran::UplinkSim& sim,
                 apps::IcXApp& victim, int ttis, double* mean_bler) {
  const auto det0 = victim.interference_detected();
  const auto n0 = victim.predictions_made();
  double bler = 0.0;
  for (int t = 0; t < ttis; ++t) {
    const ran::KpmRecord k = sim.step();
    bler += k.bler;
    oran::E2Indication ind;
    ind.ran_node_id = "gnb-1";
    ind.tti = static_cast<std::uint64_t>(t);
    ind.kind = oran::IndicationKind::kSpectrogram;
    ind.payload = sim.capture_spectrogram();
    ric.deliver_indication(ind);
  }
  if (mean_bler != nullptr) *mean_bler = bler / ttis;
  return static_cast<double>(victim.interference_detected() - det0) /
         static_cast<double>(victim.predictions_made() - n0);
}

}  // namespace

int main() {
  std::printf("— Training the victim IC xApp model —\n");
  ran::SpectrogramConfig scfg;
  scfg.freq_bins = 24;
  scfg.time_frames = 24;
  data::Dataset corpus = ran::make_spectrogram_dataset(scfg, 150, 42);
  Rng rng(7);
  data::Split split = data::stratified_split(corpus, 0.7, rng);
  nn::Model victim_model = apps::make_base_cnn(corpus.sample_shape(), 2, 1);
  nn::TrainConfig tcfg;
  tcfg.max_epochs = 12;
  tcfg.learning_rate = 2e-3f;
  nn::Trainer(tcfg).fit(victim_model, split.train.x, split.train.y,
                        split.test.x, split.test.y);

  std::printf("\n— Onboarding (operator-signed packages) —\n");
  Stack stack;
  stack.rbac.define_role("ic-xapp",
                         {oran::Permission{"telemetry/*", true, false},
                          oran::Permission{"decisions", true, true},
                          oran::Permission{"e2/control", false, true}});
  // The misconfiguration: a processing app granted telemetry WRITE.
  stack.rbac.define_role("kpi-processor",
                         {oran::Permission{"telemetry/*", true, true},
                          oran::Permission{"decisions", true, false}});
  const std::string victim_id = stack.onboard("ic-xapp", "ic-xapp");
  const std::string attacker_id = stack.onboard("kpi-helper",
                                                "kpi-processor");

  ran::UplinkConfig ucfg;
  ucfg.spectrogram = scfg;
  ran::UplinkSim sim(ucfg, 99);
  RanNode node(&sim);
  stack.ric.connect_e2(&node);

  auto victim = std::make_shared<apps::IcXApp>(
      std::move(victim_model), oran::IndicationKind::kSpectrogram, 13);
  auto attacker = std::make_shared<apps::MaliciousXApp>(
      oran::IndicationKind::kSpectrogram);
  stack.ric.register_xapp(attacker, attacker_id, 1);
  stack.ric.register_xapp(victim, victim_id, 10);

  std::printf("\n— Phase 1: passive observation (jammer duty-cycled) —\n");
  for (int round = 0; round < 6; ++round) {
    if (round % 2 == 0) sim.jammer().activate();
    else sim.jammer().deactivate();
    run_phase(stack.ric, sim, *victim, 25, nullptr);
  }
  std::printf("  observed %zu (input, victim-label) pairs through the SDL\n",
              attacker->observed_inputs().size());

  std::printf("\n— Phase 2: Model Cloning Algorithm (offline) —\n");
  const data::Dataset d_clone = attack::clone_dataset_from_observations(
      attacker->observed_inputs(), attacker->observed_labels(), 2);
  attack::CloneConfig ccfg;
  ccfg.train.max_epochs = 10;
  ccfg.train.learning_rate = 2e-3f;
  attack::CloneReport clone = attack::clone_model(
      d_clone,
      {{"DenseNet",
        [&](std::uint64_t s) {
          return apps::make_mini_densenet(corpus.sample_shape(), 2, s);
        }}},
      ccfg);
  std::printf("  surrogate: %s, cloning accuracy %.3f\n",
              clone.best_arch.c_str(), clone.cloning_accuracy);

  std::printf("\n— Phase 3: UAP precomputation (Algorithm 2) —\n");
  std::vector<int> jammed;
  for (int i = 0; i < d_clone.size(); ++i)
    if (d_clone.y[static_cast<std::size_t>(i)] == ran::kLabelInterference)
      jammed.push_back(i);
  attack::UapConfig uapc;
  uapc.eps = 0.5f;
  uapc.target_fooling = 0.95;
  uapc.max_passes = 5;
  uapc.min_confidence = 0.9f;
  uapc.robust_draws = 3;
  uapc.robust_noise = 0.15f;
  attack::DeepFool inner(30, 0.1f);
  const attack::UapResult uap = attack::generate_uap(
      clone.model, d_clone.subset(jammed).x, inner, uapc);
  std::printf("  UAP ready, ||u||_inf = %.2f\n",
              uap.perturbation.norm_inf());

  std::printf("\n— Phase 4: live attack under jamming —\n");
  sim.jammer().activate();
  double bler_before = 0.0;
  const double det_before =
      run_phase(stack.ric, sim, *victim, 60, &bler_before);
  attacker->arm_uap(uap.perturbation);
  double bler_after = 0.0;
  const double det_after =
      run_phase(stack.ric, sim, *victim, 60, &bler_after);
  std::printf("  detection rate: %.2f → %.2f\n", det_before, det_after);
  std::printf("  link BLER:      %.2f → %.2f\n", bler_before, bler_after);
  std::printf("  perturbations injected through the SDL: %llu\n",
              static_cast<unsigned long long>(
                  attacker->perturbations_applied()));

  std::printf("\n— Coda: the same attack under a correctly-scoped policy —\n");
  // Revoke the telemetry write (simulating the policy audit §7 calls for).
  stack.rbac.define_role("kpi-processor",
                         {oran::Permission{"telemetry/*", true, false},
                          oran::Permission{"decisions", true, false}});
  const auto blocked_before = attacker->perturbations_applied();
  run_phase(stack.ric, sim, *victim, 30, nullptr);
  std::printf("  perturbations that landed after the policy fix: %llu\n",
              static_cast<unsigned long long>(
                  attacker->perturbations_applied() - blocked_before));
  std::printf("  SDL audit log records %zu access checks\n",
              stack.ric.sdl().audit_log().size());
  return 0;
}
