#!/usr/bin/env python3
"""Validate the observability-plane outputs of a bench run (CI smoke).

Checks, against the files produced by `--trace-out` / `--metrics-out`:

  --trace FILE    chrome://tracing JSON from the causal span ring:
                    * every complete ("X") event carries trace/span/parent
                      args;
                    * span ids are unique;
                    * every non-zero parent (and flow_from) refers to a
                      span present in the file — the causal chain has no
                      orphans;
                    * parent edges stay within their trace;
                    * every flow ("s"/"f") pair is bound to real spans.

  --metrics FILE  metrics-registry JSON: every quantile sketch satisfies
                    min <= p50 <= p95 <= p99 <= p999 <= max and has a
                    consistent count/sum.

Exit 0 when every check passes; prints each failure and exits 1 otherwise.
"""

import argparse
import json
import sys

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print("FAIL: " + msg)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents array")
        return
    xs = [e for e in events if e.get("ph") == "X"]
    causal = [e for e in xs if isinstance(e.get("args"), dict)
              and "span" in e["args"]]
    if not causal:
        fail(f"{path}: no causal complete events (args.span missing)")
        return

    spans = {}
    for e in causal:
        a = e["args"]
        for field in ("trace", "span", "parent"):
            if field not in a:
                fail(f"{path}: event {e.get('name')} missing args.{field}")
                return
        if a["span"] in spans:
            fail(f"{path}: duplicate span id {a['span']}")
        spans[a["span"]] = a

    for e in causal:
        a = e["args"]
        name = e.get("name", "?")
        parent = a["parent"]
        if parent:
            if parent not in spans:
                fail(f"{path}: span {a['span']} ({name}) has orphan "
                     f"parent {parent}")
            elif spans[parent]["trace"] != a["trace"]:
                fail(f"{path}: span {a['span']} ({name}) crosses traces "
                     f"via parent {parent}")
        flow = a.get("flow_from", 0)
        if flow and flow not in spans:
            fail(f"{path}: span {a['span']} ({name}) has orphan "
                 f"flow_from {flow}")

    # Flow binding: each "s" (start) and "f" (finish) pair must be
    # anchored at timestamps of spans that exist.
    starts = {e["id"] for e in events if e.get("ph") == "s"}
    finishes = {e["id"] for e in events if e.get("ph") == "f"}
    if starts != finishes:
        fail(f"{path}: unmatched flow events "
             f"({len(starts)} starts vs {len(finishes)} finishes)")

    print(f"ok: {path}: {len(causal)} causal spans, "
          f"{len(starts)} flow edges, no orphans")


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    sketches = doc.get("sketches", {})
    if not sketches:
        fail(f"{path}: no sketches section")
        return
    for name, s in sketches.items():
        qs = [s.get("min"), s.get("p50"), s.get("p95"), s.get("p99"),
              s.get("p999"), s.get("max")]
        if any(v is None for v in qs):
            fail(f"{path}: sketch {name} missing quantile fields")
            continue
        labels = ["min", "p50", "p95", "p99", "p999", "max"]
        for i in range(len(qs) - 1):
            if qs[i] > qs[i + 1]:
                fail(f"{path}: sketch {name} not monotone: "
                     f"{labels[i]}={qs[i]} > {labels[i + 1]}={qs[i + 1]}")
        if s.get("count", 0) < 0:
            fail(f"{path}: sketch {name} negative count")
        if s.get("count", 0) > 0 and not (
                s["min"] <= s.get("mean", 0) <= s["max"]):
            fail(f"{path}: sketch {name} mean {s.get('mean')} outside "
                 f"[min, max]")
    print(f"ok: {path}: {len(sketches)} sketches monotone")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="chrome://tracing JSON to validate")
    ap.add_argument("--metrics", help="metrics-registry JSON to validate")
    args = ap.parse_args()
    if not args.trace and not args.metrics:
        ap.error("pass --trace and/or --metrics")
    if args.trace:
        check_trace(args.trace)
    if args.metrics:
        check_metrics(args.metrics)
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
